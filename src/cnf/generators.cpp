#include "cnf/generators.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace sateda {

namespace {

/// Picks k distinct variables out of [0, num_vars).
std::vector<Var> pick_distinct(int num_vars, int k, Rng& rng) {
  assert(k <= num_vars);
  std::vector<Var> vars;
  vars.reserve(k);
  std::uniform_int_distribution<Var> dist(0, num_vars - 1);
  while (static_cast<int>(vars.size()) < k) {
    Var v = dist(rng);
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
    }
  }
  return vars;
}

}  // namespace

CnfFormula random_ksat(int num_vars, int num_clauses, int k,
                       std::uint64_t seed) {
  Rng rng(seed);
  CnfFormula f(num_vars);
  std::bernoulli_distribution coin(0.5);
  for (int i = 0; i < num_clauses; ++i) {
    std::vector<Lit> lits;
    for (Var v : pick_distinct(num_vars, k, rng)) {
      lits.push_back(Lit(v, coin(rng)));
    }
    f.add_clause(std::move(lits));
  }
  return f;
}

CnfFormula random_3sat(int num_vars, double ratio, std::uint64_t seed) {
  return random_ksat(num_vars, static_cast<int>(num_vars * ratio), 3, seed);
}

CnfFormula pigeonhole(int holes) {
  const int pigeons = holes + 1;
  CnfFormula f(pigeons * holes);
  auto var = [holes](int p, int h) { return static_cast<Var>(p * holes + h); };
  // Every pigeon sits in some hole.
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < holes; ++h) c.push_back(pos(var(p, h)));
    f.add_clause(std::move(c));
  }
  // No two pigeons share a hole.
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        f.add_binary(neg(var(p1, h)), neg(var(p2, h)));
      }
    }
  }
  return f;
}

CnfFormula dubois(int n) {
  assert(n >= 1);
  // A cycle of 2n ternary XOR constraints over 3n variables in which
  // every variable occurs in exactly two constraints; the right-hand
  // sides sum to odd parity, so the whole cycle is unsatisfiable while
  // every proper subset of constraints is satisfiable.
  const int m = 2 * n;
  CnfFormula f(3 * n);
  auto u = [](int j) { return static_cast<Var>(j); };        // cycle links
  auto w = [m, n](int j) { return static_cast<Var>(m + j % n); };
  auto add_xor3 = [&f](Var a, Var b, Var c, bool rhs) {
    for (int s = 0; s < 8; ++s) {
      const bool va = (s & 1) != 0;
      const bool vb = (s & 2) != 0;
      const bool vc = (s & 4) != 0;
      if ((va != vb) == (vc != rhs)) continue;  // assignment allowed
      f.add_ternary(Lit(a, va), Lit(b, vb), Lit(c, vc));
    }
  };
  for (int j = 0; j < m; ++j) {
    add_xor3(u((j + m - 1) % m), u(j), w(j), /*rhs=*/j == 0);
  }
  return f;
}

CnfFormula equivalence_chain(int num_vars, bool inconsistent,
                             int extra_clauses, std::uint64_t seed) {
  assert(num_vars >= 2);
  Rng rng(seed);
  CnfFormula f(num_vars);
  for (Var v = 0; v + 1 < num_vars; ++v) {
    // v ≡ v+1 as (v + ¬(v+1)) · (¬v + (v+1)).
    f.add_binary(pos(v), neg(v + 1));
    f.add_binary(neg(v), pos(v + 1));
  }
  if (inconsistent) {
    // Close the chain with x0 ≡ ¬x(n-1).
    f.add_binary(pos(0), pos(num_vars - 1));
    f.add_binary(neg(0), neg(num_vars - 1));
  }
  std::bernoulli_distribution coin(0.5);
  for (int i = 0; i < extra_clauses; ++i) {
    std::vector<Lit> lits;
    for (Var v : [&] {
           std::vector<Var> vs;
           std::uniform_int_distribution<Var> dist(0, num_vars - 1);
           while (vs.size() < 3) {
             Var v = dist(rng);
             if (std::find(vs.begin(), vs.end(), v) == vs.end())
               vs.push_back(v);
           }
           return vs;
         }()) {
      lits.push_back(Lit(v, coin(rng)));
    }
    // Keep extra clauses satisfiable under all-equal assignments by
    // ensuring at least one positive and one negative literal... not
    // required; random ternary clauses are fine for the bench.
    f.add_clause(std::move(lits));
  }
  return f;
}

CnfFormula parity_chain(int num_vars, bool target) {
  assert(num_vars >= 1);
  // Helper variable s_i = x_0 ⊕ … ⊕ x_i.  s_0 = x_0; final unit forces
  // s_{n-1} = target.
  CnfFormula f(num_vars);
  Var prev = 0;  // s_0 is x_0 itself
  for (int i = 1; i < num_vars; ++i) {
    Var s = f.new_var();
    Var x = static_cast<Var>(i);
    // s = prev ⊕ x  (4 ternary clauses).
    f.add_ternary(neg(s), pos(prev), pos(x));
    f.add_ternary(neg(s), neg(prev), neg(x));
    f.add_ternary(pos(s), neg(prev), pos(x));
    f.add_ternary(pos(s), pos(prev), neg(x));
    prev = s;
  }
  f.add_unit(Lit(prev, !target));
  return f;
}

CnfFormula random_graph_coloring(int nodes, double edge_prob, int colors,
                                 std::uint64_t seed) {
  Rng rng(seed);
  CnfFormula f(nodes * colors);
  auto var = [colors](int n, int c) { return static_cast<Var>(n * colors + c); };
  // Each node gets at least one color...
  for (int n = 0; n < nodes; ++n) {
    std::vector<Lit> c;
    for (int k = 0; k < colors; ++k) c.push_back(pos(var(n, k)));
    f.add_clause(std::move(c));
    // ...and at most one.
    for (int k1 = 0; k1 < colors; ++k1) {
      for (int k2 = k1 + 1; k2 < colors; ++k2) {
        f.add_binary(neg(var(n, k1)), neg(var(n, k2)));
      }
    }
  }
  std::bernoulli_distribution edge(edge_prob);
  for (int a = 0; a < nodes; ++a) {
    for (int b = a + 1; b < nodes; ++b) {
      if (!edge(rng)) continue;
      for (int k = 0; k < colors; ++k) {
        f.add_binary(neg(var(a, k)), neg(var(b, k)));
      }
    }
  }
  return f;
}

CnfFormula planted_ksat(int num_vars, int num_clauses, int k,
                        std::uint64_t seed) {
  Rng rng(seed);
  std::bernoulli_distribution coin(0.5);
  std::vector<bool> hidden(num_vars);
  for (int v = 0; v < num_vars; ++v) hidden[v] = coin(rng);
  CnfFormula f(num_vars);
  std::uniform_int_distribution<int> pick_pos(0, k - 1);
  for (int i = 0; i < num_clauses; ++i) {
    std::vector<Lit> lits;
    for (Var v : pick_distinct(num_vars, k, rng)) {
      lits.push_back(Lit(v, coin(rng)));
    }
    // Force at least one literal to agree with the hidden assignment.
    bool satisfied = false;
    for (Lit l : lits) {
      if (hidden[l.var()] != l.negative()) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) {
      int j = pick_pos(rng);
      Var v = lits[j].var();
      lits[j] = Lit(v, !hidden[v]);
    }
    f.add_clause(std::move(lits));
  }
  return f;
}

}  // namespace sateda
