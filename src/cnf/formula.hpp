/// \file formula.hpp
/// \brief Container for a CNF formula: a conjunction of clauses over a
///        set of variables (paper §2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cnf/clause.hpp"
#include "cnf/literal.hpp"

namespace sateda {

/// A conjunctive normal form formula φ = ω₁ · ω₂ · … · ωₘ over n
/// variables (paper §2).  Purely a value type: building, composing and
/// evaluating formulas.  Solving lives in sat::Solver.
class CnfFormula {
 public:
  CnfFormula() = default;
  explicit CnfFormula(int num_vars) : num_vars_(num_vars) {}

  /// Number of variables; variables are 0..num_vars()-1.
  int num_vars() const { return num_vars_; }

  /// Number of clauses (including any empty clause).
  std::size_t num_clauses() const { return clauses_.size(); }

  /// Total number of literal occurrences.
  std::size_t num_literals() const;

  /// Allocates a fresh variable and returns it.
  Var new_var() { return num_vars_++; }

  /// Ensures variables 0..v exist.
  void ensure_var(Var v) {
    if (v >= num_vars_) num_vars_ = v + 1;
  }

  /// Appends a clause. Literals may mention new variables; the
  /// variable count grows to cover them.
  void add_clause(Clause c);
  void add_clause(std::initializer_list<Lit> lits) { add_clause(Clause(lits)); }
  void add_clause(std::vector<Lit> lits) { add_clause(Clause(std::move(lits))); }

  /// Convenience: unary / binary / ternary clauses.
  void add_unit(Lit a) { add_clause({a}); }
  void add_binary(Lit a, Lit b) { add_clause({a, b}); }
  void add_ternary(Lit a, Lit b, Lit c) { add_clause({a, b, c}); }

  const Clause& clause(std::size_t i) const { return clauses_[i]; }
  Clause& clause(std::size_t i) { return clauses_[i]; }
  const std::vector<Clause>& clauses() const { return clauses_; }

  auto begin() const { return clauses_.begin(); }
  auto end() const { return clauses_.end(); }

  /// Conjoins another formula over the same variable space.
  void append(const CnfFormula& other);

  /// Evaluates the formula under a (complete or partial) assignment.
  /// Returns l_true if every clause has a satisfied literal, l_false
  /// if some clause has all literals falsified, l_undef otherwise.
  lbool evaluate(const std::vector<lbool>& assignment) const;

  /// True iff \p assignment (indexed by variable; true/false) satisfies
  /// every clause.  Requires a complete assignment.
  bool is_satisfied_by(const std::vector<bool>& assignment) const;

  /// Removes tautological clauses and duplicate literals in place.
  /// Returns the number of clauses removed.
  std::size_t normalize();

  /// Renders the whole formula as a product of sums.
  std::string to_string() const;

 private:
  int num_vars_ = 0;
  std::vector<Clause> clauses_;
};

}  // namespace sateda
