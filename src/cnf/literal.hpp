/// \file literal.hpp
/// \brief Core propositional types: variables, literals and the ternary
///        logic value used throughout the toolkit.
///
/// The representation follows the conventions of modern CDCL solvers:
/// a variable is a dense non-negative index and a literal packs the
/// variable together with its polarity into a single integer
/// (2*var + sign).  This makes literals directly usable as array
/// indices for watch lists and assignment maps.
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace sateda {

/// A propositional variable. Variables are dense indices starting at 0.
using Var = std::int32_t;

/// Sentinel for "no variable".
inline constexpr Var kNullVar = -1;

/// A propositional literal: a variable or its complement.
///
/// Encoded as 2*var + sign, where sign==1 denotes the negative
/// (complemented) literal.  The encoding is stable and dense so a
/// literal can index watch lists directly via index().
class Lit {
 public:
  /// Constructs the undefined literal.
  constexpr Lit() : code_(-2) {}

  /// Constructs a literal on \p v, negative iff \p negative.
  constexpr Lit(Var v, bool negative) : code_(2 * v + (negative ? 1 : 0)) {
    assert(v >= 0);
  }

  /// Rebuilds a literal from its dense index (inverse of index()).
  static constexpr Lit from_index(std::int32_t idx) {
    Lit l;
    l.code_ = idx;
    return l;
  }

  /// The variable this literal mentions.
  constexpr Var var() const { return code_ >> 1; }

  /// True iff this is the complemented (negative) literal.
  constexpr bool negative() const { return (code_ & 1) != 0; }

  /// True iff this is the positive literal.
  constexpr bool positive() const { return (code_ & 1) == 0; }

  /// Dense index in [0, 2*num_vars), suitable for array indexing.
  constexpr std::int32_t index() const { return code_; }

  /// True iff this literal is defined (not default-constructed).
  constexpr bool is_defined() const { return code_ >= 0; }

  /// The complement literal.
  constexpr Lit operator~() const { return from_index(code_ ^ 1); }

  /// XORs the polarity: `lit ^ true` flips, `lit ^ false` is identity.
  constexpr Lit operator^(bool flip) const {
    return from_index(code_ ^ (flip ? 1 : 0));
  }

  friend constexpr auto operator<=>(Lit a, Lit b) = default;

 private:
  std::int32_t code_;
};

/// Sentinel literal meaning "undefined".
inline constexpr Lit kUndefLit{};

/// Positive literal on variable \p v.
constexpr Lit pos(Var v) { return Lit(v, false); }

/// Negative literal on variable \p v.
constexpr Lit neg(Var v) { return Lit(v, true); }

/// Ternary logic value: true, false or unassigned.
///
/// The encoding (0=true, 1=false, 2/3=undef) permits branch-free
/// complement (XOR with 1) and comparison.
class lbool {
 public:
  constexpr lbool() : v_(2) {}
  explicit constexpr lbool(bool b) : v_(b ? 0 : 1) {}

  constexpr bool is_true() const { return v_ == 0; }
  constexpr bool is_false() const { return v_ == 1; }
  constexpr bool is_undef() const { return v_ > 1; }

  /// Logical complement; undef stays undef.
  constexpr lbool operator~() const {
    lbool r;
    r.v_ = static_cast<std::uint8_t>(v_ ^ (v_ > 1 ? 0 : 1));
    return r;
  }

  /// XOR with a Boolean; undef stays undef.
  constexpr lbool operator^(bool flip) const {
    lbool r;
    r.v_ = static_cast<std::uint8_t>(v_ ^ ((v_ > 1 || !flip) ? 0 : 1));
    return r;
  }

  friend constexpr bool operator==(lbool a, lbool b) {
    return (a.v_ > 1 && b.v_ > 1) || a.v_ == b.v_;
  }

 private:
  std::uint8_t v_;
};

inline constexpr lbool l_true{true};
inline constexpr lbool l_false{false};
inline constexpr lbool l_undef{};

/// Renders a literal in DIMACS-style notation ("-3", "7").
inline std::string to_string(Lit l) {
  if (!l.is_defined()) return "<undef>";
  return (l.negative() ? "-" : "") + std::to_string(l.var() + 1);
}

/// Renders a ternary value ("0", "1", "X").
inline std::string to_string(lbool v) {
  if (v.is_true()) return "1";
  if (v.is_false()) return "0";
  return "X";
}

}  // namespace sateda

template <>
struct std::hash<sateda::Lit> {
  std::size_t operator()(sateda::Lit l) const noexcept {
    return std::hash<std::int32_t>()(l.index());
  }
};
