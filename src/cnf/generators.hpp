/// \file generators.hpp
/// \brief Parameterized CNF instance generators used by tests and by
///        the benchmark harnesses.
///
/// The paper evaluates SAT techniques on EDA-derived and random
/// instances; we have no bundled industrial benchmarks, so these
/// generators provide reproducible synthetic families covering the
/// regimes the paper's claims concern: random k-SAT near/off the phase
/// transition, provably-UNSAT combinatorial families (pigeonhole),
/// and equivalence-rich formulas for equivalency reasoning (§6).
#pragma once

#include <cstdint>
#include <random>

#include "cnf/formula.hpp"

namespace sateda {

/// Deterministic RNG type used across the toolkit so every experiment
/// is reproducible from a seed.
using Rng = std::mt19937_64;

/// Uniform random k-SAT: \p num_clauses clauses of \p k distinct
/// variables each, polarities fair coins.  At clause/variable ratio
/// ~4.26 (k=3) instances sit at the phase transition.
CnfFormula random_ksat(int num_vars, int num_clauses, int k, std::uint64_t seed);

/// Random 3-SAT at a given clause/variable ratio.
CnfFormula random_3sat(int num_vars, double ratio, std::uint64_t seed);

/// Pigeonhole principle PHP(n+1, n): n+1 pigeons, n holes.  Provably
/// unsatisfiable and exponentially hard for resolution — the classic
/// stress test for learning/backtracking (paper §4.1).
CnfFormula pigeonhole(int holes);

/// Dubois family dubois(n): 3n variables, 8n ternary clauses built
/// from n chained 3-XOR gadgets with an odd twist — unsatisfiable but
/// locally consistent, a standard certificate-checking benchmark.
CnfFormula dubois(int n);

/// A chain of variable equivalences x0 ≡ x1 ≡ … ≡ x(n-1) expressed as
/// binary equivalence clauses (paper §6), optionally closed
/// inconsistently (x0 ≡ ¬x(n-1)) to yield UNSAT, plus \p extra_clauses
/// random ternary clauses over the chain variables.  Equivalency
/// reasoning collapses the chain to a single variable.
CnfFormula equivalence_chain(int num_vars, bool inconsistent,
                             int extra_clauses, std::uint64_t seed);

/// XOR-chain ("parity") formula: x0 ⊕ x1 ⊕ … ⊕ x(n-1) = target, each
/// XOR Tseitin-expanded over chained helper variables.  Hard for plain
/// DPLL without learning.
CnfFormula parity_chain(int num_vars, bool target);

/// Graph-coloring CNF on a random graph G(n, p): can graph be colored
/// with \p colors colors?  A covering-flavoured structured family.
CnfFormula random_graph_coloring(int nodes, double edge_prob, int colors,
                                 std::uint64_t seed);

/// A satisfiable "hidden solution" instance: clauses are random but
/// each is forced to be satisfied by a hidden planted assignment.
/// Useful for benchmarking restarts on satisfiable instances (§6).
CnfFormula planted_ksat(int num_vars, int num_clauses, int k,
                        std::uint64_t seed);

}  // namespace sateda
