/// \file dimacs.hpp
/// \brief DIMACS CNF reader/writer — the interchange format used by
///        every SAT package the paper surveys (GRASP, SATO, rel_sat).
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "cnf/formula.hpp"

namespace sateda {

/// Raised on malformed DIMACS input.  The message carries the 1-based
/// input line number of the offending construct.
class DimacsError : public std::runtime_error {
 public:
  explicit DimacsError(const std::string& what) : std::runtime_error(what) {}
};

/// Strictness knobs for read_dimacs().
struct DimacsOptions {
  /// Reject literals whose variable exceeds the header's declared
  /// count.  Off by default: many generators under-declare, and the
  /// tolerant reader grows the formula instead.
  bool strict_header_bounds = false;
  /// Reject inputs whose clause count differs from the header's
  /// declaration (also widely wrong in the wild; off by default).
  bool strict_clause_count = false;
};

/// Parses a DIMACS CNF stream.  Accepts comment lines ("c ..."), one
/// "p cnf <vars> <clauses>" header and whitespace-separated
/// 0-terminated clauses.  Always rejected, with a line-numbered
/// DimacsError: malformed or duplicate headers, non-numeric or
/// overflowing literals, literals beyond the representable variable
/// range, and a final clause missing its terminating 0.  By default
/// variables beyond the header count grow the formula and a mismatched
/// clause count is tolerated; see DimacsOptions to tighten both.
CnfFormula read_dimacs(std::istream& in, const DimacsOptions& opts = {});

/// Parses a DIMACS CNF file from disk.
CnfFormula read_dimacs_file(const std::string& path,
                            const DimacsOptions& opts = {});

/// Parses DIMACS from a string (convenient for tests).
CnfFormula read_dimacs_string(const std::string& text,
                              const DimacsOptions& opts = {});

/// Writes \p f in DIMACS CNF format, with an optional leading comment.
void write_dimacs(std::ostream& out, const CnfFormula& f,
                  const std::string& comment = "");

/// Writes \p f to a file in DIMACS CNF format.
void write_dimacs_file(const std::string& path, const CnfFormula& f,
                       const std::string& comment = "");

/// Serializes to a DIMACS string.
std::string to_dimacs_string(const CnfFormula& f);

}  // namespace sateda
