/// \file dimacs.hpp
/// \brief DIMACS CNF reader/writer — the interchange format used by
///        every SAT package the paper surveys (GRASP, SATO, rel_sat).
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "cnf/formula.hpp"

namespace sateda {

/// Raised on malformed DIMACS input.
class DimacsError : public std::runtime_error {
 public:
  explicit DimacsError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses a DIMACS CNF stream.  Accepts comment lines ("c ..."), one
/// "p cnf <vars> <clauses>" header and whitespace-separated
/// 0-terminated clauses.  Variables beyond the header count grow the
/// formula; a mismatching clause count is tolerated (many generators
/// get it wrong) but a malformed token raises DimacsError.
CnfFormula read_dimacs(std::istream& in);

/// Parses a DIMACS CNF file from disk.
CnfFormula read_dimacs_file(const std::string& path);

/// Parses DIMACS from a string (convenient for tests).
CnfFormula read_dimacs_string(const std::string& text);

/// Writes \p f in DIMACS CNF format, with an optional leading comment.
void write_dimacs(std::ostream& out, const CnfFormula& f,
                  const std::string& comment = "");

/// Writes \p f to a file in DIMACS CNF format.
void write_dimacs_file(const std::string& path, const CnfFormula& f,
                       const std::string& comment = "");

/// Serializes to a DIMACS string.
std::string to_dimacs_string(const CnfFormula& f);

}  // namespace sateda
