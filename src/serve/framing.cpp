#include "serve/framing.hpp"

namespace sateda::serve {

FrameStatus read_frame(std::istream& in, std::string& payload) {
  unsigned char prefix[4];
  in.read(reinterpret_cast<char*>(prefix), 4);
  if (in.gcount() == 0) return FrameStatus::kEof;
  if (in.gcount() < 4) return FrameStatus::kTruncated;
  const std::uint32_t len = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                            (static_cast<std::uint32_t>(prefix[1]) << 16) |
                            (static_cast<std::uint32_t>(prefix[2]) << 8) |
                            static_cast<std::uint32_t>(prefix[3]);
  if (len > kMaxFrameBytes) return FrameStatus::kOversized;
  payload.resize(len);
  if (len > 0) {
    in.read(payload.data(), static_cast<std::streamsize>(len));
    if (in.gcount() < static_cast<std::streamsize>(len)) {
      payload.resize(static_cast<std::size_t>(in.gcount()));
      return FrameStatus::kTruncated;
    }
  }
  return FrameStatus::kOk;
}

bool write_frame(std::ostream& out, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(len >> 24),
      static_cast<unsigned char>(len >> 16),
      static_cast<unsigned char>(len >> 8),
      static_cast<unsigned char>(len),
  };
  out.write(reinterpret_cast<const char*>(prefix), 4);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
  return out.good();
}

}  // namespace sateda::serve
