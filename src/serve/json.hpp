/// \file json.hpp
/// \brief Minimal self-contained JSON value type for the serve
///        protocol (parse + dump, no external dependencies).
///
/// Covers exactly what JSONL framing needs: the six JSON types,
/// strict single-document parsing with position-reporting errors, and
/// compact serialization.  Numbers are stored as double with an exact
/// int64 fast path, which is lossless for every id/literal/counter the
/// protocol carries (|values| < 2^53).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace sateda::serve {

class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

/// An immutable-ish JSON document node.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;                          // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int v) : type_(Type::kNumber), num_(v) {}
  Json(std::int64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(std::uint64_t v)
      : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  /// Parses one JSON document; trailing non-whitespace is an error.
  static Json parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const {
    require(Type::kBool);
    return bool_;
  }
  double as_number() const {
    require(Type::kNumber);
    return num_;
  }
  std::int64_t as_int64() const {
    require(Type::kNumber);
    return static_cast<std::int64_t>(num_);
  }
  const std::string& as_string() const {
    require(Type::kString);
    return str_;
  }
  const std::vector<Json>& items() const {
    require(Type::kArray);
    return items_;
  }
  const std::vector<std::pair<std::string, Json>>& members() const {
    require(Type::kObject);
    return members_;
  }

  /// Object lookup; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;

  void push_back(Json v) {
    require(Type::kArray);
    items_.push_back(std::move(v));
  }
  /// Appends a member (no duplicate-key check; callers control keys).
  void set(std::string key, Json v) {
    require(Type::kObject);
    members_.emplace_back(std::move(key), std::move(v));
  }

  /// Compact one-line serialization (suitable for JSONL).
  std::string dump() const;

 private:
  void require(Type t) const {
    if (type_ != t) throw JsonError("json: wrong type access");
  }

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace sateda::serve
