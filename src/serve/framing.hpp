/// \file framing.hpp
/// \brief Length-prefixed frame transport for the sateda-serve Unix
///        socket: 4-byte big-endian payload length, then the payload
///        (one JSON request or response document).
///
/// Streams beat raw lines on a socket because a malicious or buggy
/// client cannot desynchronize the server with embedded newlines, and
/// the length bound (64 MiB) caps allocation before any bytes of a
/// hostile payload are read.  The codec works over std::iostream so
/// the protocol tests can exercise oversized prefixes and truncated
/// frames without opening real sockets.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

namespace sateda::serve {

/// Hard ceiling on a frame payload (64 MiB).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 26;

enum class FrameStatus {
  kOk,         ///< payload filled
  kEof,        ///< clean end of stream (no prefix bytes at all)
  kOversized,  ///< prefix exceeds kMaxFrameBytes; stream is poisoned
  kTruncated,  ///< stream ended inside the prefix or the payload
};

/// Reads one frame.  On kOversized the declared length was NOT
/// consumed from the stream's payload — the connection can no longer
/// be trusted to be in sync and should be closed after the error
/// response.
[[nodiscard]] FrameStatus read_frame(std::istream& in, std::string& payload);

/// Writes one frame.  Payloads above kMaxFrameBytes are refused
/// (returns false, writes nothing).
[[nodiscard]] bool write_frame(std::ostream& out, const std::string& payload);

}  // namespace sateda::serve
