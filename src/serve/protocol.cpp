#include "serve/protocol.hpp"

#include <cmath>
#include <sstream>

#include "cnf/dimacs.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"

namespace sateda::serve {

namespace {

std::int64_t int_field(const Json& req, const char* key, std::int64_t dflt) {
  const Json* v = req.find(key);
  if (v == nullptr || v->is_null()) return dflt;
  if (!v->is_number()) {
    throw JsonError(std::string("field '") + key + "' must be a number");
  }
  return v->as_int64();
}

bool bool_field(const Json& req, const char* key, bool dflt) {
  const Json* v = req.find(key);
  if (v == nullptr || v->is_null()) return dflt;
  if (!v->is_bool()) {
    throw JsonError(std::string("field '") + key + "' must be a boolean");
  }
  return v->as_bool();
}

const char* result_name(sat::SolveResult r) {
  switch (r) {
    case sat::SolveResult::kSat: return "sat";
    case sat::SolveResult::kUnsat: return "unsat";
    case sat::SolveResult::kUnknown: return "unknown";
  }
  return "unknown";
}

/// The query's standalone DIMACS dump: active clauses plus the
/// assumptions as unit clauses.  A one-shot solver on this text must
/// reproduce the session's verdict — the serve answers' audit trail.
CnfFormula dumped_formula(const sat::SolverSession& session,
                          const std::vector<Lit>& assumptions) {
  CnfFormula f = session.active_formula();
  for (Lit a : assumptions) {
    f.ensure_var(a.var());
    f.add_unit(a);
  }
  return f;
}

Json solve_response(sat::SolverSession& session, const Json& request,
                    const Json* id) {
  std::vector<Lit> assumptions;
  if (const Json* a = request.find("assume")) {
    assumptions = parse_dimacs_lits(*a);
  }
  sat::QueryBudget budget;
  budget.conflicts = int_field(request, "conflicts", -1);
  budget.time_ms = int_field(request, "time_ms", -1);
  const bool dump_cnf = bool_field(request, "dump_cnf", false);
  const bool certify = bool_field(request, "certify", false);

  const sat::QueryResult qr = session.query(assumptions, budget);

  Json resp = ok_response(id);
  resp.set("query", static_cast<std::int64_t>(qr.id));
  resp.set("result", result_name(qr.result));
  if (qr.result == sat::SolveResult::kUnknown) {
    resp.set("reason", sat::to_string(qr.reason));
  }
  if (qr.result == sat::SolveResult::kSat) {
    Json model = Json::array();
    for (Var v = 0; v < static_cast<Var>(qr.model.size()); ++v) {
      if (qr.model[v].is_undef()) continue;
      model.push_back(to_dimacs(Lit(v, qr.model[v].is_false())));
    }
    resp.set("model", std::move(model));
  }
  if (qr.result == sat::SolveResult::kUnsat) {
    Json core = Json::array();
    for (Lit l : qr.core) core.push_back(to_dimacs(l));
    resp.set("core", std::move(core));
  }
  resp.set("wall_ms", qr.wall_ms);
  resp.set("stats", stats_json(qr.stats));

  if (dump_cnf || certify) {
    const CnfFormula dump = dumped_formula(session, assumptions);
    std::ostringstream cnf;
    write_dimacs(cnf, dump, "sateda-serve query dump");
    resp.set("cnf", cnf.str());
    if (certify && qr.result == sat::SolveResult::kUnsat) {
      // Re-solve the dump on a fresh proof-tracing CDCL solver; the
      // emitted DRAT refutation checks standalone against the dump.
      sat::Proof proof;
      sat::Solver checker;
      checker.set_proof_tracer(&proof);
      const bool ok = checker.add_formula(dump);
      if (!ok || checker.solve() == sat::SolveResult::kUnsat) {
        std::ostringstream drat;
        proof.write_drat(drat);
        resp.set("proof", drat.str());
      } else {
        // The budget-free re-solve disagreed (should be impossible for
        // a sound session); surface it rather than certify a lie.
        resp.set("proof", Json());
        resp.set("certify_error", "re-solve did not confirm unsat");
      }
    }
  }
  return resp;
}

}  // namespace

Json error_response(const Json* id, const char* code,
                    const std::string& message) {
  Json resp = Json::object();
  resp.set("id", id != nullptr ? *id : Json());
  resp.set("ok", false);
  resp.set("error", code);
  resp.set("message", message);
  return resp;
}

Json ok_response(const Json* id) {
  Json resp = Json::object();
  resp.set("id", id != nullptr ? *id : Json());
  resp.set("ok", true);
  return resp;
}

std::vector<Lit> parse_dimacs_lits(const Json& arr) {
  if (!arr.is_array()) throw JsonError("literal list must be an array");
  std::vector<Lit> lits;
  lits.reserve(arr.items().size());
  for (const Json& item : arr.items()) {
    if (!item.is_number()) throw JsonError("literals must be integers");
    const double d = item.as_number();
    if (d != std::floor(d)) throw JsonError("literals must be integers");
    const std::int64_t code = item.as_int64();
    if (code == 0) throw JsonError("0 is not a DIMACS literal");
    const Var v = static_cast<Var>((code < 0 ? -code : code) - 1);
    lits.push_back(Lit(v, code < 0));
  }
  return lits;
}

Json stats_json(const sat::SolverStats& s) {
  Json j = Json::object();
  j.set("decisions", s.decisions);
  j.set("propagations", s.propagations);
  j.set("conflicts", s.conflicts);
  j.set("restarts", s.restarts);
  j.set("learnt_clauses", s.learnt_clauses);
  j.set("deleted_clauses", s.deleted_clauses);
  j.set("solve_calls", s.solve_calls);
  j.set("solve_time_sec", s.solve_time_sec);
  return j;
}

Json handle_session_request(sat::SolverSession& session, const std::string& op,
                            const Json& request, const Json* id) {
  try {
    if (op == "add") {
      const Json* clauses = request.find("clauses");
      if (clauses == nullptr || !clauses->is_array()) {
        return error_response(id, kErrBadRequest, "add needs 'clauses' array");
      }
      bool okay = true;
      for (const Json& c : clauses->items()) {
        if (!session.add_clause(parse_dimacs_lits(c))) okay = false;
      }
      Json resp = ok_response(id);
      resp.set("okay", okay && session.okay());
      return resp;
    }
    if (op == "load") {
      const Json* text = request.find("dimacs");
      if (text == nullptr || !text->is_string()) {
        return error_response(id, kErrBadRequest, "load needs 'dimacs' text");
      }
      CnfFormula f;
      try {
        f = read_dimacs_string(text->as_string());
      } catch (const DimacsError& e) {
        return error_response(id, kErrBadRequest, e.what());
      }
      const bool okay = session.add_formula(f);
      Json resp = ok_response(id);
      resp.set("okay", okay && session.okay());
      resp.set("vars", f.num_vars());
      resp.set("clauses", static_cast<std::int64_t>(f.num_clauses()));
      return resp;
    }
    if (op == "push") {
      const int depth = session.push();
      Json resp = ok_response(id);
      resp.set("depth", depth);
      // DIMACS-facing: the first variable a client may now allocate.
      resp.set("next_var",
               static_cast<std::int64_t>(session.next_free_var()) + 1);
      return resp;
    }
    if (op == "pop") {
      const int depth = session.pop();
      Json resp = ok_response(id);
      resp.set("depth", depth);
      return resp;
    }
    if (op == "solve") {
      return solve_response(session, request, id);
    }
    if (op == "stats") {
      Json resp = ok_response(id);
      resp.set("queries", static_cast<std::int64_t>(session.queries_run()));
      resp.set("depth", session.depth());
      resp.set("vars", session.num_vars());
      resp.set("stats", stats_json(session.cumulative_stats()));
      return resp;
    }
  } catch (const JsonError& e) {
    return error_response(id, kErrBadRequest, e.what());
  }
  return error_response(id, kErrBadRequest, "unknown op '" + op + "'");
}

}  // namespace sateda::serve
