/// \file server.hpp
/// \brief The sateda-serve daemon core: a thread-safe request router
///        that pins each named session to one warm SolverSession and
///        schedules independent sessions across a worker pool.
///
/// Ordering model: requests of one session execute strictly in
/// arrival order (a session is incremental state — reordering would
/// change its meaning), while different sessions run concurrently, up
/// to the worker count.  cancel/ping/shutdown are handled out of band
/// on the submitting thread, which is what lets a cancel interrupt a
/// query the same session queued earlier.
///
/// The core is transport-agnostic: submit() takes one JSONL request
/// line and a callback that receives exactly one response line.
/// run_jsonl() adapts it to stdin/stdout; the Unix-socket transport
/// in tools/sateda_serve.cpp feeds it length-prefixed frames (see
/// framing.hpp).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "sat/session.hpp"
#include "serve/json.hpp"

namespace sateda::serve {

struct ServerOptions {
  int workers = 1;                   ///< session-execution threads
  sat::EngineSpec default_engine;    ///< for sessions that name none
  sat::SolverOptions solver;         ///< base solver options
  sat::QueryBudget default_budget;   ///< session default when unspecified
};

/// Statistics the daemon reports on shutdown (and via tests).
struct ServerStats {
  std::uint64_t requests = 0;        ///< lines submitted
  std::uint64_t errors = 0;          ///< error responses produced
  std::uint64_t sessions_opened = 0;
  std::uint64_t queries = 0;         ///< solve requests executed
};

class Server {
 public:
  using Respond = std::function<void(std::string line)>;

  explicit Server(ServerOptions opts = {});
  ~Server();

  /// Routes one request line.  The callback fires exactly once, on the
  /// submitting thread for out-of-band ops (ping, cancel, shutdown,
  /// open/close bookkeeping errors, malformed requests) or on a worker
  /// thread for queued session work.  Callbacks attached to one
  /// session fire in submission order.
  void submit(std::string line, Respond respond);

  /// Blocks until every queued request has been answered.
  void drain();

  /// True once a shutdown request was accepted (drain() then returns
  /// after the in-flight work finishes).
  bool shutdown_requested() const;

  /// Serves JSONL over a stream pair until EOF or shutdown.  Responses
  /// are interleaved as they complete; each is one line.
  void run_jsonl(std::istream& in, std::ostream& out);

  ServerStats stats() const;
  int workers() const { return static_cast<int>(threads_.size()); }

 private:
  struct Pending {
    Json request;        ///< parsed request object
    std::string op;
    Respond respond;
  };
  struct Session {
    std::unique_ptr<sat::SolverSession> session;
    std::deque<Pending> queue;
    bool running = false;   ///< a worker is executing its front request
    bool closing = false;   ///< close accepted; drop when queue drains
  };

  void worker_loop();
  /// Executes front requests of \p name until its queue empties.
  void run_session(const std::string& name);
  void handle_open(const Json& request, const Json* id, Respond& respond);
  void finish(Respond& respond, const Json& response);

  ServerOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;   ///< wakes workers
  std::condition_variable idle_cv_;    ///< wakes drain()
  std::map<std::string, Session> sessions_;
  std::deque<std::string> ready_;      ///< sessions with runnable work
  std::vector<std::thread> threads_;
  std::uint64_t inflight_ = 0;         ///< queued + running requests
  bool shutdown_ = false;
  bool stopping_ = false;              ///< destructor: workers must exit
  ServerStats stats_;
};

}  // namespace sateda::serve
