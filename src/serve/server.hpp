/// \file server.hpp
/// \brief The sateda-serve daemon core: a thread-safe request router
///        that pins each named session to one warm SolverSession and
///        schedules independent sessions across a worker pool.
///
/// Ordering model: requests of one session execute strictly in
/// arrival order (a session is incremental state — reordering would
/// change its meaning), while different sessions run concurrently, up
/// to the worker count.  cancel/ping/shutdown are handled out of band
/// on the submitting thread, which is what lets a cancel interrupt a
/// query the same session queued earlier.
///
/// The core is transport-agnostic: submit() takes one JSONL request
/// line and a callback that receives exactly one response line.
/// run_jsonl() adapts it to stdin/stdout; the Unix-socket transport
/// in tools/sateda_serve.cpp feeds it length-prefixed frames (see
/// framing.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "sat/session.hpp"
#include "serve/json.hpp"
#include "support/mutex.hpp"

namespace sateda::serve {

struct ServerOptions {
  int workers = 1;                   ///< session-execution threads
  sat::EngineSpec default_engine;    ///< for sessions that name none
  sat::SolverOptions solver;         ///< base solver options
  sat::QueryBudget default_budget;   ///< session default when unspecified
};

/// Statistics the daemon reports on shutdown (and via tests).
struct ServerStats {
  std::uint64_t requests = 0;        ///< lines submitted
  std::uint64_t errors = 0;          ///< error responses produced
  std::uint64_t sessions_opened = 0;
  std::uint64_t queries = 0;         ///< solve requests executed
};

class Server {
 public:
  using Respond = std::function<void(std::string line)>;

  explicit Server(ServerOptions opts = {});
  ~Server();

  /// Routes one request line.  The callback fires exactly once, on the
  /// submitting thread for out-of-band ops (ping, cancel, shutdown,
  /// open/close bookkeeping errors, malformed requests) or on a worker
  /// thread for queued session work.  Callbacks attached to one
  /// session fire in submission order.
  void submit(std::string line, Respond respond) EXCLUDES(mu_);

  /// Blocks until every queued request has been answered.
  void drain() EXCLUDES(mu_);

  /// True once a shutdown request was accepted (drain() then returns
  /// after the in-flight work finishes).
  bool shutdown_requested() const EXCLUDES(mu_);

  /// Serves JSONL over a stream pair until EOF or shutdown.  Responses
  /// are interleaved as they complete; each is one line.
  void run_jsonl(std::istream& in, std::ostream& out);

  ServerStats stats() const EXCLUDES(stats_mu_);
  int workers() const { return static_cast<int>(threads_.size()); }

 private:
  struct Pending {
    Json request;        ///< parsed request object
    std::string op;
    Respond respond;
  };
  struct Session {
    std::unique_ptr<sat::SolverSession> session;
    std::deque<Pending> queue;
    bool running = false;   ///< a worker is executing its front request
    bool closing = false;   ///< close accepted; drop when queue drains
  };

  void worker_loop() EXCLUDES(mu_);
  /// Executes front requests of \p name until its queue empties.
  /// Takes mu_ itself and releases it around every session execution
  /// and response callback (callbacks must never run under the lock).
  void run_session(const std::string& name) EXCLUDES(mu_);
  void handle_open(const Json& request, const Json* id, Respond& respond)
      EXCLUDES(mu_, stats_mu_);
  /// Counts \p response against the error stats and delivers it.  Must
  /// be lock-free on entry: the respond callback runs here.
  void finish(Respond& respond, const Json& response)
      EXCLUDES(mu_, stats_mu_);

  ServerOptions opts_;
  /// Scheduler lock: guards the session registry, per-session queues
  /// and worker/drain wakeups.  Lock hierarchy: mu_ may wrap the leaf
  /// stats_mu_; it is never held while a query executes on an engine
  /// or while a Respond callback runs (the engine/transport layers
  /// take their own locks, which would invert the order).
  mutable Mutex mu_ ACQUIRED_BEFORE(stats_mu_);
  /// Leaf lock for the monotone counters: taken alone on the submit
  /// path, nested inside mu_ on the worker path.
  mutable Mutex stats_mu_;
  CondVar ready_cv_;                   ///< wakes workers
  CondVar idle_cv_;                    ///< wakes drain()
  std::map<std::string, Session> sessions_ GUARDED_BY(mu_);
  std::deque<std::string> ready_ GUARDED_BY(mu_);  ///< runnable sessions
  std::vector<std::thread> threads_;   ///< fixed after construction
  std::uint64_t inflight_ GUARDED_BY(mu_) = 0;  ///< queued + running
  bool shutdown_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;  ///< dtor: workers must exit
  ServerStats stats_ GUARDED_BY(stats_mu_);
};

}  // namespace sateda::serve
