#include "serve/server.hpp"

#include <algorithm>

#include "serve/protocol.hpp"

namespace sateda::serve {

namespace {

bool is_session_op(const std::string& op) {
  return op == "add" || op == "load" || op == "push" || op == "pop" ||
         op == "solve" || op == "stats" || op == "close";
}

bool is_error(const Json& resp) {
  const Json* ok = resp.find("ok");
  return ok == nullptr || !ok->is_bool() || !ok->as_bool();
}

}  // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  const int n = std::max(1, opts_.workers);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  ready_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Server::finish(Respond& respond, const Json& response) {
  if (is_error(response)) {
    MutexLock lock(&stats_mu_);
    ++stats_.errors;
  }
  respond(response.dump());
}

void Server::handle_open(const Json& request, const Json* id,
                         Respond& respond) {
  const Json* name = request.find("session");
  if (name == nullptr || !name->is_string()) {
    finish(respond, error_response(id, kErrBadRequest,
                                   "open needs a 'session' name"));
    return;
  }
  sat::SessionOptions sopts;
  sopts.engine = opts_.default_engine;
  sopts.solver = opts_.solver;
  sopts.default_budget = opts_.default_budget;
  if (const Json* engine = request.find("engine")) {
    if (!engine->is_string()) {
      finish(respond, error_response(id, kErrBadRequest,
                                     "'engine' must be a spec string"));
      return;
    }
    try {
      sopts.engine = sat::EngineSpec::parse(engine->as_string());
    } catch (const std::invalid_argument& e) {
      finish(respond, error_response(id, kErrBadRequest, e.what()));
      return;
    }
  }
  if (const Json* v = request.find("conflicts")) {
    if (v->is_number()) sopts.default_budget.conflicts = v->as_int64();
  }
  if (const Json* v = request.find("time_ms")) {
    if (v->is_number()) sopts.default_budget.time_ms = v->as_int64();
  }

  // Engine construction happens outside the lock; only the registry
  // insertion is serialized.
  auto session = std::make_unique<sat::SolverSession>(std::move(sopts));
  bool inserted = false;
  {
    MutexLock lock(&mu_);
    auto [it, fresh] = sessions_.try_emplace(name->as_string());
    if (fresh) {
      it->second.session = std::move(session);
      inserted = true;
      MutexLock stats_lock(&stats_mu_);  // hierarchy: mu_ before stats_mu_
      ++stats_.sessions_opened;
    }
  }
  if (!inserted) {
    finish(respond, error_response(id, kErrSessionExists,
                                   "session '" + name->as_string() +
                                       "' already exists"));
    return;
  }
  Json resp = ok_response(id);
  resp.set("session", name->as_string());
  finish(respond, resp);
}

void Server::submit(std::string line, Respond respond) {
  {
    MutexLock lock(&stats_mu_);
    ++stats_.requests;
  }
  Json request;
  try {
    request = Json::parse(line);
  } catch (const JsonError& e) {
    finish(respond, error_response(nullptr, kErrParse, e.what()));
    return;
  }
  if (!request.is_object()) {
    finish(respond,
           error_response(nullptr, kErrParse, "request must be an object"));
    return;
  }
  const Json* id = request.find("id");
  const Json* opv = request.find("op");
  if (opv == nullptr || !opv->is_string()) {
    finish(respond,
           error_response(id, kErrBadRequest, "missing 'op' string"));
    return;
  }
  const std::string op = opv->as_string();

  if (op == "ping") {
    Json resp = ok_response(id);
    resp.set("result", "pong");
    finish(respond, resp);
    return;
  }
  if (op == "shutdown") {
    {
      MutexLock lock(&mu_);
      shutdown_ = true;
    }
    idle_cv_.notify_all();
    finish(respond, ok_response(id));
    return;
  }
  if (op == "open") {
    handle_open(request, id, respond);
    return;
  }

  // Everything else addresses an existing session.
  const Json* name = request.find("session");
  if (name == nullptr || !name->is_string()) {
    finish(respond, error_response(id, kErrBadRequest,
                                   "op '" + op + "' needs a 'session' name"));
    return;
  }
  if (op == "cancel") {
    bool cancelled = false;
    {
      MutexLock lock(&mu_);
      auto it = sessions_.find(name->as_string());
      if (it != sessions_.end() && !it->second.closing) {
        // interrupt() is an atomic flag set — safe against the worker
        // executing this session's query right now.
        it->second.session->cancel();
        cancelled = true;
      }
    }
    if (!cancelled) {
      finish(respond, error_response(id, kErrUnknownSession,
                                     "no session '" + name->as_string() +
                                         "'"));
      return;
    }
    Json resp = ok_response(id);
    resp.set("cancelled", true);
    finish(respond, resp);
    return;
  }
  if (!is_session_op(op)) {
    finish(respond,
           error_response(id, kErrBadRequest, "unknown op '" + op + "'"));
    return;
  }

  {
    MutexLock lock(&mu_);
    auto it = sessions_.find(name->as_string());
    if (it != sessions_.end() && !it->second.closing) {
      Session& s = it->second;
      s.queue.push_back(Pending{std::move(request), op, std::move(respond)});
      ++inflight_;
      if (!s.running && s.queue.size() == 1) {
        ready_.push_back(name->as_string());
        ready_cv_.notify_one();
      }
      return;
    }
  }
  // Unknown/closing session: count and respond outside the lock.
  finish(respond, error_response(id, kErrUnknownSession,
                                 "no session '" + name->as_string() + "'"));
}

void Server::worker_loop() {
  MutexLock lock(&mu_);
  while (true) {
    // Explicit predicate loop: the analysis sees mu_ held across the
    // guarded reads, which the predicate-lambda overload would hide.
    while (!stopping_ && ready_.empty()) ready_cv_.wait(mu_);
    if (stopping_) return;
    const std::string name = std::move(ready_.front());
    ready_.pop_front();
    // run_session takes the lock itself.
    lock.Unlock();
    run_session(name);
    lock.Lock();
  }
}

void Server::run_session(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  if (s.running) return;
  s.running = true;
  while (!s.queue.empty()) {
    Pending p = std::move(s.queue.front());
    s.queue.pop_front();
    if (s.closing) {
      // Requests queued behind a close: the session is gone for them.
      --inflight_;
      {
        MutexLock stats_lock(&stats_mu_);
        ++stats_.errors;
      }
      lock.Unlock();
      p.respond(error_response(p.request.find("id"), kErrUnknownSession,
                               "session '" + name + "' is closed")
                    .dump());
      lock.Lock();
      idle_cv_.notify_all();
      continue;
    }
    if (p.op == "close") s.closing = true;
    sat::SolverSession* session = s.session.get();
    lock.Unlock();

    // Query execution and the response callback run with no server
    // lock held: the engine takes its own (clause-pool) locks and the
    // callback takes the transport's output lock.
    Json resp;
    const Json* id = p.request.find("id");
    if (p.op == "close") {
      resp = ok_response(id);
    } else {
      resp = handle_session_request(*session, p.op, p.request, id);
    }
    p.respond(resp.dump());

    lock.Lock();
    --inflight_;
    {
      MutexLock stats_lock(&stats_mu_);
      if (is_error(resp)) ++stats_.errors;
      if (p.op == "solve") ++stats_.queries;
    }
    idle_cv_.notify_all();
  }
  s.running = false;
  if (s.closing) sessions_.erase(it);
}

void Server::drain() {
  MutexLock lock(&mu_);
  while (inflight_ != 0) idle_cv_.wait(mu_);
}

bool Server::shutdown_requested() const {
  MutexLock lock(&mu_);
  return shutdown_;
}

void Server::run_jsonl(std::istream& in, std::ostream& out) {
  Mutex out_mu;
  std::string line;
  while (!shutdown_requested() && std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    submit(line, [&out, &out_mu](std::string resp) {
      MutexLock lock(&out_mu);
      out << resp << '\n';
      out.flush();
    });
  }
  drain();
}

ServerStats Server::stats() const {
  MutexLock lock(&stats_mu_);
  return stats_;
}

}  // namespace sateda::serve
