#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sateda::serve {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw JsonError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(const char* w) {
    std::size_t n = 0;
    while (w[n] != '\0') ++n;
    if (s_.compare(pos_, n, w) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_word("true")) return Json(true);
        fail("invalid token");
      case 'f':
        if (consume_word("false")) return Json(false);
        fail("invalid token");
      case 'n':
        if (consume_word("null")) return Json();
        fail("invalid token");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("invalid token");
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control char in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            if (pos_ >= s_.size()) fail("unterminated \\u escape");
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // combined — the protocol never emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      fail("bad number");
    }
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (consume('.')) {
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        fail("bad number");
      }
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        fail("bad number");
      }
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    return Json(std::strtod(s_.c_str() + start, nullptr));
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double v, std::string& out) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
  } else if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
  } else {
    out += "null";  // JSON has no Inf/NaN
  }
}

void dump_value(const Json& j, std::string& out) {
  switch (j.type()) {
    case Json::Type::kNull: out += "null"; break;
    case Json::Type::kBool: out += j.as_bool() ? "true" : "false"; break;
    case Json::Type::kNumber: dump_number(j.as_number(), out); break;
    case Json::Type::kString: dump_string(j.as_string(), out); break;
    case Json::Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : j.items()) {
        if (!first) out += ',';
        first = false;
        dump_value(item, out);
      }
      out += ']';
      break;
    }
    case Json::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : j.members()) {
        if (!first) out += ',';
        first = false;
        dump_string(key, out);
        out += ':';
        dump_value(value, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

}  // namespace sateda::serve
