/// \file protocol.hpp
/// \brief The sateda-serve request/response protocol: JSONL messages
///        executed against SolverSession objects.
///
/// One request per line, one response per line, in order per session.
/// Every request is a JSON object with an "op" field and an optional
/// "id" of any JSON type, echoed verbatim in the response so clients
/// can match answers to pipelined requests.  Literals and variables
/// use DIMACS conventions throughout: variables are 1-based, a
/// negative integer is a negated literal, 0 never appears.
///
/// Session ops ("session" names the target):
///   open   {"engine": "portfolio:4:det"?, "conflicts": N?, "time_ms": N?}
///          -> {"ok":true, "session":s}
///   add    {"clauses": [[1,-2],[3]]}        -> {"ok":true, "okay":b}
///   load   {"dimacs": "p cnf ...\n1 0\n"}   -> {"ok":true, "okay":b,
///                                              "vars":n, "clauses":m}
///   push   {}   -> {"ok":true, "depth":d, "next_var":v}  (v: first
///               DIMACS variable free after the epoch selector — the
///               allocation-prediction anchor for recorded traces)
///   pop    {}   -> {"ok":true, "depth":d}  (depth<0: was at root)
///   solve  {"assume":[...]? , "conflicts":N?, "time_ms":N?,
///           "dump_cnf":b?, "certify":b?}
///          -> {"ok":true, "query":q, "result":"sat|unsat|unknown",
///              "reason":r?, "model":[...]?, "core":[...]?,
///              "wall_ms":t, "stats":{...}, "cnf":text?, "proof":text?}
///          "dump_cnf" returns the active clause set plus the query's
///          assumptions folded in as unit clauses, as DIMACS text — a
///          standalone formula any one-shot solver must answer the
///          same way.  "certify" additionally re-solves that formula
///          on a fresh proof-tracing CDCL solver and returns a DRAT
///          refutation when it is UNSAT, checkable by sateda-check
///          with no --assume flags.
///   stats  {}   -> {"ok":true, "queries":n, "depth":d, "vars":v,
///                   "stats":{...cumulative...}}
///   close  {}   -> {"ok":true}
///   cancel {}   -> {"ok":true, "cancelled":b}   (out of band)
///
/// Global ops: ping -> "pong"; shutdown -> stops the daemon after the
/// response is written.
///
/// Errors: {"id":..., "ok":false, "error":code, "message":text} with
/// code one of parse-error, bad-request, unknown-session,
/// session-exists, frame-error (the latter emitted by the framed
/// transport, see framing.hpp).
#pragma once

#include <string>

#include "sat/session.hpp"
#include "serve/json.hpp"

namespace sateda::serve {

// Error codes (stable protocol strings).
inline constexpr const char* kErrParse = "parse-error";
inline constexpr const char* kErrBadRequest = "bad-request";
inline constexpr const char* kErrUnknownSession = "unknown-session";
inline constexpr const char* kErrSessionExists = "session-exists";
inline constexpr const char* kErrFrame = "frame-error";

/// Builds {"id":id?, "ok":false, "error":code, "message":message}.
[[nodiscard]] Json error_response(const Json* id, const char* code,
                                  const std::string& message);

/// Builds {"id":id?, "ok":true} ready for op-specific fields.
[[nodiscard]] Json ok_response(const Json* id);

/// Converts a JSON array of DIMACS integers to internal literals.
/// Throws JsonError on non-integers or zeros.
[[nodiscard]] std::vector<Lit> parse_dimacs_lits(const Json& arr);

/// Internal literal -> DIMACS integer.
inline std::int64_t to_dimacs(Lit l) {
  return l.negative() ? -(static_cast<std::int64_t>(l.var()) + 1)
                      : static_cast<std::int64_t>(l.var()) + 1;
}

/// The per-query counters exposed by solve/stats responses.
[[nodiscard]] Json stats_json(const sat::SolverStats& s);

/// Executes one already-parsed session-scoped request (add, load,
/// push, pop, solve, stats) against \p session and returns the
/// response.  Does NOT handle open/close/cancel — those touch the
/// session registry and are the server's job.  \p id may be null.
[[nodiscard]] Json handle_session_request(sat::SolverSession& session,
                                          const std::string& op,
                                          const Json& request, const Json* id);

}  // namespace sateda::serve
