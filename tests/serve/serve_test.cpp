/// \file serve_test.cpp
/// \brief sateda-serve protocol conformance: JSON codec round-trips,
///        length-prefixed framing edge cases (oversized prefixes,
///        truncation), request validation (malformed JSONL, unknown
///        sessions, duplicate opens), solve semantics through the
///        protocol layer, and a concurrent multi-session hammer that
///        the CI thread-sanitizer job runs to pin down data races in
///        the scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cnf/dimacs.hpp"
#include "cnf/generators.hpp"
#include "sat/solver.hpp"
#include "serve/framing.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/mutex.hpp"

namespace {

using namespace sateda;
using serve::FrameStatus;
using serve::Json;
using serve::Server;
using serve::ServerOptions;

// --- JSON codec -----------------------------------------------------

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("-42").as_int64(), -42);
  EXPECT_DOUBLE_EQ(Json::parse("2.5e1").as_number(), 25.0);
  EXPECT_EQ(Json::parse("\"hi\\n\"").as_string(), "hi\n");
}

TEST(JsonTest, ParsesNestedStructures) {
  const Json j = Json::parse(R"({"op":"add","clauses":[[1,-2],[3]]})");
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.find("op")->as_string(), "add");
  const Json& clauses = *j.find("clauses");
  ASSERT_EQ(clauses.items().size(), 2u);
  EXPECT_EQ(clauses.items()[0].items()[1].as_int64(), -2);
}

TEST(JsonTest, DumpParseRoundTripsIntegersExactly) {
  Json obj = Json::object();
  obj.set("big", std::int64_t{1} << 52);
  obj.set("neg", std::int64_t{-123456789});
  obj.set("frac", 0.5);
  obj.set("text", "a\"b\\c\x01");
  const Json back = Json::parse(obj.dump());
  EXPECT_EQ(back.find("big")->as_int64(), std::int64_t{1} << 52);
  EXPECT_EQ(back.find("neg")->as_int64(), -123456789);
  EXPECT_DOUBLE_EQ(back.find("frac")->as_number(), 0.5);
  EXPECT_EQ(back.find("text")->as_string(), "a\"b\\c\x01");
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "1 2",
                          "\"unterminated", "{\"a\" 1}", "[1]]"}) {
    EXPECT_THROW(Json::parse(bad), serve::JsonError) << bad;
  }
}

TEST(JsonTest, FindOnMissingKeyReturnsNull) {
  const Json j = Json::parse("{\"a\":1}");
  EXPECT_EQ(j.find("b"), nullptr);
  EXPECT_EQ(Json::parse("[1]").find("a"), nullptr);
}

// --- framing --------------------------------------------------------

std::string frame_bytes(std::uint32_t declared_len, const std::string& body) {
  std::string s;
  s.push_back(static_cast<char>(declared_len >> 24));
  s.push_back(static_cast<char>(declared_len >> 16));
  s.push_back(static_cast<char>(declared_len >> 8));
  s.push_back(static_cast<char>(declared_len));
  s += body;
  return s;
}

TEST(FramingTest, RoundTripsPayloads) {
  std::stringstream stream;
  ASSERT_TRUE(serve::write_frame(stream, "{\"op\":\"ping\"}"));
  ASSERT_TRUE(serve::write_frame(stream, ""));
  std::string payload;
  EXPECT_EQ(serve::read_frame(stream, payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "{\"op\":\"ping\"}");
  EXPECT_EQ(serve::read_frame(stream, payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "");
  EXPECT_EQ(serve::read_frame(stream, payload), FrameStatus::kEof);
}

TEST(FramingTest, OversizedPrefixIsRejectedBeforeAllocation) {
  // Declares 128 MiB; only the 4 prefix bytes exist.  The reader must
  // refuse without trying to read (or allocate) the declared length.
  std::stringstream stream(frame_bytes(1u << 27, ""));
  std::string payload;
  EXPECT_EQ(serve::read_frame(stream, payload), FrameStatus::kOversized);
}

TEST(FramingTest, ExactLimitIsStillAccepted) {
  // The boundary itself is legal — only strictly-greater is refused.
  std::stringstream stream(frame_bytes(serve::kMaxFrameBytes + 1, ""));
  std::string payload;
  EXPECT_EQ(serve::read_frame(stream, payload), FrameStatus::kOversized);
}

TEST(FramingTest, TruncatedPrefixAndPayloadAreDetected) {
  std::string payload;
  std::stringstream p1(std::string("\x00\x00", 2));  // 2 of 4 prefix bytes
  EXPECT_EQ(serve::read_frame(p1, payload), FrameStatus::kTruncated);
  std::stringstream p2(frame_bytes(10, "abc"));      // 3 of 10 body bytes
  EXPECT_EQ(serve::read_frame(p2, payload), FrameStatus::kTruncated);
}

TEST(FramingTest, WriteRefusesOversizedPayloads) {
  std::stringstream stream;
  std::string huge(serve::kMaxFrameBytes + 1, 'x');
  EXPECT_FALSE(serve::write_frame(stream, huge));
  EXPECT_TRUE(stream.str().empty());
}

// --- protocol over the server ---------------------------------------

/// Submits one request line and returns the parsed response (the
/// server promises exactly one response per request).
Json ask(Server& server, const std::string& line) {
  sateda::Mutex mu;
  std::string got;
  bool done = false;
  server.submit(line, [&](std::string resp) {
    sateda::MutexLock lock(&mu);
    got = std::move(resp);
    done = true;
  });
  server.drain();
  sateda::MutexLock lock(&mu);
  EXPECT_TRUE(done);
  return Json::parse(got);
}

std::string err_code(const Json& resp) {
  const Json* e = resp.find("error");
  return e != nullptr && e->is_string() ? e->as_string() : "";
}

TEST(ServeProtocolTest, MalformedJsonGetsParseError) {
  Server server;
  EXPECT_EQ(err_code(ask(server, "{not json")), serve::kErrParse);
  EXPECT_EQ(err_code(ask(server, "")), serve::kErrParse);
  EXPECT_EQ(err_code(ask(server, "[1,2]")), serve::kErrParse);  // not an object
}

TEST(ServeProtocolTest, MissingOrUnknownOpIsBadRequest) {
  Server server;
  EXPECT_EQ(err_code(ask(server, "{}")), serve::kErrBadRequest);
  EXPECT_EQ(err_code(ask(server, R"({"op":42})")), serve::kErrBadRequest);
}

TEST(ServeProtocolTest, UnknownSessionIsReported) {
  Server server;
  const Json r = ask(server, R"({"op":"solve","session":"ghost","id":7})");
  EXPECT_EQ(err_code(r), serve::kErrUnknownSession);
  // The id is echoed even on errors so clients can match pipelined
  // requests to failures.
  EXPECT_EQ(r.find("id")->as_int64(), 7);
}

TEST(ServeProtocolTest, DuplicateOpenIsSessionExists) {
  Server server;
  EXPECT_TRUE(ask(server, R"({"op":"open","session":"s"})").find("ok")->as_bool());
  EXPECT_EQ(err_code(ask(server, R"({"op":"open","session":"s"})")),
            serve::kErrSessionExists);
}

TEST(ServeProtocolTest, BadEngineSpecFailsTheOpen) {
  Server server;
  const Json r =
      ask(server, R"({"op":"open","session":"s","engine":"warp-drive"})");
  EXPECT_EQ(err_code(r), serve::kErrBadRequest);
  // The failed open must not leave a half-registered session behind.
  EXPECT_TRUE(ask(server, R"({"op":"open","session":"s"})").find("ok")->as_bool());
}

TEST(ServeProtocolTest, SolveRoundTripWithModelAndCore) {
  Server server;
  ASSERT_TRUE(ask(server, R"({"op":"open","session":"s"})").find("ok")->as_bool());
  ASSERT_TRUE(
      ask(server, R"({"op":"add","session":"s","clauses":[[1,2],[-1,2]]})")
          .find("ok")
          ->as_bool());
  const Json sat = ask(server, R"({"op":"solve","session":"s"})");
  EXPECT_EQ(sat.find("result")->as_string(), "sat");
  // DIMACS model: variable 2 must be true in every model of (1∨2)(¬1∨2).
  bool saw_two = false;
  for (const Json& lit : sat.find("model")->items()) {
    if (lit.as_int64() == 2) saw_two = true;
    EXPECT_NE(lit.as_int64(), -2);
  }
  EXPECT_TRUE(saw_two);
  const Json unsat =
      ask(server, R"({"op":"solve","session":"s","assume":[-2]})");
  EXPECT_EQ(unsat.find("result")->as_string(), "unsat");
  ASSERT_NE(unsat.find("core"), nullptr);
  ASSERT_EQ(unsat.find("core")->items().size(), 1u);
  EXPECT_EQ(unsat.find("core")->items()[0].as_int64(), -2);
}

TEST(ServeProtocolTest, ZeroLiteralInClauseIsBadRequest) {
  Server server;
  ASSERT_TRUE(ask(server, R"({"op":"open","session":"s"})").find("ok")->as_bool());
  EXPECT_EQ(
      err_code(ask(server, R"({"op":"add","session":"s","clauses":[[1,0]]})")),
      serve::kErrBadRequest);
}

TEST(ServeProtocolTest, LoadRejectsGarbageDimacs) {
  Server server;
  ASSERT_TRUE(ask(server, R"({"op":"open","session":"s"})").find("ok")->as_bool());
  EXPECT_EQ(
      err_code(ask(server, R"({"op":"load","session":"s","dimacs":"p qqq"})")),
      serve::kErrBadRequest);
}

TEST(ServeProtocolTest, PushPopTrackDepthAndPredictVariables) {
  Server server;
  ASSERT_TRUE(ask(server, R"({"op":"open","session":"s"})").find("ok")->as_bool());
  ASSERT_TRUE(
      ask(server, R"({"op":"add","session":"s","clauses":[[1,2]]})")
          .find("ok")
          ->as_bool());
  const Json push = ask(server, R"({"op":"push","session":"s"})");
  EXPECT_EQ(push.find("depth")->as_int64(), 1);
  // 2 user variables + 1 selector → first free DIMACS id is 4.
  EXPECT_EQ(push.find("next_var")->as_int64(), 4);
  const Json pop = ask(server, R"({"op":"pop","session":"s"})");
  EXPECT_EQ(pop.find("depth")->as_int64(), 0);
  const Json pop2 = ask(server, R"({"op":"pop","session":"s"})");
  EXPECT_EQ(pop2.find("depth")->as_int64(), -1);
}

TEST(ServeProtocolTest, DumpCnfReproducesTheQueryStandalone) {
  Server server;
  ASSERT_TRUE(ask(server, R"({"op":"open","session":"s"})").find("ok")->as_bool());
  ASSERT_TRUE(
      ask(server, R"({"op":"add","session":"s","clauses":[[1,2],[-1]]})")
          .find("ok")
          ->as_bool());
  const Json r = ask(
      server,
      R"({"op":"solve","session":"s","assume":[-2],"dump_cnf":true,"certify":true})");
  EXPECT_EQ(r.find("result")->as_string(), "unsat");
  ASSERT_NE(r.find("cnf"), nullptr);
  // The dump folds assumptions in as units: a fresh one-shot solver
  // must reach the same verdict from the text alone.
  CnfFormula f = read_dimacs_string(r.find("cnf")->as_string());
  sat::Solver fresh;
  ASSERT_TRUE(!fresh.add_formula(f) || fresh.solve() == sat::SolveResult::kUnsat);
  // certify produced a DRAT refutation of that same dump.
  ASSERT_NE(r.find("proof"), nullptr);
  EXPECT_FALSE(r.find("proof")->as_string().empty());
}

TEST(ServeProtocolTest, CloseThenUseReportsUnknownSession) {
  Server server;
  ASSERT_TRUE(ask(server, R"({"op":"open","session":"s"})").find("ok")->as_bool());
  ASSERT_TRUE(ask(server, R"({"op":"close","session":"s"})").find("ok")->as_bool());
  EXPECT_EQ(err_code(ask(server, R"({"op":"solve","session":"s"})")),
            serve::kErrUnknownSession);
  // The name is reusable after close.
  EXPECT_TRUE(ask(server, R"({"op":"open","session":"s"})").find("ok")->as_bool());
}

TEST(ServeProtocolTest, PerQueryBudgetReturnsUnknown) {
  Server server;
  ASSERT_TRUE(ask(server, R"({"op":"open","session":"s"})").find("ok")->as_bool());
  // php(7) in DIMACS via the load op would be bulky; build it inline.
  std::ostringstream dimacs;
  write_dimacs(dimacs, pigeonhole(7), "php7");
  Json load = Json::object();
  load.set("op", "load");
  load.set("session", "s");
  load.set("dimacs", dimacs.str());
  ASSERT_TRUE(ask(server, load.dump()).find("ok")->as_bool());
  const Json r =
      ask(server, R"({"op":"solve","session":"s","conflicts":1})");
  EXPECT_EQ(r.find("result")->as_string(), "unknown");
  EXPECT_EQ(r.find("reason")->as_string(), "conflict-budget");
  // The budget bound that query only.
  const Json full = ask(server, R"({"op":"solve","session":"s"})");
  EXPECT_EQ(full.find("result")->as_string(), "unsat");
}

TEST(ServeProtocolTest, StatsReportSessionCumulative) {
  Server server;
  ASSERT_TRUE(ask(server, R"({"op":"open","session":"s"})").find("ok")->as_bool());
  ASSERT_TRUE(ask(server, R"({"op":"add","session":"s","clauses":[[1]]})")
                  .find("ok")
                  ->as_bool());
  ask(server, R"({"op":"solve","session":"s"})");
  ask(server, R"({"op":"solve","session":"s"})");
  const Json r = ask(server, R"({"op":"stats","session":"s"})");
  EXPECT_EQ(r.find("queries")->as_int64(), 2);
  EXPECT_GE(r.find("stats")->find("solve_calls")->as_int64(), 2);
}

TEST(ServeProtocolTest, PingAndShutdown) {
  Server server;
  EXPECT_EQ(ask(server, R"({"op":"ping"})").find("result")->as_string(),
            "pong");
  EXPECT_FALSE(server.shutdown_requested());
  EXPECT_TRUE(ask(server, R"({"op":"shutdown"})").find("ok")->as_bool());
  EXPECT_TRUE(server.shutdown_requested());
}

TEST(ServeProtocolTest, RunJsonlAnswersEveryLine) {
  ServerOptions opts;
  opts.workers = 2;
  Server server(opts);
  std::istringstream in(
      "{\"op\":\"open\",\"session\":\"a\",\"id\":1}\n"
      "not json at all\n"
      "{\"op\":\"add\",\"session\":\"a\",\"clauses\":[[1]],\"id\":2}\n"
      "{\"op\":\"solve\",\"session\":\"a\",\"id\":3}\n"
      "{\"op\":\"shutdown\",\"id\":4}\n");
  std::ostringstream out;
  server.run_jsonl(in, out);
  std::istringstream lines(out.str());
  std::string line;
  int responses = 0, errors = 0, sats = 0;
  while (std::getline(lines, line)) {
    const Json r = Json::parse(line);
    ++responses;
    if (!r.find("ok")->as_bool()) ++errors;
    const Json* result = r.find("result");
    if (result != nullptr && result->as_string() == "sat") ++sats;
  }
  EXPECT_EQ(responses, 5);
  EXPECT_EQ(errors, 1);
  EXPECT_EQ(sats, 1);
}

// --- concurrency (the TSan target) ----------------------------------

TEST(ServeConcurrencyTest, ParallelSessionsKeepPerSessionOrder) {
  ServerOptions opts;
  opts.workers = 4;
  Server server(opts);
  constexpr int kSessions = 6;
  constexpr int kQueriesPerSession = 25;

  std::vector<std::thread> clients;
  sateda::Mutex mu;
  std::map<std::string, std::vector<std::int64_t>> reply_order;
  std::atomic<int> bad{0};

  for (int s = 0; s < kSessions; ++s) {
    clients.emplace_back([&, s] {
      const std::string name = "s" + std::to_string(s);
      Json open = Json::object();
      open.set("op", "open");
      open.set("session", name);
      server.submit(open.dump(), [](std::string) {});
      // Claim the user variables BEFORE the first push — epoch
      // selectors take the next free ids, so a client that pushes
      // first would collide its DIMACS variable 1 with a selector.
      Json base = Json::object();
      base.set("op", "add");
      base.set("session", name);
      base.set("clauses", Json::parse("[[1,2]]"));
      server.submit(base.dump(), [](std::string) {});
      // Alternating SAT epochs: push/add/solve/pop per query, exactly
      // the warm-session shape the daemon serves.
      for (int q = 0; q < kQueriesPerSession; ++q) {
        Json push = Json::object();
        push.set("op", "push");
        push.set("session", name);
        server.submit(push.dump(), [](std::string) {});
        Json add = Json::object();
        add.set("op", "add");
        add.set("session", name);
        Json clauses = Json::array();
        Json clause = Json::array();
        clause.push_back((q % 2) != 0 ? 1 : -1);
        clauses.push_back(std::move(clause));
        add.set("clauses", std::move(clauses));
        server.submit(add.dump(), [](std::string) {});
        Json solve = Json::object();
        solve.set("op", "solve");
        solve.set("session", name);
        solve.set("id", std::int64_t{q});
        server.submit(solve.dump(), [&, name](std::string resp) {
          const Json r = Json::parse(resp);
          if (!r.find("ok")->as_bool() ||
              r.find("result")->as_string() != "sat") {
            bad.fetch_add(1);
          }
          sateda::MutexLock lock(&mu);
          reply_order[name].push_back(r.find("id")->as_int64());
        });
        Json pop = Json::object();
        pop.set("op", "pop");
        pop.set("session", name);
        server.submit(pop.dump(), [](std::string) {});
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.drain();

  EXPECT_EQ(bad.load(), 0);
  sateda::MutexLock lock(&mu);
  ASSERT_EQ(reply_order.size(), static_cast<std::size_t>(kSessions));
  for (const auto& [name, order] : reply_order) {
    ASSERT_EQ(order.size(), static_cast<std::size_t>(kQueriesPerSession))
        << name;
    for (int q = 0; q < kQueriesPerSession; ++q) {
      EXPECT_EQ(order[static_cast<std::size_t>(q)], q)
          << "session " << name << " answered out of order";
    }
  }
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries,
            static_cast<std::uint64_t>(kSessions * kQueriesPerSession));
}

TEST(ServeConcurrencyTest, CancelRacesWithRunningQueriesSafely) {
  ServerOptions opts;
  opts.workers = 2;
  Server server(opts);
  ASSERT_TRUE(ask(server, R"({"op":"open","session":"s"})").find("ok")->as_bool());
  std::ostringstream dimacs;
  write_dimacs(dimacs, pigeonhole(8), "php8");
  Json load = Json::object();
  load.set("op", "load");
  load.set("session", "s");
  load.set("dimacs", dimacs.str());
  ASSERT_TRUE(ask(server, load.dump()).find("ok")->as_bool());

  std::atomic<int> answered{0};
  server.submit(R"({"op":"solve","session":"s","id":"long"})",
                [&](std::string resp) {
                  const Json r = Json::parse(resp);
                  EXPECT_TRUE(r.find("ok")->as_bool());
                  answered.fetch_add(1);
                });
  // Hammer cancel from several threads while the query runs: the op is
  // advertised as safe from any thread at any time.
  std::vector<std::thread> cancellers;
  for (int i = 0; i < 3; ++i) {
    cancellers.emplace_back([&server] {
      for (int k = 0; k < 5; ++k) {
        server.submit(R"({"op":"cancel","session":"s"})", [](std::string) {});
      }
    });
  }
  for (std::thread& t : cancellers) t.join();
  server.drain();
  EXPECT_EQ(answered.load(), 1);
  // The session answers the next query normally (cancel regression).
  const Json next =
      ask(server, R"({"op":"solve","session":"s","conflicts":1,"id":"next"})");
  EXPECT_TRUE(next.find("ok")->as_bool());
}

}  // namespace
