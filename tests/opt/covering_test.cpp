#include "opt/covering.hpp"

#include <gtest/gtest.h>

#include "opt/cardinality.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace sateda::opt {
namespace {

TEST(CardinalityTest, AtMostKCountsExactly) {
  for (int n = 1; n <= 6; ++n) {
    for (int k = 0; k <= n; ++k) {
      CnfFormula f(n);
      std::vector<Lit> lits;
      for (Var v = 0; v < n; ++v) lits.push_back(pos(v));
      add_at_most_k(f, lits, k);
      // Model count restricted to the original n variables must be
      // Σ_{i≤k} C(n,i).  Enumerate assignments of the first n vars and
      // check extendability via SAT.
      std::uint64_t expected = 0;
      for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
        if (static_cast<int>(__builtin_popcountll(bits)) <= k) ++expected;
      }
      std::uint64_t got = 0;
      for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
        sat::Solver s;
        (void)s.add_formula(f);
        std::vector<Lit> assumptions;
        for (Var v = 0; v < n; ++v) {
          assumptions.push_back(Lit(v, !((bits >> v) & 1)));
        }
        if (s.solve(assumptions) == sat::SolveResult::kSat) ++got;
      }
      EXPECT_EQ(got, expected) << "n=" << n << " k=" << k;
    }
  }
}

TEST(CardinalityTest, AtLeastKCountsExactly) {
  const int n = 5;
  for (int k = 0; k <= n + 1; ++k) {
    CnfFormula f(n);
    std::vector<Lit> lits;
    for (Var v = 0; v < n; ++v) lits.push_back(pos(v));
    add_at_least_k(f, lits, k);
    std::uint64_t got = 0, expected = 0;
    for (std::uint64_t bits = 0; bits < 32; ++bits) {
      if (static_cast<int>(__builtin_popcountll(bits)) >= k) ++expected;
      sat::Solver s;
      (void)s.add_formula(f);
      std::vector<Lit> assumptions;
      for (Var v = 0; v < n; ++v) {
        assumptions.push_back(Lit(v, !((bits >> v) & 1)));
      }
      if (s.okay() && s.solve(assumptions) == sat::SolveResult::kSat) ++got;
    }
    EXPECT_EQ(got, expected) << "k=" << k;
  }
}

TEST(CoveringTest, TinyHandInstance) {
  // Columns {0,1,2}; rows {0,1}, {1,2}, {0,2}.  Optimum = 2.
  CoveringProblem p;
  p.num_columns = 3;
  p.add_cover_row({0, 1});
  p.add_cover_row({1, 2});
  p.add_cover_row({0, 2});
  CoveringResult bnb = solve_covering_bnb(p);
  ASSERT_TRUE(bnb.feasible);
  EXPECT_EQ(bnb.cost, 2);
  CoveringResult via_sat = solve_covering_sat(p);
  ASSERT_TRUE(via_sat.feasible);
  EXPECT_EQ(via_sat.cost, 2);
}

TEST(CoveringTest, EssentialColumnDominatesSolution) {
  // Row {3} makes column 3 essential.
  CoveringProblem p;
  p.num_columns = 4;
  p.add_cover_row({3});
  p.add_cover_row({0, 3});
  CoveringResult r = solve_covering_bnb(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, 1);
  EXPECT_TRUE(r.chosen[3]);
}

TEST(CoveringTest, InfeasibleBinateInstance) {
  // x0 must be chosen and must not be chosen.
  CoveringProblem p;
  p.num_columns = 1;
  p.rows.push_back({pos(0)});
  p.rows.push_back({neg(0)});
  CoveringResult r = solve_covering_sat(p);
  EXPECT_FALSE(r.feasible);
}

TEST(CoveringTest, BinateRowsRejectedByBnb) {
  CoveringProblem p;
  p.num_columns = 2;
  p.rows.push_back({pos(0), neg(1)});
  EXPECT_THROW(solve_covering_bnb(p), std::invalid_argument);
}

TEST(CoveringTest, BinateSolvedBySat) {
  // Choosing 0 forbids 1; rows demand 0 or 1, and 2.
  CoveringProblem p;
  p.num_columns = 3;
  p.rows.push_back({pos(0), pos(1)});
  p.rows.push_back({neg(0), neg(1)});
  p.rows.push_back({pos(2)});
  CoveringResult r = solve_covering_sat(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, 2);
}

class CoveringPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoveringPropertyTest, AllThreeSolversAgreeOnOptimum) {
  CoveringProblem p = random_covering(10, 14, 4, GetParam());
  CoveringResult bnb = solve_covering_bnb(p);
  CoveringOptions pruned_opts;
  pruned_opts.sat_pruning = true;
  CoveringResult pruned = solve_covering_bnb(p, pruned_opts);
  CoveringResult via_sat = solve_covering_sat(p);
  ASSERT_TRUE(bnb.feasible);
  ASSERT_TRUE(pruned.feasible);
  ASSERT_TRUE(via_sat.feasible);
  EXPECT_EQ(bnb.cost, via_sat.cost);
  EXPECT_EQ(pruned.cost, via_sat.cost);
  // Brute-force verification of optimality on 10 columns.
  int best = 99;
  for (std::uint64_t bits = 0; bits < 1024; ++bits) {
    bool ok = true;
    for (const auto& row : p.rows) {
      bool hit = false;
      for (Lit l : row) {
        bool chosen = (bits >> l.var()) & 1;
        if (chosen != l.negative()) {
          hit = true;
          break;
        }
      }
      if (!hit) {
        ok = false;
        break;
      }
    }
    if (ok) best = std::min(best, __builtin_popcountll(bits));
  }
  EXPECT_EQ(bnb.cost, best);
  // Returned covers are real covers of the right cost.
  int chosen_count = 0;
  for (bool b : bnb.chosen) chosen_count += b;
  EXPECT_EQ(chosen_count, bnb.cost);
  for (const auto& row : p.rows) {
    bool hit = false;
    for (Lit l : row) {
      if (bnb.chosen[l.var()] != l.negative()) hit = true;
    }
    EXPECT_TRUE(hit);
  }
}

TEST(CoveringTest, MaxsatSolvesBinateInstances) {
  CoveringProblem p;
  p.num_columns = 3;
  p.rows.push_back({pos(0), pos(1)});
  p.rows.push_back({neg(0), neg(1)});
  p.rows.push_back({pos(2)});
  CoveringResult r = solve_covering_maxsat(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.optimal);
  EXPECT_EQ(r.cost, 2);
}

TEST(CoveringTest, MaxsatReportsInfeasibleInstances) {
  CoveringProblem p;
  p.num_columns = 1;
  p.rows.push_back({pos(0)});
  p.rows.push_back({neg(0)});
  CoveringResult r = solve_covering_maxsat(p);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.optimal);
}

TEST_P(CoveringPropertyTest, MaxsatMatchesBranchAndBoundOptimum) {
  CoveringProblem p = random_covering(10, 14, 4, GetParam());
  CoveringResult bnb = solve_covering_bnb(p);
  CoveringResult ms = solve_covering_maxsat(p);
  ASSERT_TRUE(bnb.feasible);
  ASSERT_TRUE(ms.feasible);
  EXPECT_TRUE(ms.optimal);
  EXPECT_EQ(ms.cost, bnb.cost);
  EXPECT_GT(ms.stats.maxsat_rounds + 1, 0);
  // The MaxSAT cover is a real cover of the reported cost.
  int chosen_count = 0;
  for (bool b : ms.chosen) chosen_count += b;
  EXPECT_EQ(chosen_count, ms.cost);
  for (const auto& row : p.rows) {
    bool hit = false;
    for (Lit l : row) {
      if (ms.chosen[l.var()] != l.negative()) hit = true;
    }
    EXPECT_TRUE(hit);
  }
}

TEST_P(CoveringPropertyTest, SatPruningCutsNodes) {
  CoveringProblem p = random_covering(12, 20, 3, GetParam() + 50);
  CoveringOptions plain;
  CoveringOptions pruned;
  pruned.sat_pruning = true;
  CoveringResult a = solve_covering_bnb(p, plain);
  CoveringResult b = solve_covering_bnb(p, pruned);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_LE(b.stats.branch_nodes, a.stats.branch_nodes)
      << "SAT pruning must never explore more nodes";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoveringPropertyTest,
                         ::testing::Range<std::uint64_t>(800, 812));

}  // namespace
}  // namespace sateda::opt
