/// \file wcnf_test.cpp
/// \brief WCNF parsing/writing: the `p wcnf <vars> <clauses> <top>`
///        dialect, hard/soft split at weight == top, and the negative
///        cases (bad weights, missing top, malformed clauses).
#include "opt/maxsat/wcnf.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace sateda;
using opt::read_wcnf_string;
using opt::WcnfError;
using opt::WcnfFormula;

TEST(WcnfTest, ParsesHardAndSoftClauses) {
  WcnfFormula w = read_wcnf_string(
      "c comment\n"
      "p wcnf 3 3 10\n"
      "10 1 2 0\n"
      "3 -1 0\n"
      "1 -2 3 0\n");
  EXPECT_EQ(w.top, 10u);
  EXPECT_EQ(w.num_vars(), 3);
  EXPECT_EQ(w.hard.num_clauses(), 1u);
  ASSERT_EQ(w.soft.size(), 2u);
  EXPECT_EQ(w.soft[0].weight, 3u);
  EXPECT_EQ(w.soft[0].lits, (std::vector<Lit>{neg(0)}));
  EXPECT_EQ(w.soft[1].weight, 1u);
  EXPECT_EQ(w.sum_soft_weight(), 4u);
}

TEST(WcnfTest, CostOfCountsFalsifiedSoftWeight) {
  WcnfFormula w = read_wcnf_string(
      "p wcnf 2 3 10\n"
      "10 1 2 0\n"
      "3 -1 0\n"
      "5 -2 0\n");
  EXPECT_EQ(w.cost_of({l_true, l_false}), 3u);
  EXPECT_EQ(w.cost_of({l_true, l_true}), 8u);
  EXPECT_EQ(w.cost_of({l_false, l_false}), 0u);
}

TEST(WcnfTest, RoundTripsThroughWriter) {
  WcnfFormula w = read_wcnf_string(
      "p wcnf 3 3 42\n"
      "42 1 -3 0\n"
      "7 2 0\n"
      "1 -1 -2 0\n");
  std::ostringstream out;
  opt::write_wcnf(out, w);
  WcnfFormula back = read_wcnf_string(out.str());
  EXPECT_EQ(back.top, w.top);
  EXPECT_EQ(back.hard.num_clauses(), w.hard.num_clauses());
  ASSERT_EQ(back.soft.size(), w.soft.size());
  for (std::size_t i = 0; i < w.soft.size(); ++i) {
    EXPECT_EQ(back.soft[i].weight, w.soft[i].weight);
    EXPECT_EQ(back.soft[i].lits, w.soft[i].lits);
  }
}

TEST(WcnfTest, RejectsMissingTop) {
  EXPECT_THROW(read_wcnf_string("p wcnf 2 1\n1 1 0\n"), WcnfError);
}

TEST(WcnfTest, RejectsMissingHeader) {
  EXPECT_THROW(read_wcnf_string("1 1 0\n"), WcnfError);
}

TEST(WcnfTest, RejectsCnfHeader) {
  EXPECT_THROW(read_wcnf_string("p cnf 2 1\n1 2 0\n"), WcnfError);
}

TEST(WcnfTest, RejectsZeroWeight) {
  EXPECT_THROW(read_wcnf_string("p wcnf 2 1 10\n0 1 2 0\n"), WcnfError);
}

TEST(WcnfTest, RejectsNegativeWeight) {
  EXPECT_THROW(read_wcnf_string("p wcnf 2 1 10\n-3 1 2 0\n"), WcnfError);
}

TEST(WcnfTest, RejectsWeightAboveTop) {
  EXPECT_THROW(read_wcnf_string("p wcnf 2 1 10\n11 1 2 0\n"), WcnfError);
}

TEST(WcnfTest, RejectsUnterminatedClause) {
  EXPECT_THROW(read_wcnf_string("p wcnf 2 1 10\n5 1 2\n"), WcnfError);
}

TEST(WcnfTest, RejectsDuplicateHeader) {
  EXPECT_THROW(
      read_wcnf_string("p wcnf 2 1 10\np wcnf 2 1 10\n5 1 0\n"),
      WcnfError);
}

TEST(WcnfTest, ErrorsCarryLineNumbers) {
  try {
    read_wcnf_string("p wcnf 2 2 10\n10 1 0\n0 2 0\n");
    FAIL() << "expected WcnfError";
  } catch (const WcnfError& e) {
    EXPECT_NE(std::string(e.what()).find("3"), std::string::npos)
        << "message should name line 3: " << e.what();
  }
}

}  // namespace
