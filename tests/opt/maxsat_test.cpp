/// \file maxsat_test.cpp
/// \brief Core-guided MaxSAT (opt/maxsat): proven optima on known
///        instances, OLL/Fu–Malik agreement, and cross-checks against
///        a brute-force optimum oracle.  Also exercises the totalizer
///        cardinality encoding directly.
#include "opt/maxsat/maxsat.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "opt/maxsat/totalizer.hpp"
#include "opt/maxsat/wcnf.hpp"
#include "sat/solver.hpp"

namespace {

using namespace sateda;
using opt::MaxSatAlgo;
using opt::MaxSatOptions;
using opt::MaxSatResult;
using opt::MaxSatStatus;
using opt::read_wcnf_string;
using opt::WcnfFormula;

/// Exhaustive optimum: minimum soft cost over assignments satisfying
/// every hard clause; nullopt when the hards are unsatisfiable.
std::optional<std::uint64_t> brute_force_optimum(const WcnfFormula& w) {
  const int n = w.num_vars();
  std::optional<std::uint64_t> best;
  std::vector<bool> a(n, false);
  std::vector<lbool> m(n);
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    for (int v = 0; v < n; ++v) a[v] = (bits >> v) & 1;
    if (!w.hard.is_satisfied_by(a)) continue;
    for (int v = 0; v < n; ++v) m[v] = a[v] ? l_true : l_false;
    const std::uint64_t cost = w.cost_of(m);
    if (!best || cost < *best) best = cost;
  }
  return best;
}

void expect_optimal(const WcnfFormula& w, std::uint64_t expected,
                    MaxSatAlgo algo) {
  MaxSatOptions opts;
  opts.algo = algo;
  MaxSatResult r = solve_maxsat(w, opts);
  ASSERT_EQ(r.status, MaxSatStatus::kOptimal);
  EXPECT_EQ(r.cost, expected);
  EXPECT_EQ(r.lower_bound, expected);
  // The model must actually achieve the reported cost.
  EXPECT_EQ(w.cost_of(r.model), expected);
}

TEST(MaxSatTest, AllSoftsSatisfiableCostsZero) {
  WcnfFormula w = read_wcnf_string(
      "p wcnf 2 2 10\n"
      "3 1 0\n"
      "3 2 0\n");
  expect_optimal(w, 0, MaxSatAlgo::kOll);
  expect_optimal(w, 0, MaxSatAlgo::kFuMalik);
}

TEST(MaxSatTest, UnsatHardClausesReported) {
  WcnfFormula w = read_wcnf_string(
      "p wcnf 1 3 10\n"
      "10 1 0\n"
      "10 -1 0\n"
      "1 1 0\n");
  for (MaxSatAlgo algo : {MaxSatAlgo::kOll, MaxSatAlgo::kFuMalik}) {
    MaxSatOptions opts;
    opts.algo = algo;
    EXPECT_EQ(solve_maxsat(w, opts).status, MaxSatStatus::kUnsat);
  }
}

TEST(MaxSatTest, MutexUnitSoftsLeaveOneSatisfied) {
  // Pairwise mutual exclusion over 4 wanted variables: optimum 3.
  WcnfFormula w = read_wcnf_string(
      "p wcnf 4 10 10\n"
      "10 -1 -2 0\n10 -1 -3 0\n10 -1 -4 0\n"
      "10 -2 -3 0\n10 -2 -4 0\n10 -3 -4 0\n"
      "1 1 0\n1 2 0\n1 3 0\n1 4 0\n");
  expect_optimal(w, 3, MaxSatAlgo::kOll);
  expect_optimal(w, 3, MaxSatAlgo::kFuMalik);
}

TEST(MaxSatTest, WeightedSplitsAreHandled) {
  // (x1 ∨ x2) hard; violating x1 costs 3, x2 costs 5, both wanted off.
  WcnfFormula w = read_wcnf_string(
      "p wcnf 2 3 100\n"
      "100 1 2 0\n"
      "3 -1 0\n"
      "5 -2 0\n");
  expect_optimal(w, 3, MaxSatAlgo::kOll);
  expect_optimal(w, 3, MaxSatAlgo::kFuMalik);
}

TEST(MaxSatTest, MultiLiteralSoftsGetSelectors) {
  // Soft clauses with several literals (not just units).
  WcnfFormula w;
  w.top = 100;
  w.add_hard({pos(0)});
  w.add_soft({neg(0), pos(1)}, 7);   // satisfiable via x1
  w.add_soft({neg(0), neg(1)}, 4);   // then this one is violated
  expect_optimal(w, 4, MaxSatAlgo::kOll);
  expect_optimal(w, 4, MaxSatAlgo::kFuMalik);
}

TEST(MaxSatTest, EmptySoftChargesItsWeightUpFront) {
  WcnfFormula w;
  w.top = 10;
  w.add_soft({}, 3);  // unconditionally violated
  w.add_soft({pos(0)}, 2);
  expect_optimal(w, 3, MaxSatAlgo::kOll);
}

TEST(MaxSatTest, StatsCountRoundsAndCores) {
  WcnfFormula w = read_wcnf_string(
      "p wcnf 4 10 10\n"
      "10 -1 -2 0\n10 -1 -3 0\n10 -1 -4 0\n"
      "10 -2 -3 0\n10 -2 -4 0\n10 -3 -4 0\n"
      "1 1 0\n1 2 0\n1 3 0\n1 4 0\n");
  MaxSatResult r = solve_maxsat(w);
  ASSERT_EQ(r.status, MaxSatStatus::kOptimal);
  EXPECT_GE(r.stats.rounds, 1);
  EXPECT_GT(r.stats.core_literals, 0);
  EXPECT_GE(r.stats.solver.relaxation_rounds, r.stats.rounds);
  EXPECT_FALSE(r.stats.summary().empty());
}

TEST(MaxSatTest, RandomizedAgreementWithBruteForceAndAcrossAlgorithms) {
  std::mt19937_64 rng(987654);
  std::uniform_int_distribution<int> var_dist(0, 5);
  std::uniform_int_distribution<int> sign_dist(0, 1);
  std::uniform_int_distribution<int> weight_dist(1, 4);
  std::uniform_int_distribution<int> count_dist(2, 5);
  for (int round = 0; round < 30; ++round) {
    WcnfFormula w;
    w.top = 1000;
    w.hard.ensure_var(5);
    const int hards = count_dist(rng);
    for (int i = 0; i < hards; ++i) {
      std::vector<Lit> cl;
      for (int j = 0; j < 2; ++j) {
        const int v = var_dist(rng);
        cl.push_back(sign_dist(rng) ? pos(v) : neg(v));
      }
      w.add_hard(cl);
    }
    const int softs = count_dist(rng) + 2;
    for (int i = 0; i < softs; ++i) {
      std::vector<Lit> cl;
      const int len = 1 + sign_dist(rng);
      for (int j = 0; j < len; ++j) {
        const int v = var_dist(rng);
        cl.push_back(sign_dist(rng) ? pos(v) : neg(v));
      }
      w.add_soft(cl, static_cast<std::uint64_t>(weight_dist(rng)));
    }

    const std::optional<std::uint64_t> expected = brute_force_optimum(w);
    for (MaxSatAlgo algo : {MaxSatAlgo::kOll, MaxSatAlgo::kFuMalik}) {
      MaxSatOptions opts;
      opts.algo = algo;
      MaxSatResult r = solve_maxsat(w, opts);
      if (!expected.has_value()) {
        EXPECT_EQ(r.status, MaxSatStatus::kUnsat) << "round " << round;
      } else {
        ASSERT_EQ(r.status, MaxSatStatus::kOptimal) << "round " << round;
        EXPECT_EQ(r.cost, *expected) << "round " << round;
        EXPECT_EQ(w.cost_of(r.model), *expected) << "round " << round;
      }
    }
  }
}

TEST(MaxSatTest, InprocessingEngineAgreesWithBruteForce) {
  // Soft-clause selectors are assumed on every iteration; the solvers
  // freeze them, so aggressive inprocessing between iterations must
  // not change any optimum.
  std::mt19937_64 rng(24680);
  std::uniform_int_distribution<int> var_dist(0, 5);
  std::uniform_int_distribution<int> sign_dist(0, 1);
  std::uniform_int_distribution<int> weight_dist(1, 4);
  for (int round = 0; round < 12; ++round) {
    WcnfFormula w;
    w.top = 1000;
    w.hard.ensure_var(5);
    for (int i = 0; i < 3; ++i) {
      const int v1 = var_dist(rng), v2 = var_dist(rng);
      w.add_hard({sign_dist(rng) ? pos(v1) : neg(v1),
                  sign_dist(rng) ? pos(v2) : neg(v2)});
    }
    for (int i = 0; i < 5; ++i) {
      std::vector<Lit> cl;
      const int len = 1 + sign_dist(rng);
      for (int j = 0; j < len; ++j) {
        const int v = var_dist(rng);
        cl.push_back(sign_dist(rng) ? pos(v) : neg(v));
      }
      w.add_soft(cl, static_cast<std::uint64_t>(weight_dist(rng)));
    }
    const std::optional<std::uint64_t> expected = brute_force_optimum(w);
    for (MaxSatAlgo algo : {MaxSatAlgo::kOll, MaxSatAlgo::kFuMalik}) {
      MaxSatOptions opts;
      opts.algo = algo;
      opts.solver.inprocess.enabled = true;
      opts.solver.inprocess.interval = 0;
      MaxSatResult r = solve_maxsat(w, opts);
      if (!expected.has_value()) {
        EXPECT_EQ(r.status, MaxSatStatus::kUnsat) << "round " << round;
      } else {
        ASSERT_EQ(r.status, MaxSatStatus::kOptimal) << "round " << round;
        EXPECT_EQ(r.cost, *expected) << "round " << round;
        EXPECT_EQ(w.cost_of(r.model), *expected) << "round " << round;
      }
    }
  }
}

TEST(TotalizerTest, CountsInputsExactly) {
  // For every assignment of 4 inputs, the outputs must read off the
  // number of true inputs in unary.
  for (int bits = 0; bits < 16; ++bits) {
    sat::Solver s;
    std::vector<Lit> inputs;
    for (int i = 0; i < 4; ++i) inputs.push_back(pos(s.new_var()));
    opt::Totalizer tot(s, inputs);
    ASSERT_TRUE(tot.okay());
    int want = 0;
    for (int i = 0; i < 4; ++i) {
      const bool on = (bits >> i) & 1;
      ASSERT_TRUE(s.add_clause({on ? inputs[i] : ~inputs[i]}));
      want += on ? 1 : 0;
    }
    ASSERT_EQ(s.solve(), sat::SolveResult::kSat);
    for (int k = 1; k <= 4; ++k) {
      // at_least(k) is implied exactly when want >= k.
      const bool implied =
          s.solve({~tot.at_least(k)}) == sat::SolveResult::kUnsat;
      EXPECT_EQ(implied, want >= k) << "bits=" << bits << " k=" << k;
    }
  }
}

TEST(TotalizerTest, AtMostAssumptionBoundsTrueInputs) {
  sat::Solver s;
  std::vector<Lit> inputs;
  for (int i = 0; i < 5; ++i) inputs.push_back(pos(s.new_var()));
  opt::Totalizer tot(s, inputs);
  ASSERT_TRUE(tot.okay());
  // Force 3 inputs true; at-most-2 must fail, at-most-3 must hold.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(s.add_clause({inputs[i]}));
  EXPECT_EQ(s.solve({tot.at_most_assumption(2)}), sat::SolveResult::kUnsat);
  EXPECT_EQ(s.solve({tot.at_most_assumption(3)}), sat::SolveResult::kSat);
}

}  // namespace
