#include "opt/prime_implicants.hpp"

#include <gtest/gtest.h>

#include "cnf/generators.hpp"
#include "test_util.hpp"

namespace sateda::opt {
namespace {

TEST(ImplicantTest, SyntacticCheck) {
  // f = (a + b)(¬a + c)
  CnfFormula f(3);
  f.add_binary(pos(0), pos(1));
  f.add_binary(neg(0), pos(2));
  EXPECT_TRUE(is_implicant(f, {pos(0), pos(2)}));
  EXPECT_TRUE(is_implicant(f, {pos(1), neg(0)}));
  EXPECT_FALSE(is_implicant(f, {pos(0)}));  // second clause unmet
  EXPECT_FALSE(is_implicant(f, {neg(1), pos(2)}));  // first clause unmet
}

TEST(ImplicantTest, CubeImplicationMatchesSemantics) {
  CnfFormula f(3);
  f.add_binary(pos(0), pos(1));
  f.add_binary(neg(0), pos(2));
  // {b, c} hits clause 1 via b and clause 2 via c → implicant.
  EXPECT_TRUE(is_implicant(f, {pos(1), pos(2)}));
}

TEST(PrimeImplicantTest, MinimumOnSmallFunction) {
  // f = (a + b)(a + c): the single literal a is an implicant (and the
  // minimum one).
  CnfFormula f(3);
  f.add_binary(pos(0), pos(1));
  f.add_binary(pos(0), pos(2));
  PrimeImplicantResult r = minimum_prime_implicant(f);
  ASSERT_TRUE(r.exists);
  EXPECT_EQ(r.cube.size(), 1u);
  EXPECT_EQ(r.cube[0], pos(0));
  EXPECT_TRUE(is_prime_implicant(f, r.cube));
}

TEST(PrimeImplicantTest, UnsatFunctionHasNoImplicant) {
  CnfFormula f(1);
  f.add_unit(pos(0));
  f.add_unit(neg(0));
  EXPECT_FALSE(minimum_prime_implicant(f).exists);
}

TEST(PrimeImplicantTest, TautologyHasEmptyImplicant) {
  CnfFormula f(2);  // no clauses
  PrimeImplicantResult r = minimum_prime_implicant(f);
  ASSERT_TRUE(r.exists);
  EXPECT_TRUE(r.cube.empty());
}

TEST(PrimeImplicantTest, XorNeedsTwoLiterals) {
  // f = a ⊕ b as CNF: (a + b)(¬a + ¬b).  Every implicant needs both
  // variables.
  CnfFormula f(2);
  f.add_binary(pos(0), pos(1));
  f.add_binary(neg(0), neg(1));
  PrimeImplicantResult r = minimum_prime_implicant(f);
  ASSERT_TRUE(r.exists);
  EXPECT_EQ(r.cube.size(), 2u);
  EXPECT_TRUE(is_prime_implicant(f, r.cube));
}

class PrimeImplicantPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrimeImplicantPropertyTest, ResultIsMinimumSizeAndPrime) {
  CnfFormula f = random_3sat(8, 3.0, GetParam());
  PrimeImplicantResult r = minimum_prime_implicant(f);
  const bool satisfiable = testing::brute_force_satisfiable(f);
  ASSERT_EQ(r.exists, satisfiable);
  if (!satisfiable) return;
  EXPECT_TRUE(is_implicant(f, r.cube));
  EXPECT_TRUE(is_prime_implicant(f, r.cube));
  // No smaller cube is an implicant: exhaustively try all cubes of
  // size |cube| - 1 (8 vars → at most 3^8 cubes, cheap).
  const int target = static_cast<int>(r.cube.size()) - 1;
  if (target >= 0) {
    std::vector<int> state(8, 0);  // 0 absent, 1 pos, 2 neg
    std::uint64_t total = 1;
    for (int i = 0; i < 8; ++i) total *= 3;
    for (std::uint64_t code = 0; code < total; ++code) {
      std::uint64_t c = code;
      std::vector<Lit> cube;
      for (int i = 0; i < 8; ++i) {
        int d = c % 3;
        c /= 3;
        if (d == 1) cube.push_back(pos(i));
        if (d == 2) cube.push_back(neg(i));
      }
      if (static_cast<int>(cube.size()) != target) continue;
      EXPECT_FALSE(is_implicant(f, cube))
          << "found a smaller implicant than the 'minimum'";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimeImplicantPropertyTest,
                         ::testing::Range<std::uint64_t>(900, 910));

}  // namespace
}  // namespace sateda::opt
