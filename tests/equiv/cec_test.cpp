#include "equiv/cec.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "circuit/simulator.hpp"
#include "circuit/miter.hpp"
#include "circuit/structural_hash.hpp"
#include "sat/drat_check.hpp"
#include "sat/proof.hpp"

namespace sateda::equiv {
namespace {

using circuit::Circuit;
using circuit::NodeId;

/// A carry-lookahead-flavoured adder: same function as the ripple
/// adder, different structure — the classic CEC scenario.
Circuit alternative_adder(int n) {
  Circuit c("claddr" + std::to_string(n));
  std::vector<NodeId> a(n), b(n);
  for (int i = 0; i < n; ++i) a[i] = c.add_input("a" + std::to_string(i));
  for (int i = 0; i < n; ++i) b[i] = c.add_input("b" + std::to_string(i));
  NodeId cin = c.add_input("cin");
  // g_i = a·b, p_i = a⊕b; carries expanded iteratively.
  NodeId carry = cin;
  for (int i = 0; i < n; ++i) {
    NodeId g = c.add_and(a[i], b[i]);
    NodeId p = c.add_xor(a[i], b[i]);
    c.mark_output(c.add_xor(p, carry), "s" + std::to_string(i));
    // carry' = g | (p & carry) — same recurrence, but build with NOR
    // logic for structural diversity.
    NodeId pc = c.add_and(p, carry);
    NodeId ng = c.add_not(g);
    NodeId npc = c.add_not(pc);
    carry = c.add_not(c.add_and(ng, npc));  // De Morgan OR
  }
  c.mark_output(carry, "cout");
  return c;
}

TEST(CecTest, AddersAreEquivalent) {
  CecResult r =
      check_equivalence(circuit::ripple_carry_adder(6), alternative_adder(6));
  EXPECT_EQ(r.verdict, CecVerdict::kEquivalent);
}

TEST(CecTest, StrashSettlesIdenticalCircuits) {
  CecResult r = check_equivalence(circuit::c17(), circuit::c17());
  EXPECT_EQ(r.verdict, CecVerdict::kEquivalent);
  EXPECT_TRUE(r.settled_structurally)
      << "identical circuits must merge completely in the miter";
}

TEST(CecTest, WithoutStrashStillProvesEquivalence) {
  CecOptions opts;
  opts.structural_hashing = false;
  CecResult r = check_equivalence(circuit::c17(), circuit::c17(), opts);
  EXPECT_EQ(r.verdict, CecVerdict::kEquivalent);
  EXPECT_FALSE(r.settled_structurally);
}

TEST(CecTest, CounterexampleIsReal) {
  Circuit a = circuit::ripple_carry_adder(4);
  Circuit b = alternative_adder(4);
  // Corrupt b: swap its final carry into a NAND.
  Circuit bad("bad");
  {
    std::vector<NodeId> in;
    for (std::size_t i = 0; i < b.inputs().size(); ++i) {
      in.push_back(bad.add_input());
    }
    auto map = circuit::append_copy(bad, b, in);
    for (std::size_t i = 0; i < b.outputs().size(); ++i) {
      NodeId o = map[b.outputs()[i]];
      if (i + 1 == b.outputs().size()) o = bad.add_not(o);  // corrupt cout
      bad.mark_output(o, "o" + std::to_string(i));
    }
  }
  CecResult r = check_equivalence(a, bad);
  ASSERT_EQ(r.verdict, CecVerdict::kNotEquivalent);
  ASSERT_EQ(r.counterexample.size(), a.inputs().size());
  EXPECT_NE(circuit::simulate_outputs(a, r.counterexample),
            circuit::simulate_outputs(bad, r.counterexample));
}

TEST(CecTest, SingleGateMutationDetected) {
  Circuit good = circuit::alu(3);
  // Mutate one gate type via BENCH-free rebuild: copy and flip an AND
  // deep inside by appending a NOT on one output.
  Circuit mutated("alu_mut");
  std::vector<NodeId> in;
  for (std::size_t i = 0; i < good.inputs().size(); ++i) {
    in.push_back(mutated.add_input());
  }
  auto map = circuit::append_copy(mutated, good, in);
  for (std::size_t i = 0; i < good.outputs().size(); ++i) {
    NodeId o = map[good.outputs()[i]];
    if (i == 1) o = mutated.add_not(o);
    mutated.mark_output(o, "o" + std::to_string(i));
  }
  CecResult r = check_equivalence(good, mutated);
  ASSERT_EQ(r.verdict, CecVerdict::kNotEquivalent);
  EXPECT_NE(circuit::simulate_outputs(good, r.counterexample),
            circuit::simulate_outputs(mutated, r.counterexample));
}

TEST(CecTest, StructuralLayerAgrees) {
  CecOptions with_layer;
  with_layer.use_structural_layer = true;
  with_layer.structural_hashing = false;
  CecResult r = check_equivalence(circuit::ripple_carry_adder(4),
                                  alternative_adder(4), with_layer);
  EXPECT_EQ(r.verdict, CecVerdict::kEquivalent);
}

class CecPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CecPropertyTest, StrashedCircuitAlwaysEquivalent) {
  Circuit c = circuit::random_circuit(8, 40, GetParam());
  Circuit s = circuit::strash(c);
  CecResult r = check_equivalence(c, s);
  EXPECT_EQ(r.verdict, CecVerdict::kEquivalent);
}

TEST_P(CecPropertyTest, VerdictMatchesExhaustiveSimulation) {
  Circuit a = circuit::random_circuit(6, 25, GetParam());
  // b is a copy of a; odd seeds flip one output through an inverter —
  // a mutation that may or may not be observable.
  Circuit b("copy");
  {
    std::vector<NodeId> in;
    for (std::size_t i = 0; i < a.inputs().size(); ++i) {
      in.push_back(b.add_input());
    }
    auto map = circuit::append_copy(b, a, in);
    for (std::size_t i = 0; i < a.outputs().size(); ++i) {
      NodeId o = map[a.outputs()[i]];
      if (GetParam() % 2 == 1 && i == a.outputs().size() / 2) {
        o = b.add_not(o);
      }
      b.mark_output(o, "o" + std::to_string(i));
    }
  }
  bool equal = true;
  for (std::uint64_t bits = 0; bits < 64 && equal; ++bits) {
    std::vector<bool> ins(6);
    for (int i = 0; i < 6; ++i) ins[i] = (bits >> i) & 1;
    if (circuit::simulate_outputs(a, ins) != circuit::simulate_outputs(b, ins)) {
      equal = false;
    }
  }
  CecResult r = check_equivalence(a, b);
  EXPECT_EQ(r.verdict == CecVerdict::kEquivalent, equal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CecPropertyTest,
                         ::testing::Range<std::uint64_t>(600, 612));

// --- structure-aware CNF pipeline (rewrite → PG → hints) -------------

CecOptions pipeline_options() {
  CecOptions opts;
  opts.rewrite = true;
  opts.plaisted_greenbaum = true;
  opts.struct_hints = true;
  return opts;
}

TEST(CecPipelineTest, ProvesAdderEquivalence) {
  CecResult r = check_equivalence(circuit::ripple_carry_adder(6),
                                  alternative_adder(6), pipeline_options());
  EXPECT_EQ(r.verdict, CecVerdict::kEquivalent);
  EXPECT_TRUE(r.used_cnf_pipeline);
}

TEST(CecPipelineTest, RewriteSettlesDeMorganAdderStructurally) {
  // The alternative adder's NAND-of-inverters carry normalizes onto
  // the ripple carry under complement-edge rewriting: the miter folds
  // to constant 0 with no SAT call at all.
  CecResult r = check_equivalence(circuit::ripple_carry_adder(8),
                                  alternative_adder(8), pipeline_options());
  EXPECT_EQ(r.verdict, CecVerdict::kEquivalent);
  EXPECT_TRUE(r.settled_structurally);
  EXPECT_EQ(r.conflicts, 0);
}

TEST(CecPipelineTest, CounterexampleIsRealUnderPipeline) {
  Circuit good = circuit::ripple_carry_adder(4);
  Circuit bad = alternative_adder(4);
  // Corrupt the final carry: swap cout for its inverse.
  Circuit mutated("mut");
  {
    std::vector<NodeId> ins;
    for (std::size_t i = 0; i < bad.inputs().size(); ++i)
      ins.push_back(mutated.add_input());
    auto map = circuit::append_copy(mutated, bad, ins);
    for (std::size_t i = 0; i + 1 < bad.outputs().size(); ++i)
      mutated.mark_output(map[bad.outputs()[i]], "s" + std::to_string(i));
    mutated.mark_output(mutated.add_not(map[bad.outputs().back()]), "cout");
  }
  CecResult r = check_equivalence(good, mutated, pipeline_options());
  ASSERT_EQ(r.verdict, CecVerdict::kNotEquivalent);
  ASSERT_EQ(r.counterexample.size(), good.inputs().size());
  EXPECT_NE(circuit::simulate_outputs(good, r.counterexample),
            circuit::simulate_outputs(mutated, r.counterexample));
}

TEST(CecPipelineTest, VerdictMatchesPlainPathOnRandomMutations) {
  for (std::uint64_t seed = 700; seed < 708; ++seed) {
    Circuit a = circuit::random_circuit(6, 25, seed);
    Circuit b("copy");
    std::vector<NodeId> in;
    for (std::size_t i = 0; i < a.inputs().size(); ++i)
      in.push_back(b.add_input());
    auto map = circuit::append_copy(b, a, in);
    for (std::size_t i = 0; i < a.outputs().size(); ++i) {
      NodeId o = map[a.outputs()[i]];
      if (seed % 2 == 1 && i == 0) o = b.add_not(o);
      b.mark_output(o, "o" + std::to_string(i));
    }
    CecResult plain = check_equivalence(a, b);
    CecResult piped = check_equivalence(a, b, pipeline_options());
    EXPECT_EQ(piped.verdict, plain.verdict) << "seed " << seed;
    EXPECT_TRUE(piped.used_cnf_pipeline || piped.settled_structurally);
  }
}

TEST(CecPipelineTest, UnsatVerdictIsDratCertified) {
  // PG without rewriting forces a genuine SAT call (strash alone does
  // not settle the adder pair); the traced proof must re-certify
  // against the exact formula the solver refuted.
  CecOptions opts;
  opts.plaisted_greenbaum = true;
  sat::Proof proof;
  opts.proof = &proof;
  CecResult r = check_equivalence(circuit::ripple_carry_adder(4),
                                  alternative_adder(4), opts);
  ASSERT_EQ(r.verdict, CecVerdict::kEquivalent);
  ASSERT_FALSE(r.settled_structurally);
  EXPECT_GT(r.pipeline_formula.num_clauses(), 0u);
  sat::DratCheckResult chk = sat::check_drat(r.pipeline_formula, proof);
  EXPECT_TRUE(chk.ok) << chk.message;
  EXPECT_TRUE(chk.refutation);
}

}  // namespace
}  // namespace sateda::equiv
