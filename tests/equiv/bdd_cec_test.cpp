#include "equiv/bdd_cec.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "circuit/miter.hpp"
#include "circuit/simulator.hpp"

namespace sateda::equiv {
namespace {

using circuit::Circuit;
using circuit::NodeId;

Circuit inverted_copy(const Circuit& src, std::size_t which) {
  Circuit out("bug");
  std::vector<NodeId> in;
  for (std::size_t i = 0; i < src.inputs().size(); ++i) {
    in.push_back(out.add_input());
  }
  auto map = circuit::append_copy(out, src, in);
  for (std::size_t i = 0; i < src.outputs().size(); ++i) {
    NodeId o = map[src.outputs()[i]];
    if (i == which) o = out.add_not(o);
    out.mark_output(o, "o" + std::to_string(i));
  }
  return out;
}

TEST(BddCecTest, EquivalentAdders) {
  Circuit a = circuit::ripple_carry_adder(6);
  BddCecOptions opts;
  opts.interleave_inputs = true;
  BddCecResult r = check_equivalence_bdd(a, circuit::ripple_carry_adder(6),
                                         opts);
  EXPECT_EQ(r.verdict, CecVerdict::kEquivalent);
  EXPECT_GT(r.bdd_nodes, 2u);
}

TEST(BddCecTest, CounterexampleIsReal) {
  Circuit a = circuit::alu(3);
  Circuit b = inverted_copy(a, 1);
  BddCecResult r = check_equivalence_bdd(a, b);
  ASSERT_EQ(r.verdict, CecVerdict::kNotEquivalent);
  EXPECT_NE(circuit::simulate_outputs(a, r.counterexample),
            circuit::simulate_outputs(b, r.counterexample));
}

TEST(BddCecTest, NodeLimitReportsUnknown) {
  // A multiplier's middle output bit is exponential in any order —
  // with a tiny budget the BDD attempt must bail out gracefully.
  Circuit a = circuit::array_multiplier(8);
  BddCecOptions opts;
  opts.node_limit = 2000;
  BddCecResult r = check_equivalence_bdd(a, circuit::array_multiplier(8),
                                         opts);
  EXPECT_EQ(r.verdict, CecVerdict::kUnknown);
}

TEST(BddCecTest, InterfaceMismatchThrows) {
  EXPECT_THROW(
      check_equivalence_bdd(circuit::c17(), circuit::parity_tree(4)),
      circuit::CircuitError);
}

TEST(HybridCecTest, SmallCircuitSettledByBdd) {
  HybridCecResult r =
      check_equivalence_hybrid(circuit::c17(), circuit::c17());
  EXPECT_TRUE(r.used_bdd);
  EXPECT_EQ(r.result.verdict, CecVerdict::kEquivalent);
}

TEST(HybridCecTest, BlowupFallsBackToSat) {
  Circuit a = circuit::array_multiplier(7);
  BddCecOptions bdd_opts;
  bdd_opts.node_limit = 1000;
  HybridCecResult r =
      check_equivalence_hybrid(a, circuit::array_multiplier(7), bdd_opts);
  EXPECT_FALSE(r.used_bdd) << "the multiplier must exceed 1000 BDD nodes";
  EXPECT_EQ(r.result.verdict, CecVerdict::kEquivalent);
}

class BddCecPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BddCecPropertyTest, AgreesWithSatCec) {
  Circuit a = circuit::random_circuit(8, 35, GetParam());
  Circuit b = (GetParam() % 2) ? inverted_copy(a, a.outputs().size() / 2)
                               : a;
  BddCecResult via_bdd = check_equivalence_bdd(a, b);
  CecResult via_sat = check_equivalence(a, b);
  ASSERT_NE(via_bdd.verdict, CecVerdict::kUnknown);
  EXPECT_EQ(via_bdd.verdict, via_sat.verdict) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddCecPropertyTest,
                         ::testing::Range<std::uint64_t>(1300, 1312));

}  // namespace
}  // namespace sateda::equiv
