#include "equiv/sec.hpp"

#include <gtest/gtest.h>

#include "circuit/simulator.hpp"

namespace sateda::equiv {
namespace {

using bmc::SequentialCircuit;
using circuit::NodeId;

/// Parity tracker, implementation A: one latch, toggles on input 1.
/// Output: the parity bit.
SequentialCircuit parity_one_latch() {
  SequentialCircuit m;
  circuit::Circuit& c = m.comb;
  c.set_name("parity1");
  NodeId in = c.add_input("in");
  m.num_primary_inputs = 1;
  NodeId q = c.add_input("q");
  m.next_state.push_back(c.add_xor(q, in));
  m.bad = c.add_const(false);
  NodeId out = c.add_buf(q);
  c.mark_output(out, "parity");
  m.outputs.push_back(out);
  m.initial_state = {false};
  return m;
}

/// Parity tracker, implementation B: two latches holding (p, ¬p);
/// output decoded from both — functionally identical to A.
SequentialCircuit parity_two_latch() {
  SequentialCircuit m;
  circuit::Circuit& c = m.comb;
  c.set_name("parity2");
  NodeId in = c.add_input("in");
  m.num_primary_inputs = 1;
  NodeId p = c.add_input("p");
  NodeId np = c.add_input("np");
  NodeId next_p = c.add_xor(p, in);
  m.next_state.push_back(next_p);
  m.next_state.push_back(c.add_not(next_p));
  m.bad = c.add_const(false);
  // out = p ∧ ¬np — over the reachable states np == ¬p, so out == p.
  NodeId out = c.add_and(p, c.add_not(np));
  c.mark_output(out, "parity");
  m.outputs.push_back(out);
  m.initial_state = {false, true};
  return m;
}

/// A buggy variant: forgets to toggle when the previous parity was 1.
SequentialCircuit parity_buggy() {
  SequentialCircuit m;
  circuit::Circuit& c = m.comb;
  c.set_name("parity_bug");
  NodeId in = c.add_input("in");
  m.num_primary_inputs = 1;
  NodeId q = c.add_input("q");
  // next = q ? q : q ⊕ in  — sticks at 1.
  NodeId toggled = c.add_xor(q, in);
  NodeId keep = c.add_and(q, q);
  NodeId not_q = c.add_not(q);
  NodeId use_toggle = c.add_and(not_q, toggled);
  m.next_state.push_back(c.add_or(keep, use_toggle));
  m.bad = c.add_const(false);
  NodeId out = c.add_buf(q);
  c.mark_output(out, "parity");
  m.outputs.push_back(out);
  m.initial_state = {false};
  return m;
}

TEST(SecTest, MachineEqualsItself) {
  SequentialCircuit a = parity_one_latch();
  SecResult r = check_sequential_equivalence(a, parity_one_latch());
  EXPECT_EQ(r.verdict, SecVerdict::kEquivalent);
}

TEST(SecTest, RetimedImplementationsAreEquivalent) {
  // Needs induction over the reachable-state invariant np == ¬p: plain
  // BMC alone could never prove it.
  SecResult r =
      check_sequential_equivalence(parity_one_latch(), parity_two_latch());
  EXPECT_EQ(r.verdict, SecVerdict::kEquivalent);
  EXPECT_GE(r.depth, 0);
}

TEST(SecTest, BuggyImplementationIsRefutedWithTrace) {
  SequentialCircuit a = parity_one_latch();
  SequentialCircuit b = parity_buggy();
  SecResult r = check_sequential_equivalence(a, b);
  ASSERT_EQ(r.verdict, SecVerdict::kNotEquivalent);
  ASSERT_FALSE(r.trace.empty());
  // Replay the distinguishing trace on both machines.
  std::vector<bool> sa = a.initial_state, sb = b.initial_state;
  bool diverged = false;
  for (const auto& frame : r.trace) {
    // Compare observable outputs this cycle.
    std::vector<bool> ca, cb;
    {
      std::vector<bool> in = frame;
      std::vector<bool> full_a = in;
      for (bool s : sa) full_a.push_back(s);
      auto va = circuit::simulate(a.comb, full_a);
      std::vector<bool> full_b = in;
      for (bool s : sb) full_b.push_back(s);
      auto vb = circuit::simulate(b.comb, full_b);
      for (NodeId o : a.outputs) ca.push_back(va[o]);
      for (NodeId o : b.outputs) cb.push_back(vb[o]);
      if (ca != cb) diverged = true;
      std::vector<bool> na, nb;
      for (NodeId n : a.next_state) na.push_back(va[n]);
      for (NodeId n : b.next_state) nb.push_back(vb[n]);
      sa = na;
      sb = nb;
    }
  }
  EXPECT_TRUE(diverged) << "the trace must actually distinguish the machines";
}

TEST(SecTest, InterfaceMismatchThrows) {
  SequentialCircuit a = parity_one_latch();
  SequentialCircuit b = parity_one_latch();
  b.num_primary_inputs = 0;  // corrupt
  EXPECT_THROW(build_product_machine(a, b), circuit::CircuitError);
}

TEST(SecTest, CountersOfDifferentBadValuesDiffer) {
  // Observable = the monitor signal; counters watching different
  // values are distinguishable by driving en long enough.
  bmc::SequentialCircuit a = bmc::counter_machine(3, 3);
  bmc::SequentialCircuit b = bmc::counter_machine(3, 5);
  bmc::InductionOptions opts;
  opts.max_k = 16;
  SecResult r = check_sequential_equivalence(a, b, opts);
  EXPECT_EQ(r.verdict, SecVerdict::kNotEquivalent);
  EXPECT_EQ(r.depth, 3) << "first divergence when the count hits 3";
}

TEST(SecTest, SameCounterDifferentWidthPadding) {
  // 3-bit counter watching 5 vs 4-bit counter watching 5: equivalent
  // until the wrap... 3-bit wraps at 8, so after 8+5 steps behaviours
  // diverge (the 4-bit one has not wrapped).  Expect NOT equivalent
  // with a depth-13 trace.
  bmc::SequentialCircuit a = bmc::counter_machine(3, 5);
  bmc::SequentialCircuit b = bmc::counter_machine(4, 5);
  bmc::InductionOptions opts;
  opts.max_k = 24;
  SecResult r = check_sequential_equivalence(a, b, opts);
  EXPECT_EQ(r.verdict, SecVerdict::kNotEquivalent);
  EXPECT_EQ(r.depth, 13);
}

}  // namespace
}  // namespace sateda::equiv
