#include "bmc/bmc.hpp"

#include <gtest/gtest.h>

namespace sateda::bmc {
namespace {

TEST(SequentialTest, CounterSteps) {
  SequentialCircuit m = counter_machine(4, 9);
  std::vector<bool> state = m.initial_state;
  for (int i = 0; i < 8; ++i) {
    auto [next, bad] = step(m, state, {true});
    EXPECT_FALSE(bad) << "step " << i;
    state = next;
  }
  auto [next, bad] = step(m, state, {true});
  // After 9 increments the state is 9 → bad fires one step later when
  // the state is sampled; with bad computed combinationally on the
  // current state, state==9 is seen at the *next* call.
  EXPECT_FALSE(bad);
  auto [next2, bad2] = step(m, next, {false});
  EXPECT_TRUE(bad2);
  (void)next2;
}

TEST(SequentialTest, EnableGatesCounting) {
  SequentialCircuit m = counter_machine(3, 7);
  std::vector<bool> state = m.initial_state;
  auto [next, bad] = step(m, state, {false});
  EXPECT_EQ(next, state) << "disabled counter must hold its value";
  (void)bad;
}

TEST(BmcTest, CounterReachesBadAtExactDepth) {
  // bad when q == 5; the shortest witness needs 5 enabled steps, and
  // bad is observed in frame 5 (state q==5 entering that frame).
  SequentialCircuit m = counter_machine(4, 5);
  BmcResult r = bounded_model_check(m);
  ASSERT_EQ(r.verdict, BmcVerdict::kCounterexample);
  EXPECT_EQ(r.depth, 5);
  EXPECT_TRUE(replay_reaches_bad(m, r.trace));
}

TEST(BmcTest, UnreachableBadHitsTheBound) {
  // 3-bit counter counts 0..7; bad value 9 is unreachable (beyond
  // width): verdict must be bound-reached.
  SequentialCircuit m = counter_machine(3, 9);
  BmcOptions opts;
  opts.max_depth = 20;
  BmcResult r = bounded_model_check(m, opts);
  EXPECT_EQ(r.verdict, BmcVerdict::kNoCounterexample);
}

TEST(BmcTest, ShiftRegisterNeedsConsecutiveOnes) {
  SequentialCircuit m = shift_register_machine(4);
  BmcResult r = bounded_model_check(m);
  ASSERT_EQ(r.verdict, BmcVerdict::kCounterexample);
  EXPECT_EQ(r.depth, 4);
  EXPECT_TRUE(replay_reaches_bad(m, r.trace));
}

TEST(BmcTest, HandshakeProtocolViolation) {
  SequentialCircuit m = handshake_machine();
  BmcResult r = bounded_model_check(m);
  ASSERT_EQ(r.verdict, BmcVerdict::kCounterexample);
  EXPECT_EQ(r.depth, 3) << "error state needs exactly three go steps";
  EXPECT_TRUE(replay_reaches_bad(m, r.trace));
}

TEST(BmcTest, LfsrHitsStateAtExactTime) {
  // Autonomous machine: BMC must find the precise step at which the
  // LFSR trajectory passes through bad_state.
  SequentialCircuit m = lfsr_machine(5, 0b10100, 0b00001, 0b01001);
  // Ground truth by simulation.
  std::vector<bool> state = m.initial_state;
  int truth = -1;
  for (int t = 0; t <= 40; ++t) {
    auto [next, bad] = step(m, state, {});
    if (bad) {
      truth = t;
      break;
    }
    state = next;
  }
  BmcOptions opts;
  opts.max_depth = 40;
  BmcResult r = bounded_model_check(m, opts);
  if (truth < 0) {
    EXPECT_EQ(r.verdict, BmcVerdict::kNoCounterexample);
  } else {
    ASSERT_EQ(r.verdict, BmcVerdict::kCounterexample);
    EXPECT_EQ(r.depth, truth);
  }
}

TEST(BmcTest, TraceHasOneInputVectorPerFrame) {
  SequentialCircuit m = shift_register_machine(3);
  BmcResult r = bounded_model_check(m);
  ASSERT_EQ(r.verdict, BmcVerdict::kCounterexample);
  EXPECT_EQ(static_cast<int>(r.trace.size()), r.depth + 1);
  for (const auto& frame : r.trace) {
    EXPECT_EQ(static_cast<int>(frame.size()), m.num_primary_inputs);
  }
}

TEST(BmcTest, IncrementalEngineReusableAcrossDepths) {
  SequentialCircuit m = counter_machine(4, 6);
  BmcEngine engine(m);
  for (int k = 0; k < 6; ++k) {
    EXPECT_EQ(engine.check_depth(k), sat::SolveResult::kUnsat) << k;
  }
  EXPECT_EQ(engine.check_depth(6), sat::SolveResult::kSat);
  auto trace = engine.extract_trace(6);
  EXPECT_TRUE(replay_reaches_bad(m, trace));
}

TEST(BmcTest, BudgetYieldsUnknown) {
  SequentialCircuit m = counter_machine(10, 900);
  BmcOptions opts;
  opts.max_depth = 902;
  opts.conflict_budget = 1;
  BmcResult r = bounded_model_check(m, opts);
  // With a one-conflict budget the run must either finish trivially or
  // stop as unknown; it must not misreport a counterexample.
  EXPECT_NE(r.verdict, BmcVerdict::kCounterexample);
}

class BmcDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(BmcDepthSweep, CounterDepthMatchesBadValue) {
  const int bad_value = GetParam();
  SequentialCircuit m = counter_machine(5, bad_value);
  BmcResult r = bounded_model_check(m);
  ASSERT_EQ(r.verdict, BmcVerdict::kCounterexample);
  EXPECT_EQ(r.depth, bad_value);
  EXPECT_TRUE(replay_reaches_bad(m, r.trace));
}

INSTANTIATE_TEST_SUITE_P(Depths, BmcDepthSweep,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 21));

TEST(BmcPipelineTest, RewriteAndHintsPreserveVerdictAndDepth) {
  // Rewriting the transition relation and seeding per-frame hints must
  // not change what BMC concludes, only how fast it gets there.
  for (int bad : {3, 5, 9}) {
    SequentialCircuit m = counter_machine(4, bad);
    BmcOptions opts;
    opts.rewrite = true;
    opts.struct_hints = true;
    BmcResult plain = bounded_model_check(m);
    BmcResult piped = bounded_model_check(m, opts);
    ASSERT_EQ(piped.verdict, plain.verdict) << "bad=" << bad;
    ASSERT_EQ(piped.verdict, BmcVerdict::kCounterexample);
    EXPECT_EQ(piped.depth, plain.depth);
    EXPECT_TRUE(replay_reaches_bad(m, piped.trace)) << "bad=" << bad;
  }
}

TEST(BmcPipelineTest, UnreachableBadStaysUnreachableUnderRewrite) {
  SequentialCircuit m = counter_machine(3, 9);
  BmcOptions opts;
  opts.rewrite = true;
  opts.struct_hints = true;
  opts.max_depth = 20;
  BmcResult r = bounded_model_check(m, opts);
  EXPECT_EQ(r.verdict, BmcVerdict::kNoCounterexample);
}

TEST(BmcPipelineTest, ShiftRegisterTraceReplaysUnderPipeline) {
  SequentialCircuit m = shift_register_machine(4);
  BmcOptions opts;
  opts.rewrite = true;
  opts.struct_hints = true;
  BmcResult r = bounded_model_check(m, opts);
  ASSERT_EQ(r.verdict, BmcVerdict::kCounterexample);
  EXPECT_EQ(r.depth, 4);
  EXPECT_TRUE(replay_reaches_bad(m, r.trace));
}

}  // namespace
}  // namespace sateda::bmc
