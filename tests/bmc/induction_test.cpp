#include "bmc/induction.hpp"

#include <gtest/gtest.h>

namespace sateda::bmc {
namespace {

TEST(InductionTest, StepCoreNamesOnlyNeededHypothesisFrames) {
  // The LFSR proof needs induction strength > 0; the reported frame
  // core must be a subset of the hypothesis frames and (since the
  // proof closed exactly at strength k) genuinely used.
  SequentialCircuit m = lfsr_machine(4, 0b1001, 0b0001, 0b0000);
  InductionOptions opts;
  opts.max_k = 20;
  InductionResult r = prove_by_induction(m, opts);
  if (r.verdict != InductionVerdict::kProved) GTEST_SKIP();
  for (int frame : r.used_frames) {
    EXPECT_GE(frame, 0);
    EXPECT_LT(frame, r.k);
  }
  // Ascending, no duplicates.
  for (std::size_t i = 1; i < r.used_frames.size(); ++i) {
    EXPECT_LT(r.used_frames[i - 1], r.used_frames[i]);
  }
  if (r.k > 0) {
    EXPECT_TRUE(r.used_frames_minimal);
  }
}

TEST(InductionTest, CoreExtractionCanBeDisabled) {
  SequentialCircuit m = counter_machine(4, 999);
  InductionOptions opts;
  opts.extract_step_core = false;
  InductionResult r = prove_by_induction(m, opts);
  EXPECT_EQ(r.verdict, InductionVerdict::kProved);
  EXPECT_TRUE(r.used_frames.empty());
  EXPECT_FALSE(r.used_frames_minimal);
}

TEST(InductionTest, ImmediatelyInductiveProperty) {
  // bad value outside the register width is structurally impossible:
  // bad is constant 0 and the step case closes at k = 0.
  SequentialCircuit m = counter_machine(4, 999);
  InductionResult r = prove_by_induction(m);
  EXPECT_EQ(r.verdict, InductionVerdict::kProved);
  EXPECT_EQ(r.k, 0);
}

TEST(InductionTest, RealCounterexampleComesFromBaseCase) {
  SequentialCircuit m = counter_machine(4, 6);
  InductionResult r = prove_by_induction(m);
  ASSERT_EQ(r.verdict, InductionVerdict::kCounterexample);
  EXPECT_EQ(r.k, 6);
  EXPECT_TRUE(replay_reaches_bad(m, r.trace));
}

TEST(InductionTest, UnreachableStateNeedsInductionStrength) {
  // 3-bit counter with enable: state 5 is reachable, so this is a
  // counterexample case; state ... all values < 8 are reachable.  Use
  // instead a shift register whose bad needs all-ones: reachable too.
  // A genuinely unreachable-bad machine: counter that increments by 2
  // cannot reach odd values... build from the LFSR: a state off the
  // LFSR orbit starting anywhere is NOT provable by plain induction
  // without uniqueness; with the simple-path constraint it closes.
  SequentialCircuit m = lfsr_machine(4, 0b1001, 0b0001, 0b0000);
  // Fibonacci LFSR with nonzero seed never reaches the all-zero state
  // unless feedback collapses; check ground truth by simulation over
  // the full orbit (≤ 2^4 steps).
  std::vector<bool> state = m.initial_state;
  bool reachable = false;
  for (int t = 0; t < 20; ++t) {
    auto [next, bad] = step(m, state, {});
    if (bad) reachable = true;
    state = next;
  }
  InductionOptions opts;
  opts.max_k = 20;
  InductionResult r = prove_by_induction(m, opts);
  if (reachable) {
    EXPECT_EQ(r.verdict, InductionVerdict::kCounterexample);
  } else {
    EXPECT_EQ(r.verdict, InductionVerdict::kProved)
        << "simple-path induction is complete for finite systems";
  }
}

TEST(InductionTest, UniquenessMattersForCompleteness) {
  // The same machine without the simple-path constraint may fail to
  // close at any k ≤ max_k; with it, the proof must close.
  SequentialCircuit m = lfsr_machine(4, 0b1001, 0b0001, 0b0000);
  InductionOptions with;
  with.max_k = 24;
  with.unique_states = true;
  InductionResult a = prove_by_induction(m, with);
  EXPECT_EQ(a.verdict, InductionVerdict::kProved);

  InductionOptions without;
  without.max_k = 24;
  without.unique_states = false;
  InductionResult b = prove_by_induction(m, without);
  // Without uniqueness the verdict may be kUnknown but must never be
  // a (bogus) counterexample.
  EXPECT_NE(b.verdict, InductionVerdict::kCounterexample);
}

TEST(InductionTest, HandshakeViolationFound) {
  SequentialCircuit m = handshake_machine();
  InductionResult r = prove_by_induction(m);
  ASSERT_EQ(r.verdict, InductionVerdict::kCounterexample);
  EXPECT_EQ(r.k, 3);
}

TEST(InductionTest, BudgetGivesUnknown) {
  SequentialCircuit m = counter_machine(12, (1u << 12) - 1);
  InductionOptions opts;
  opts.max_k = 5;  // way below the counterexample depth
  InductionResult r = prove_by_induction(m, opts);
  EXPECT_EQ(r.verdict, InductionVerdict::kUnknown);
}

}  // namespace
}  // namespace sateda::bmc
