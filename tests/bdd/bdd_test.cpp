#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

#include "bdd/circuit_bdd.hpp"
#include "circuit/encoder.hpp"
#include "circuit/generators.hpp"
#include "cnf/generators.hpp"
#include "test_util.hpp"
#include "circuit/simulator.hpp"

namespace sateda::bdd {
namespace {

TEST(BddTest, TerminalsAndVariables) {
  BddManager mgr(3);
  EXPECT_EQ(mgr.bdd_not(kTrue), kFalse);
  EXPECT_EQ(mgr.bdd_not(kFalse), kTrue);
  BddRef x = mgr.var(0);
  EXPECT_EQ(mgr.bdd_and(x, kTrue), x);
  EXPECT_EQ(mgr.bdd_and(x, kFalse), kFalse);
  EXPECT_EQ(mgr.bdd_or(x, kFalse), x);
  EXPECT_EQ(mgr.bdd_not(mgr.bdd_not(x)), x);
}

TEST(BddTest, CanonicalityMergesEquivalentFunctions) {
  BddManager mgr(3);
  BddRef x = mgr.var(0), y = mgr.var(1);
  // De Morgan: ¬(x ∧ y) == ¬x ∨ ¬y must be the same node.
  EXPECT_EQ(mgr.bdd_not(mgr.bdd_and(x, y)),
            mgr.bdd_or(mgr.bdd_not(x), mgr.bdd_not(y)));
  // x ⊕ y == (x ∨ y) ∧ ¬(x ∧ y).
  EXPECT_EQ(mgr.bdd_xor(x, y),
            mgr.bdd_and(mgr.bdd_or(x, y), mgr.bdd_not(mgr.bdd_and(x, y))));
}

TEST(BddTest, EvalMatchesSemantics) {
  BddManager mgr(3);
  BddRef f = mgr.bdd_or(mgr.bdd_and(mgr.var(0), mgr.var(1)),
                        mgr.bdd_not(mgr.var(2)));
  for (int bits = 0; bits < 8; ++bits) {
    std::vector<bool> in = {(bits & 1) != 0, (bits & 2) != 0,
                            (bits & 4) != 0};
    bool expected = (in[0] && in[1]) || !in[2];
    EXPECT_EQ(mgr.eval(f, in), expected);
  }
}

TEST(BddTest, ModelCounting) {
  BddManager mgr(4);
  // x0 ∧ x1 has 4 models over 4 variables.
  EXPECT_DOUBLE_EQ(mgr.count_models(mgr.bdd_and(mgr.var(0), mgr.var(1))), 4.0);
  // XOR of two vars: 8 models over 4 vars.
  EXPECT_DOUBLE_EQ(mgr.count_models(mgr.bdd_xor(mgr.var(2), mgr.var(3))), 8.0);
  EXPECT_DOUBLE_EQ(mgr.count_models(kTrue), 16.0);
  EXPECT_DOUBLE_EQ(mgr.count_models(kFalse), 0.0);
}

TEST(BddTest, AnyModelSatisfies) {
  BddManager mgr(4);
  BddRef f = mgr.bdd_and(mgr.bdd_xor(mgr.var(0), mgr.var(1)),
                         mgr.bdd_or(mgr.var(2), mgr.var(3)));
  std::vector<lbool> m = mgr.any_model(f);
  ASSERT_FALSE(m.empty());
  std::vector<bool> in(4);
  for (int i = 0; i < 4; ++i) in[i] = m[i].is_true();
  EXPECT_TRUE(mgr.eval(f, in));
  EXPECT_TRUE(mgr.any_model(kFalse).empty());
}

TEST(BddTest, NodeLimitThrows) {
  BddManager mgr(24, /*node_limit=*/64);
  // A parity function of 24 variables is linear, but a multiplier-ish
  // conjunction tree of products exceeds 64 nodes quickly.
  BddRef acc = kFalse;
  EXPECT_THROW(
      {
        for (int i = 0; i + 1 < 24; i += 2) {
          acc = mgr.bdd_or(acc, mgr.bdd_and(mgr.var(i), mgr.var(i + 1)));
        }
        // Force growth beyond the cap with a second phase.
        for (int i = 0; i + 2 < 24; ++i) {
          acc = mgr.bdd_xor(acc, mgr.bdd_and(mgr.var(i), mgr.var(i + 2)));
        }
      },
      BddLimitExceeded);
}

TEST(CircuitBddTest, SymbolicSimulationMatchesSimulator) {
  for (std::uint64_t seed : {1u, 5u, 9u}) {
    circuit::Circuit c = circuit::random_circuit(7, 30, seed);
    BddManager mgr(7);
    std::vector<BddRef> outs = build_output_bdds(mgr, c);
    for (std::uint64_t bits = 0; bits < 128; ++bits) {
      std::vector<bool> in(7);
      for (int i = 0; i < 7; ++i) in[i] = (bits >> i) & 1;
      std::vector<bool> sim = circuit::simulate_outputs(c, in);
      for (std::size_t o = 0; o < outs.size(); ++o) {
        EXPECT_EQ(mgr.eval(outs[o], in), sim[o]) << "seed " << seed;
      }
    }
  }
}

TEST(CircuitBddTest, AdderModelCountSanity) {
  // cout of an n-bit adder: count via BDD equals the number of
  // (a, b, cin) triples with a+b+cin ≥ 2^n.
  const int n = 4;
  circuit::Circuit c = circuit::ripple_carry_adder(n);
  BddManager mgr(2 * n + 1);
  std::vector<BddRef> outs =
      build_output_bdds(mgr, c, interleaved_levels(2 * n + 1));
  std::uint64_t expected = 0;
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      for (std::uint64_t cin = 0; cin < 2; ++cin) {
        if (a + b + cin >= 16) ++expected;
      }
    }
  }
  EXPECT_DOUBLE_EQ(mgr.count_models(outs.back()),
                   static_cast<double>(expected));
}

TEST(CircuitBddTest, VariableOrderChangesSize) {
  // The adder carry chain: interleaved order keeps the BDD small;
  // the natural (a-block then b-block) order blows up exponentially.
  const int n = 10;
  circuit::Circuit c = circuit::ripple_carry_adder(n);
  BddManager natural(2 * n + 1);
  std::vector<BddRef> nat = build_output_bdds(natural, c);
  BddManager inter(2 * n + 1);
  std::vector<BddRef> il =
      build_output_bdds(inter, c, interleaved_levels(2 * n + 1));
  EXPECT_GT(natural.size(nat.back()), 4 * inter.size(il.back()))
      << "natural order must be dramatically worse on the carry chain";
}

TEST(CnfBddTest, ModelCountMatchesBruteForce) {
  for (std::uint64_t seed = 9000; seed < 9008; ++seed) {
    CnfFormula f = random_3sat(10, 3.5, seed);
    BddManager mgr(f.num_vars());
    BddRef b = cnf_to_bdd(mgr, f);
    EXPECT_DOUBLE_EQ(mgr.count_models(b),
                     static_cast<double>(
                         sateda::testing::brute_force_count_models(f)))
        << "seed " << seed;
  }
}

TEST(CnfBddTest, UnsatFormulaIsFalseTerminal) {
  CnfFormula f = pigeonhole(3);
  BddManager mgr(f.num_vars());
  EXPECT_EQ(cnf_to_bdd(mgr, f), kFalse);
}

TEST(CnfBddTest, CircuitCnfCountsInputSpace) {
  // The CNF of a circuit has exactly one model per input pattern.
  circuit::Circuit c = circuit::c17();
  CnfFormula f = circuit::encode_circuit(c);
  BddManager mgr(f.num_vars());
  BddRef b = cnf_to_bdd(mgr, f);
  EXPECT_DOUBLE_EQ(mgr.count_models(b), 32.0);
}

}  // namespace
}  // namespace sateda::bdd
