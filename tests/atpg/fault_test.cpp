#include "atpg/fault.hpp"

#include <gtest/gtest.h>

#include "atpg/fault_sim.hpp"
#include "circuit/generators.hpp"
#include "circuit/simulator.hpp"

namespace sateda::atpg {
namespace {

using circuit::Circuit;
using circuit::NodeId;

TEST(FaultTest, EnumerationCoversOutputsAndPins) {
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g = c.add_and(a, b);
  c.mark_output(g, "o");
  std::vector<Fault> fs = enumerate_faults(c);
  // 3 nodes * 2 output faults + 2 pins * 2 = 10.
  EXPECT_EQ(fs.size(), 10u);
}

TEST(FaultTest, CollapsingRemovesEquivalentFaults) {
  Circuit c = circuit::c17();
  std::vector<Fault> all = enumerate_faults(c);
  std::vector<Fault> collapsed = collapse_faults(c, all);
  EXPECT_LT(collapsed.size(), all.size());
  EXPECT_GT(collapsed.size(), 0u);
}

TEST(FaultTest, CollapsedFaultSetStillDistinguishesEveryCollapsedOutFault) {
  // Every dropped fault must be detected by any pattern detecting its
  // representative — spot check: on an AND gate, in0/sa0 and out/sa0
  // are detected by exactly the same patterns.
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g = c.add_and(a, b);
  c.mark_output(g, "o");
  FaultSimulator sim(c);
  Fault in_fault{g, 0, false};
  Fault out_fault{g, Fault::kOutputPin, false};
  for (std::uint64_t bits = 0; bits < 4; ++bits) {
    std::vector<bool> pattern = {static_cast<bool>(bits & 1),
                                 static_cast<bool>(bits >> 1)};
    EXPECT_EQ(sim.detects(pattern, in_fault), sim.detects(pattern, out_fault));
  }
}

TEST(FaultSimTest, AndGateStuckAtFaults) {
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g = c.add_and(a, b);
  c.mark_output(g, "o");
  FaultSimulator sim(c);
  // out/sa0 is detected only by pattern (1,1).
  Fault sa0{g, Fault::kOutputPin, false};
  EXPECT_TRUE(sim.detects({true, true}, sa0));
  EXPECT_FALSE(sim.detects({true, false}, sa0));
  EXPECT_FALSE(sim.detects({false, true}, sa0));
  EXPECT_FALSE(sim.detects({false, false}, sa0));
  // out/sa1 is detected by every pattern except (1,1).
  Fault sa1{g, Fault::kOutputPin, true};
  EXPECT_FALSE(sim.detects({true, true}, sa1));
  EXPECT_TRUE(sim.detects({false, false}, sa1));
  // in0/sa1: detected when a=0, b=1 (faulty AND sees a=1).
  Fault pin{g, 0, true};
  EXPECT_TRUE(sim.detects({false, true}, pin));
  EXPECT_FALSE(sim.detects({false, false}, pin));
  EXPECT_FALSE(sim.detects({true, true}, pin));
}

TEST(FaultSimTest, DetectMaskMatchesScalarSimulation) {
  Circuit c = circuit::c17();
  FaultSimulator sim(c);
  // All 32 input patterns in one packed batch.
  std::vector<std::uint64_t> packed(5);
  for (int i = 0; i < 5; ++i) {
    std::uint64_t w = 0;
    for (int p = 0; p < 32; ++p) {
      if ((p >> i) & 1) w |= std::uint64_t{1} << p;
    }
    packed[i] = w;
  }
  auto good = sim.good_values(packed);
  for (const Fault& f : enumerate_faults(c)) {
    std::uint64_t mask = sim.detect_mask(good, f);
    for (int p = 0; p < 32; ++p) {
      std::vector<bool> pattern(5);
      for (int i = 0; i < 5; ++i) pattern[i] = (p >> i) & 1;
      EXPECT_EQ(static_cast<bool>((mask >> p) & 1), sim.detects(pattern, f))
          << to_string(f) << " pattern " << p;
    }
  }
}

TEST(FaultSimTest, FaultOnInputNodeStem) {
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId g = c.add_not(a);
  c.mark_output(g, "o");
  FaultSimulator sim(c);
  Fault f{a, Fault::kOutputPin, true};  // input stuck at 1
  EXPECT_TRUE(sim.detects({false}, f));
  EXPECT_FALSE(sim.detects({true}, f));
}

}  // namespace
}  // namespace sateda::atpg
