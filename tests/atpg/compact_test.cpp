/// \file compact_test.cpp
/// \brief Test-set compaction (atpg/compact): the kept subset detects
///        everything the full set detects, sizes are proven minimum,
///        and the MaxSAT and branch-and-bound covering engines agree.
#include "atpg/compact.hpp"

#include <gtest/gtest.h>

#include "atpg/engine.hpp"
#include "atpg/fault_sim.hpp"
#include "circuit/generators.hpp"

namespace sateda::atpg {
namespace {

using circuit::Circuit;

/// Counts the faults of \p faults detected by at least one of the
/// \p tests (single-pattern simulation oracle).
int faults_covered(const Circuit& c, const std::vector<std::vector<bool>>& tests,
                   const std::vector<Fault>& faults) {
  FaultSimulator sim(c);
  int covered = 0;
  for (const Fault& f : faults) {
    for (const auto& t : tests) {
      if (sim.detects(t, f)) {
        ++covered;
        break;
      }
    }
  }
  return covered;
}

TEST(CompactTest, EmptyTestSetIsTriviallyOptimal) {
  Circuit c = circuit::c17();
  CompactionResult r = minimize_test_set(c, {}, enumerate_faults(c));
  EXPECT_TRUE(r.optimal);
  EXPECT_TRUE(r.kept.empty());
  EXPECT_EQ(r.covered_faults, 0);
}

TEST(CompactTest, KeptSubsetPreservesCoverage) {
  Circuit c = circuit::c17();
  AtpgResult atpg = run_atpg(c);
  ASSERT_FALSE(atpg.tests.empty());
  const std::vector<Fault> faults = atpg.faults;

  CompactionResult r = minimize_test_set(c, atpg.tests, faults);
  EXPECT_TRUE(r.optimal);
  EXPECT_FALSE(r.kept.empty());
  EXPECT_LE(r.kept.size(), atpg.tests.size());

  std::vector<std::vector<bool>> kept_tests;
  for (std::size_t i : r.kept) kept_tests.push_back(atpg.tests[i]);
  EXPECT_EQ(faults_covered(c, kept_tests, faults),
            faults_covered(c, atpg.tests, faults));
  EXPECT_EQ(r.covered_faults, faults_covered(c, atpg.tests, faults));
}

TEST(CompactTest, MaxsatAndBranchAndBoundAgreeOnMinimumSize) {
  Circuit c = circuit::c17();
  AtpgResult atpg = run_atpg(c);
  ASSERT_FALSE(atpg.tests.empty());

  CompactionOptions maxsat;
  maxsat.use_maxsat = true;
  CompactionOptions bnb;
  bnb.use_maxsat = false;
  CompactionResult a = minimize_test_set(c, atpg.tests, atpg.faults, maxsat);
  CompactionResult b = minimize_test_set(c, atpg.tests, atpg.faults, bnb);
  ASSERT_TRUE(a.optimal);
  ASSERT_TRUE(b.optimal);
  EXPECT_EQ(a.kept.size(), b.kept.size());
  EXPECT_GT(a.stats.maxsat_rounds + a.stats.sat_calls, 0);
}

TEST(CompactTest, RedundantPatternsAreDropped) {
  // y = a AND b: sa0/sa1 faults need only the all-ones pattern plus
  // one zero per input; duplicated patterns must not be kept twice.
  Circuit c;
  auto a = c.add_input("a");
  auto b = c.add_input("b");
  auto y = c.add_and(a, b);
  c.mark_output(y, "o");
  std::vector<std::vector<bool>> tests = {
      {true, true}, {true, true}, {false, true},
      {true, false}, {false, true},
  };
  CompactionResult r = minimize_test_set(c, tests, enumerate_faults(c));
  EXPECT_TRUE(r.optimal);
  EXPECT_LT(r.kept.size(), tests.size());
  // {11, 01, 10} is the canonical minimum for a 2-input AND.
  EXPECT_EQ(r.kept.size(), 3u);
}

}  // namespace
}  // namespace sateda::atpg
