#include "atpg/engine.hpp"

#include <gtest/gtest.h>

#include "atpg/incremental.hpp"
#include "circuit/generators.hpp"

namespace sateda::atpg {
namespace {

using circuit::Circuit;
using circuit::NodeId;

TEST(DetectionCircuitTest, SharesInputsAndExposesDetect) {
  Circuit c = circuit::c17();
  Fault f{c.find("16"), Fault::kOutputPin, false};
  DetectionCircuit det = build_detection_circuit(c, f);
  EXPECT_TRUE(det.structurally_detectable);
  EXPECT_EQ(det.circuit.inputs().size(), c.inputs().size());
  EXPECT_NE(det.detect, circuit::kNullNode);
}

TEST(DetectionCircuitTest, UnobservableFaultIsFlagged) {
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId dead = c.add_not(a);  // feeds nothing
  NodeId g = c.add_buf(a);
  c.mark_output(g, "o");
  Fault f{dead, Fault::kOutputPin, true};
  DetectionCircuit det = build_detection_circuit(c, f);
  EXPECT_FALSE(det.structurally_detectable);
}

TEST(GenerateTestTest, PatternReallyDetectsTheFault) {
  Circuit c = circuit::c17();
  FaultSimulator sim(c);
  for (const Fault& f : collapse_faults(c, enumerate_faults(c))) {
    std::vector<lbool> partial;
    FaultStatus st = generate_test(c, f, partial);
    ASSERT_EQ(st, FaultStatus::kDetected)
        << to_string(f) << ": c17 has no redundant faults";
    // Any completion of the partial pattern must detect the fault.
    std::vector<bool> zeros(c.inputs().size()), ones(c.inputs().size());
    for (std::size_t i = 0; i < partial.size(); ++i) {
      zeros[i] = partial[i].is_true();
      ones[i] = partial[i].is_undef() ? true : partial[i].is_true();
    }
    EXPECT_TRUE(sim.detects(zeros, f)) << to_string(f);
    EXPECT_TRUE(sim.detects(ones, f)) << to_string(f);
  }
}

TEST(GenerateTestTest, RedundantFaultIsProven) {
  // y = OR(a, AND(a, b)) — the AND gate is functionally redundant
  // (absorption); its output sa0 cannot be observed.
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g = c.add_and(a, b);
  NodeId y = c.add_or(a, g);
  c.mark_output(y, "o");
  std::vector<lbool> partial;
  EXPECT_EQ(generate_test(c, Fault{g, Fault::kOutputPin, false}, partial),
            FaultStatus::kRedundant);
  // ...while sa1 on the same line is testable (a=0, b arbitrary... a=0,b=1
  // gives good 0 / faulty 1).
  EXPECT_EQ(generate_test(c, Fault{g, Fault::kOutputPin, true}, partial),
            FaultStatus::kDetected);
}

TEST(AtpgFlowTest, FullCoverageOnC17) {
  AtpgResult r = run_atpg(circuit::c17());
  EXPECT_EQ(r.stats.aborted, 0);
  EXPECT_EQ(r.stats.redundant, 0);
  EXPECT_DOUBLE_EQ(r.stats.fault_coverage(), 1.0);
  EXPECT_FALSE(r.tests.empty());
  EXPECT_FALSE(r.stats.summary().empty());
}

TEST(AtpgFlowTest, EveryFaultHasAStatus) {
  AtpgResult r = run_atpg(circuit::ripple_carry_adder(3));
  ASSERT_EQ(r.faults.size(), r.status.size());
  for (FaultStatus st : r.status) {
    EXPECT_NE(st, FaultStatus::kUntested);
  }
  EXPECT_EQ(r.stats.detected + r.stats.redundant + r.stats.aborted,
            r.stats.total_faults);
}

TEST(AtpgFlowTest, TestsAreVerifiedByFaultSimulation) {
  Circuit c = circuit::alu(3);
  AtpgResult r = run_atpg(c);
  FaultSimulator sim(c);
  // Every detected fault must be caught by at least one recorded test.
  for (std::size_t i = 0; i < r.faults.size(); ++i) {
    if (r.status[i] != FaultStatus::kDetected) continue;
    bool caught = false;
    for (const auto& t : r.tests) {
      if (sim.detects(t, r.faults[i])) {
        caught = true;
        break;
      }
    }
    EXPECT_TRUE(caught) << to_string(r.faults[i]);
  }
}

TEST(AtpgFlowTest, RandomPhaseOffStillWorks) {
  AtpgOptions opts;
  opts.random_phase = false;
  AtpgResult r = run_atpg(circuit::c17(), opts);
  EXPECT_DOUBLE_EQ(r.stats.fault_coverage(), 1.0);
  EXPECT_EQ(r.stats.random_detected, 0);
}

TEST(AtpgFlowTest, PlainCnfLayerOffMatchesCoverage) {
  Circuit c = circuit::parity_tree(6);
  AtpgOptions with;
  AtpgOptions without;
  without.use_structural_layer = false;
  AtpgResult a = run_atpg(c, with);
  AtpgResult b = run_atpg(c, without);
  EXPECT_DOUBLE_EQ(a.stats.fault_coverage(), b.stats.fault_coverage());
  EXPECT_EQ(a.stats.redundant, b.stats.redundant);
}

TEST(AtpgPipelineTest, PatternsStillDetectWithRewriteAndHints) {
  // The structure-aware path (rewrite → PG → hints) must produce
  // patterns the fault simulator confirms, fault for fault.
  Circuit c = circuit::c17();
  FaultSimulator sim(c);
  AtpgOptions opts;
  opts.rewrite = true;
  opts.plaisted_greenbaum = true;
  opts.struct_hints = true;
  for (const Fault& f : collapse_faults(c, enumerate_faults(c))) {
    std::vector<lbool> partial;
    FaultStatus st = generate_test(c, f, partial, opts);
    ASSERT_EQ(st, FaultStatus::kDetected) << to_string(f);
    std::vector<bool> pattern(c.inputs().size());
    for (std::size_t i = 0; i < partial.size(); ++i)
      pattern[i] = partial[i].is_true();
    EXPECT_TRUE(sim.detects(pattern, f)) << to_string(f);
  }
}

TEST(AtpgPipelineTest, RedundancyAgreesWithPlainPath) {
  // Absorption-redundant AND from RedundantFaultIsProven: the pipeline
  // must prove the same redundancy (here the rewrite itself already
  // folds the fault cone to a constant).
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g = c.add_and(a, b);
  NodeId y = c.add_or(a, g);
  c.mark_output(y, "o");
  AtpgOptions opts;
  opts.rewrite = true;
  opts.plaisted_greenbaum = true;
  opts.struct_hints = true;
  std::vector<lbool> partial;
  EXPECT_EQ(generate_test(c, Fault{g, Fault::kOutputPin, false}, partial, opts),
            FaultStatus::kRedundant);
  EXPECT_EQ(generate_test(c, Fault{g, Fault::kOutputPin, true}, partial, opts),
            FaultStatus::kDetected);
}

TEST(AtpgPipelineTest, FullFlowCoverageMatchesPlainPath) {
  Circuit c = circuit::alu(3);
  AtpgOptions plain;
  plain.random_phase = false;
  AtpgOptions piped = plain;
  piped.rewrite = true;
  piped.plaisted_greenbaum = true;
  piped.struct_hints = true;
  AtpgResult a = run_atpg(c, plain);
  AtpgResult b = run_atpg(c, piped);
  EXPECT_DOUBLE_EQ(a.stats.fault_coverage(), b.stats.fault_coverage());
  EXPECT_EQ(a.stats.redundant, b.stats.redundant);
}

TEST(RandomAtpgTest, CoverageIsMonotoneInPatternCount) {
  Circuit c = circuit::alu(3);
  AtpgResult few = run_random_atpg(c, 8, 3);
  AtpgResult many = run_random_atpg(c, 512, 3);
  EXPECT_LE(few.stats.fault_coverage(), many.stats.fault_coverage());
  EXPECT_GT(many.stats.fault_coverage(), 0.5);
}

TEST(IncrementalAtpgTest, AgreesWithFromScratch) {
  Circuit c = circuit::c17();
  IncrementalAtpg inc(c);
  FaultSimulator sim(c);
  std::mt19937_64 rng(5);
  for (const Fault& f : collapse_faults(c, enumerate_faults(c))) {
    std::vector<lbool> partial;
    FaultStatus st = inc.test_fault(f, partial);
    ASSERT_EQ(st, FaultStatus::kDetected) << to_string(f);
    std::vector<bool> pattern(c.inputs().size());
    std::bernoulli_distribution coin(0.5);
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      pattern[i] = partial[i].is_undef() ? coin(rng) : partial[i].is_true();
    }
    EXPECT_TRUE(sim.detects(pattern, f)) << to_string(f);
  }
}

TEST(IncrementalAtpgTest, DetectsRedundancy) {
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g = c.add_and(a, b);
  NodeId y = c.add_or(a, g);
  c.mark_output(y, "o");
  IncrementalAtpg inc(c);
  std::vector<lbool> partial;
  EXPECT_EQ(inc.test_fault(Fault{g, Fault::kOutputPin, false}, partial),
            FaultStatus::kRedundant);
  // Solver stays usable afterwards.
  EXPECT_EQ(inc.test_fault(Fault{g, Fault::kOutputPin, true}, partial),
            FaultStatus::kDetected);
}

}  // namespace
}  // namespace sateda::atpg
