/// \file untestable_test.cpp
/// \brief Untestable-fault explanation (atpg/untestable): gate cores
///        are extracted for redundant faults, testable faults yield no
///        entry, and faults blocked by the same logic share a group.
#include "atpg/untestable.hpp"

#include <gtest/gtest.h>

#include "atpg/engine.hpp"
#include "circuit/generators.hpp"

namespace sateda::atpg {
namespace {

using circuit::Circuit;
using circuit::NodeId;

TEST(UntestableTest, TestableFaultsProduceNoCores) {
  // c17 has full fault coverage: nothing to explain.
  Circuit c = circuit::c17();
  UntestableGroups g = group_untestable_faults(c, enumerate_faults(c));
  EXPECT_TRUE(g.cores.empty());
  EXPECT_TRUE(g.groups.empty());
}

TEST(UntestableTest, RedundantAbsorptionFaultGetsAGateCore) {
  // y = OR(a, AND(a, b)): AND-output sa0 is redundant (absorption).
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g = c.add_and(a, b);
  NodeId y = c.add_or(a, g);
  c.mark_output(y, "o");
  const Fault redundant{g, Fault::kOutputPin, false};

  UntestableGroups groups = group_untestable_faults(c, {redundant});
  ASSERT_EQ(groups.cores.size(), 1u);
  const UntestableCore& core = groups.cores[0];
  EXPECT_TRUE(core.minimal);
  // The blocking logic involves real gates of the good circuit.
  ASSERT_FALSE(core.gates.empty());
  for (NodeId n : core.gates) {
    ASSERT_GE(n, 0);
    ASSERT_LT(n, static_cast<NodeId>(c.num_nodes()));
    EXPECT_FALSE(c.is_input(n));
  }
  ASSERT_EQ(groups.groups.size(), 1u);
  EXPECT_EQ(groups.groups[0], (std::vector<std::size_t>{0}));
}

TEST(UntestableTest, StructurallyUntestableFaultHasEmptyCore) {
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId dead = c.add_not(a);  // feeds no output
  NodeId g = c.add_buf(a);
  c.mark_output(g, "o");
  const Fault f{dead, Fault::kOutputPin, true};
  UntestableGroups groups = group_untestable_faults(c, {f});
  ASSERT_EQ(groups.cores.size(), 1u);
  EXPECT_TRUE(groups.cores[0].gates.empty());
  EXPECT_TRUE(groups.cores[0].minimal);
  ASSERT_EQ(groups.groups.size(), 1u);
}

TEST(UntestableTest, FaultsBlockedBySharedLogicAreGrouped) {
  // Two copies of the absorption pattern share input a: the redundant
  // sa0 faults on each AND gate have disjoint blocking logic, so they
  // land in separate groups; both sa0/sa1 faults of one AND share its
  // logic and group together.
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId d = c.add_input("d");
  NodeId g1 = c.add_and(a, b);
  NodeId y1 = c.add_or(a, g1);
  NodeId g2 = c.add_and(a, d);
  NodeId y2 = c.add_or(a, g2);
  c.mark_output(y1, "o1");
  c.mark_output(y2, "o2");

  // Both AND-output sa0 faults are redundant; classify to make sure.
  AtpgResult atpg = run_atpg(c, [] {
    AtpgOptions o;
    o.collapse = false;
    return o;
  }());
  std::vector<Fault> redundant;
  for (std::size_t i = 0; i < atpg.faults.size(); ++i) {
    if (atpg.status[i] == FaultStatus::kRedundant) {
      redundant.push_back(atpg.faults[i]);
    }
  }
  ASSERT_GE(redundant.size(), 2u);

  UntestableGroups groups = group_untestable_faults(c, redundant);
  EXPECT_EQ(groups.cores.size(), redundant.size());
  // Every redundant fault got an explanation over good-circuit gates.
  for (const UntestableCore& core : groups.cores) {
    EXPECT_FALSE(core.gates.empty()) << to_string(core.fault);
  }
  // Grouping is a partition of the cores.
  std::size_t total = 0;
  for (const auto& grp : groups.groups) total += grp.size();
  EXPECT_EQ(total, groups.cores.size());
  EXPECT_GE(groups.groups.size(), 1u);
}

}  // namespace
}  // namespace sateda::atpg
