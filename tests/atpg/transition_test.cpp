#include "atpg/transition.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "circuit/simulator.hpp"

namespace sateda::atpg {
namespace {

using circuit::Circuit;
using circuit::NodeId;

/// A valid transition test for slow-to-rise at n must (a) set n to 0
/// under v1, (b) set n to 1 under v2, and (c) propagate the stuck-at-0
/// difference under v2.
void verify_test(const Circuit& c, const TransitionFault& f,
                 const TransitionTest& t) {
  auto v1_vals = circuit::simulate(c, t.init);
  auto v2_vals = circuit::simulate(c, t.launch);
  const bool init_value = f.slow_to_rise ? false : true;
  EXPECT_EQ(v1_vals[f.node], init_value) << to_string(f) << " init";
  EXPECT_EQ(v2_vals[f.node], !init_value) << to_string(f) << " launch";
  FaultSimulator sim(c);
  EXPECT_TRUE(
      sim.detects(t.launch, Fault{f.node, Fault::kOutputPin, init_value}))
      << to_string(f) << " propagation";
}

TEST(TransitionTest, EnumerationSkipsConstants) {
  Circuit c;
  c.add_input("a");
  c.add_const(false);
  NodeId g = c.add_not(0);
  c.mark_output(g, "o");
  EXPECT_EQ(enumerate_transition_faults(c).size(), 4u);  // a and g, 2 each
}

TEST(TransitionTest, GeneratedTestsAreValidOnC17) {
  Circuit c = circuit::c17();
  TransitionAtpgResult r = run_transition_atpg(c);
  EXPECT_EQ(r.untestable, 0) << "all c17 transitions are testable";
  for (std::size_t i = 0; i < r.faults.size(); ++i) {
    ASSERT_TRUE(r.tests[i].has_value()) << to_string(r.faults[i]);
    // Guarded above; the dataflow model sees neither ASSERT_TRUE nor
    // container elements.
    // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
    verify_test(c, r.faults[i], *r.tests[i]);
  }
}

TEST(TransitionTest, GeneratedTestsAreValidOnAdder) {
  Circuit c = circuit::ripple_carry_adder(4);
  TransitionAtpgResult r = run_transition_atpg(c);
  EXPECT_GT(r.testable, 0);
  for (std::size_t i = 0; i < r.faults.size(); ++i) {
    if (!r.tests[i].has_value()) continue;
    // Guarded above; the dataflow model sees neither ASSERT_TRUE nor
    // container elements.
    // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
    verify_test(c, r.faults[i], *r.tests[i]);
  }
}

TEST(TransitionTest, UntestableWhenNodeCannotToggle) {
  // g = AND(a, ¬a) is constant 0: slow-to-rise needs g=1 — impossible.
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId na = c.add_not(a);
  NodeId g = c.add_and(a, na);
  c.mark_output(g, "o");
  EXPECT_FALSE(generate_transition_test(c, {g, true}).has_value());
  // Slow-to-fall needs the 1→0 transition: launching requires g
  // stuck-at-1 to be detectable... g is constant 0, so the "faulty 1"
  // IS observable; but v1 must set g = 1, which is impossible.
  EXPECT_FALSE(generate_transition_test(c, {g, false}).has_value());
}

TEST(TransitionTest, RedundantStuckAtMakesTransitionUntestable) {
  // Absorption: y = a + a·b; the AND output cannot propagate.
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g = c.add_and(a, b);
  NodeId y = c.add_or(a, g);
  c.mark_output(y, "o");
  // Slow-to-rise at g: launch vector needs g/sa0 detectable — it is
  // redundant, so the transition fault is untestable.
  EXPECT_FALSE(generate_transition_test(c, {g, true}).has_value());
}

class TransitionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TransitionPropertyTest, AllGeneratedTestsVerify) {
  Circuit c = circuit::random_circuit(8, 40, GetParam());
  TransitionAtpgResult r = run_transition_atpg(c);
  for (std::size_t i = 0; i < r.faults.size(); ++i) {
    if (!r.tests[i].has_value()) continue;
    // Guarded above; the dataflow model sees neither ASSERT_TRUE nor
    // container elements.
    // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
    verify_test(c, r.faults[i], *r.tests[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransitionPropertyTest,
                         ::testing::Range<std::uint64_t>(1200, 1208));

}  // namespace
}  // namespace sateda::atpg
