/// StructureHints unit suite: frontier priority ordering, Table 2
/// phase-hint derivation, apply() bump/polarity traffic, and
/// forwarding through the portfolio engine.
#include "csat/hints.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "circuit/encoder.hpp"
#include "circuit/netlist.hpp"
#include "sat/solver.hpp"

namespace sateda::csat {
namespace {

using circuit::Circuit;
using circuit::GateType;
using circuit::NodeId;

/// SatEngine stub that records the hint traffic apply() generates.
class RecordingEngine : public sat::SatEngine {
 public:
  explicit RecordingEngine(int nvars) : nvars_(nvars) {}
  std::string name() const override { return "recording"; }
  Var new_var() override { return nvars_++; }
  void ensure_var(Var v) override { nvars_ = std::max(nvars_, v + 1); }
  int num_vars() const override { return nvars_; }
  bool add_clause(std::vector<Lit>) override { return true; }
  bool okay() const override { return true; }
  std::size_t num_problem_clauses() const override { return 0; }
  sat::SolveResult solve(const std::vector<Lit>&) override {
    return sat::SolveResult::kUnknown;
  }
  const std::vector<lbool>& model() const override { return model_; }
  const std::vector<Lit>& conflict_core() const override { return core_; }
  void interrupt() override {}
  sat::UnknownReason unknown_reason() const override {
    return sat::UnknownReason::kNone;
  }
  sat::SolverStats stats() const override { return {}; }
  void bump_variable(Var v) override { ++bumps[v]; }
  void set_polarity(Var v, bool value) override { polarity[v] = value; }

  std::map<Var, int> bumps;
  std::map<Var, bool> polarity;

 private:
  int nvars_ = 0;
  std::vector<lbool> model_;
  std::vector<Lit> core_;
};

/// g = AND(OR(a,b), NOR(x,y)) with an identity node→var map.
struct Fixture {
  Circuit c{"hints"};
  NodeId a, b, x, y, p, q, g;
  std::vector<Var> node_to_var;

  Fixture() {
    a = c.add_input("a");
    b = c.add_input("b");
    x = c.add_input("x");
    y = c.add_input("y");
    p = c.add_or(a, b);
    q = c.add_nor(x, y);
    g = c.add_and(p, q);
    c.mark_output(g, "g");
    for (NodeId i = 0; i < static_cast<NodeId>(c.num_nodes()); ++i)
      node_to_var.push_back(static_cast<Var>(i));
  }
};

TEST(StructureHintsTest, PriorityListsInputsThenJustificationFrontier) {
  Fixture f;
  StructureHints h = make_structure_hints(f.c, f.node_to_var, {{f.g, true}});
  // In-cone primary inputs first, then the objective's immediate
  // fanins (the level-0 justification frontier), which apply() makes
  // the hottest by bumping last.
  const std::vector<Var> expected = {f.a, f.b, f.x, f.y, f.p, f.q};
  EXPECT_EQ(h.priority, expected);
  // One cone group covering all seven nodes, inputs leading.
  ASSERT_EQ(h.cone_groups.size(), 1u);
  EXPECT_EQ(h.cone_groups[0].size(), 7u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(f.c.node(h.cone_groups[0][i]).type, GateType::kInput)
        << "group position " << i;
  }
}

TEST(StructureHintsTest, FrontierInputIsNotListedTwice) {
  // When an objective fanin *is* a primary input it belongs to the
  // frontier slot, not the generic input slot.
  Circuit c("direct");
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g = c.add_and(a, b);
  std::vector<Var> ntv;
  for (NodeId i = 0; i < static_cast<NodeId>(c.num_nodes()); ++i)
    ntv.push_back(static_cast<Var>(i));
  StructureHints h = make_structure_hints(c, ntv, {{g, true}});
  EXPECT_EQ(h.priority, (std::vector<Var>{a, b}));
}

TEST(StructureHintsTest, PhaseHintsFollowTable2Thresholds) {
  Fixture f;
  StructureHints h = make_structure_hints(f.c, f.node_to_var, {{f.g, true}});
  std::map<Var, bool> phase(h.phases.begin(), h.phases.end());
  // AND is easier to falsify (one controlling 0-input), OR easier to
  // satisfy, NOR easier to falsify.
  EXPECT_FALSE(phase.at(f.g));
  EXPECT_TRUE(phase.at(f.p));
  EXPECT_FALSE(phase.at(f.q));
  // Inputs and XOR-like gates carry no preference.
  EXPECT_EQ(phase.count(f.a), 0u);
}

TEST(StructureHintsTest, XorGateGetsNoPhaseHint) {
  Circuit c("xor");
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g = c.add_xor(a, b);
  std::vector<Var> ntv;
  for (NodeId i = 0; i < static_cast<NodeId>(c.num_nodes()); ++i)
    ntv.push_back(static_cast<Var>(i));
  StructureHints h = make_structure_hints(c, ntv, {{g, true}});
  EXPECT_TRUE(h.phases.empty());
}

TEST(StructureHintsTest, ApplyBumpsConeOncePriorityThriceAndSeedsPhases) {
  Fixture f;
  StructureHints h = make_structure_hints(f.c, f.node_to_var, {{f.g, true}});
  RecordingEngine eng(static_cast<int>(f.c.num_nodes()));
  h.apply(eng);
  // Every cone variable is bumped once; priority variables get two
  // extra bumps on top.
  for (Var v : h.cone_groups[0]) EXPECT_GE(eng.bumps.at(v), 1);
  for (Var v : h.priority) EXPECT_EQ(eng.bumps.at(v), 3);
  EXPECT_EQ(eng.polarity.size(), h.phases.size());
  EXPECT_TRUE(eng.polarity.at(f.p));
}

TEST(StructureHintsTest, ApplySkipsOutOfRangeVariables) {
  Fixture f;
  StructureHints h = make_structure_hints(f.c, f.node_to_var, {{f.g, true}});
  RecordingEngine eng(2);  // engine only knows vars 0 and 1
  h.apply(eng);
  for (const auto& [v, n] : eng.bumps) {
    EXPECT_LT(v, 2);
    (void)n;
  }
  for (const auto& [v, val] : eng.polarity) {
    EXPECT_LT(v, 2);
    (void)val;
  }
}

TEST(StructureHintsTest, ForwardsThroughPortfolioEngine) {
  // The hooks must reach portfolio workers without harming
  // correctness: a hinted portfolio still answers SAT with a model
  // that satisfies the objective cone.
  Fixture f;
  circuit::ConeEncoding enc =
      circuit::encode_objectives(f.c, {{f.g, true}});
  StructureHints h =
      make_structure_hints(f.c, enc.node_to_var, {{f.g, true}});
  auto eng = sat::make_engine(sat::EngineSpec::portfolio(2), {});
  ASSERT_TRUE(eng->add_formula(enc.formula));
  h.apply(*eng);
  ASSERT_EQ(eng->solve(), sat::SolveResult::kSat);
  // AND(OR(a,b), NOR(x,y)) = 1 forces x = y = 0 and a|b.
  auto val = [&](NodeId n) {
    return eng->model_value(enc.node_to_var[n]).is_true();
  };
  EXPECT_TRUE(val(f.a) || val(f.b));
  EXPECT_FALSE(val(f.x));
  EXPECT_FALSE(val(f.y));
}

}  // namespace
}  // namespace sateda::csat
