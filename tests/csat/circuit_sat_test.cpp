#include "csat/circuit_sat.hpp"

#include <gtest/gtest.h>

#include "circuit/encoder.hpp"
#include "circuit/generators.hpp"
#include "circuit/simulator.hpp"
#include "sat/solver.hpp"

namespace sateda::csat {
namespace {

using circuit::Circuit;
using circuit::NodeId;

/// Oracle: is (node=value) attainable?  Decided by plain CNF SAT with
/// no structural layer.
bool attainable_plain(const Circuit& c, NodeId node, bool value) {
  sat::Solver s;
  (void)s.add_formula(circuit::encode_objective(c, node, value));
  return s.solve() == sat::SolveResult::kSat;
}

TEST(CircuitSatTest, Figure1ObjectiveZ0) {
  Circuit c = circuit::example_figure1();
  NodeId z = c.find("z");
  CircuitSatSolver solver(c);
  CircuitSatResult r = solver.solve(z, false);
  ASSERT_EQ(r.result, sat::SolveResult::kSat);
  // The (possibly partial) pattern must force z=0 under 3-valued
  // simulation: no completion can change the objective.
  auto vals = simulate_ternary(c, r.input_pattern);
  EXPECT_TRUE(vals[z].is_false());
}

TEST(CircuitSatTest, UnattainableObjectiveIsUnsat) {
  // AND of x and NOT x is constant 0: objective 1 unattainable.
  Circuit c;
  NodeId x = c.add_input("x");
  NodeId nx = c.add_not(x);
  NodeId g = c.add_and(x, nx);
  c.mark_output(g, "o");
  CircuitSatSolver solver(c);
  EXPECT_EQ(solver.solve(g, true).result, sat::SolveResult::kUnsat);
  EXPECT_EQ(solver.solve(g, false).result, sat::SolveResult::kSat);
}

TEST(CircuitSatTest, PartialPatternStillDeterminesObjective) {
  // Wide OR: justifying output 1 needs a single input; the layer
  // should leave the others unassigned.
  Circuit c;
  std::vector<NodeId> ins;
  for (int i = 0; i < 16; ++i) ins.push_back(c.add_input());
  NodeId acc = ins[0];
  for (int i = 1; i < 16; ++i) acc = c.add_or(acc, ins[i]);
  c.mark_output(acc, "o");
  CircuitSatSolver solver(c);
  CircuitSatResult r = solver.solve(acc, true);
  ASSERT_EQ(r.result, sat::SolveResult::kSat);
  EXPECT_LT(r.specified_inputs, 16)
      << "justification frontier must avoid overspecification";
  auto vals = simulate_ternary(c, r.input_pattern);
  EXPECT_TRUE(vals[acc].is_true());
}

TEST(CircuitSatTest, PlainCnfModeOverspecifies) {
  // The §5 contrast: without the layer every input ends up assigned.
  Circuit c;
  std::vector<NodeId> ins;
  for (int i = 0; i < 16; ++i) ins.push_back(c.add_input());
  NodeId acc = ins[0];
  for (int i = 1; i < 16; ++i) acc = c.add_or(acc, ins[i]);
  c.mark_output(acc, "o");
  CircuitSatOptions opts;
  opts.layer.frontier_termination = false;
  opts.layer.backtrace_decisions = false;
  CircuitSatSolver solver(c, opts);
  CircuitSatResult r = solver.solve(acc, true);
  ASSERT_EQ(r.result, sat::SolveResult::kSat);
  EXPECT_EQ(r.specified_inputs, 16);
}

TEST(CircuitSatTest, MultipleObjectives) {
  Circuit c = circuit::c17();
  NodeId o22 = c.find("22");
  NodeId o23 = c.find("23");
  CircuitSatSolver solver(c);
  CircuitSatResult r = solver.solve({{o22, true}, {o23, false}});
  ASSERT_EQ(r.result, sat::SolveResult::kSat);
  auto vals = simulate_ternary(c, r.input_pattern);
  EXPECT_TRUE(vals[o22].is_true());
  EXPECT_TRUE(vals[o23].is_false());
}

TEST(CircuitSatTest, RepeatedSolvesWithDifferentObjectivesStaySound) {
  // Exercises incremental cone encoding: the second objective's cone
  // was not encoded by the first call.
  Circuit c = circuit::ripple_carry_adder(4);
  CircuitSatSolver solver(c);
  NodeId s0 = c.outputs()[0];
  NodeId cout = c.outputs()[4];
  ASSERT_EQ(solver.solve(s0, true).result, sat::SolveResult::kSat);
  CircuitSatResult r = solver.solve(cout, true);
  ASSERT_EQ(r.result, sat::SolveResult::kSat);
  auto vals = simulate_ternary(c, r.input_pattern);
  EXPECT_TRUE(vals[cout].is_true());
}

struct LayerConfig {
  const char* name;
  bool frontier;
  bool backtrace;
  bool to_inputs;
  BacktraceMode mode = BacktraceMode::kSimple;
};

class CircuitSatPropertyTest
    : public ::testing::TestWithParam<std::tuple<LayerConfig, std::uint64_t>> {
};

/// For random circuits, every layer configuration must agree with the
/// plain-CNF oracle on attainability, and SAT patterns must force the
/// objective under ternary simulation.
TEST_P(CircuitSatPropertyTest, AgreesWithPlainCnfOracle) {
  const auto& [config, seed] = GetParam();
  Circuit c = circuit::random_circuit(8, 30, seed);
  CircuitSatOptions opts;
  opts.layer.frontier_termination = config.frontier;
  opts.layer.backtrace_decisions = config.backtrace;
  opts.layer.backtrace_to_inputs = config.to_inputs;
  opts.layer.backtrace_mode = config.mode;
  for (NodeId out : c.outputs()) {
    for (bool objective : {false, true}) {
      CircuitSatSolver fresh(c, opts);
      CircuitSatResult r = fresh.solve(out, objective);
      bool expected = attainable_plain(c, out, objective);
      ASSERT_NE(r.result, sat::SolveResult::kUnknown);
      EXPECT_EQ(r.result == sat::SolveResult::kSat, expected)
          << config.name << " node " << out << "=" << objective;
      if (r.result == sat::SolveResult::kSat) {
        auto vals = simulate_ternary(c, r.input_pattern);
        EXPECT_EQ(vals[out], lbool(objective))
            << config.name << ": pattern does not force the objective";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CircuitSatPropertyTest,
    ::testing::Combine(
        ::testing::Values(
            LayerConfig{"full_layer", true, true, true},
            LayerConfig{"frontier_only", true, false, false},
            LayerConfig{"backtrace_direct", true, true, false},
            LayerConfig{"multiple_backtrace", true, true, true,
                        BacktraceMode::kMultiple},
            LayerConfig{"plain_cnf", false, false, false}),
        ::testing::Range<std::uint64_t>(500, 508)),
    [](const ::testing::TestParamInfo<std::tuple<LayerConfig, std::uint64_t>>&
           info) {
      return std::string(std::get<0>(info.param).name) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(CircuitLayerStatsTest, BacktracesAreCounted) {
  Circuit c = circuit::c17();
  CircuitSatSolver solver(c);
  CircuitSatResult r = solver.solve(c.find("22"), false);
  ASSERT_EQ(r.result, sat::SolveResult::kSat);
  EXPECT_GE(solver.layer().stats().frontier_terminations +
                solver.layer().stats().backtraces,
            1);
  EXPECT_FALSE(solver.layer().stats().summary().empty());
}

}  // namespace
}  // namespace sateda::csat
