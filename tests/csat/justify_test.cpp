/// Reproduces Table 2 (threshold values on assigned inputs) and
/// Table 3 (justification counters associated with gate inputs).
#include "csat/justify.hpp"

#include <gtest/gtest.h>

#include "csat/circuit_layer.hpp"
#include "circuit/encoder.hpp"
#include "circuit/generators.hpp"
#include "sat/solver.hpp"

namespace sateda::csat {
namespace {

using circuit::GateType;

TEST(Table2Test, AndGateThresholds) {
  // "for an AND gate at least one input assigned value 0 justifies the
  //  assignment of value 0 to x, whereas for value 1 all inputs must
  //  be assigned value 1: u0(x) = 1 and u1(x) = |FI(x)|."
  auto [u0, u1] = justify_thresholds(GateType::kAnd, 4);
  EXPECT_EQ(u0, 1);
  EXPECT_EQ(u1, 4);
}

TEST(Table2Test, XorNeedsAllInputsForEitherValue) {
  // "for an XOR gate justification of any assigned value requires
  //  assignments to all gate inputs: u0(x) = u1(x) = |FI(x)|."
  auto [u0, u1] = justify_thresholds(GateType::kXor, 2);
  EXPECT_EQ(u0, 2);
  EXPECT_EQ(u1, 2);
  auto [x0, x1] = justify_thresholds(GateType::kXnor, 2);
  EXPECT_EQ(x0, 2);
  EXPECT_EQ(x1, 2);
}

TEST(Table2Test, DualGates) {
  auto [n0, n1] = justify_thresholds(GateType::kNand, 3);
  EXPECT_EQ(n0, 3);  // output 0 needs all inputs 1
  EXPECT_EQ(n1, 1);  // output 1 needs one input 0
  auto [o0, o1] = justify_thresholds(GateType::kOr, 3);
  EXPECT_EQ(o0, 3);
  EXPECT_EQ(o1, 1);
  auto [r0, r1] = justify_thresholds(GateType::kNor, 3);
  EXPECT_EQ(r0, 1);
  EXPECT_EQ(r1, 3);
}

TEST(Table2Test, EveryThresholdIsOneOrFaninCount) {
  // "in all cases we have u0(x), u1(x) ∈ {1, |FI(x)|}."
  for (GateType t : {GateType::kBuf, GateType::kNot, GateType::kAnd,
                     GateType::kNand, GateType::kOr, GateType::kNor,
                     GateType::kXor, GateType::kXnor}) {
    int arity = (t == GateType::kBuf || t == GateType::kNot) ? 1 : 2;
    auto [u0, u1] = justify_thresholds(t, arity);
    EXPECT_TRUE(u0 == 1 || u0 == arity) << to_string(t);
    EXPECT_TRUE(u1 == 1 || u1 == arity) << to_string(t);
  }
}

TEST(Table2Test, InputsAndConstantsAlwaysJustified) {
  for (GateType t :
       {GateType::kInput, GateType::kConst0, GateType::kConst1}) {
    auto [u0, u1] = justify_thresholds(t, 0);
    EXPECT_EQ(u0, 0);
    EXPECT_EQ(u1, 0);
  }
}

TEST(Table3Test, AndGateCounterUpdates) {
  // "for an AND gate an assignment of 0 to a fanin node w increments
  //  t0(x) by 1, and an assignment of 1 increments t1(x) by 1."
  EXPECT_EQ(justify_counter_delta(GateType::kAnd, false),
            (std::pair<int, int>{1, 0}));
  EXPECT_EQ(justify_counter_delta(GateType::kAnd, true),
            (std::pair<int, int>{0, 1}));
}

TEST(Table3Test, InvertingGatesSwapCounters) {
  EXPECT_EQ(justify_counter_delta(GateType::kNand, true),
            (std::pair<int, int>{1, 0}));
  EXPECT_EQ(justify_counter_delta(GateType::kNand, false),
            (std::pair<int, int>{0, 1}));
  EXPECT_EQ(justify_counter_delta(GateType::kNor, true),
            (std::pair<int, int>{1, 0}));
  EXPECT_EQ(justify_counter_delta(GateType::kNot, false),
            (std::pair<int, int>{0, 1}));
}

TEST(Table3Test, XorUpdatesBothCounters) {
  // "for the XOR gates, both counters are updated when an input node
  //  becomes assigned."
  for (bool v : {false, true}) {
    EXPECT_EQ(justify_counter_delta(GateType::kXor, v),
              (std::pair<int, int>{1, 1}));
    EXPECT_EQ(justify_counter_delta(GateType::kXnor, v),
              (std::pair<int, int>{1, 1}));
  }
}

/// Semantic property tying Tables 2+3 together: a gate output value v
/// with t_v ≥ u_v computed from any set of assigned inputs is indeed
/// implied regardless of the unassigned inputs.
TEST(JustifyPropertyTest, JustifiedValueIsForcedUnderAllCompletions) {
  for (GateType t : {GateType::kAnd, GateType::kNand, GateType::kOr,
                     GateType::kNor, GateType::kXor, GateType::kXnor}) {
    const int arity = 2;
    // Enumerate partial input assignments (3^2).
    for (int a0 = 0; a0 < 3; ++a0) {
      for (int a1 = 0; a1 < 3; ++a1) {
        int vals[2] = {a0, a1};  // 0, 1, 2=unassigned
        for (bool out : {false, true}) {
          auto [u0, u1] = justify_thresholds(t, arity);
          int t0 = 0, t1 = 0;
          for (int i = 0; i < arity; ++i) {
            if (vals[i] == 2) continue;
            auto [d0, d1] = justify_counter_delta(t, vals[i] == 1);
            t0 += d0;
            t1 += d1;
          }
          bool justified = out ? (t1 >= u1) : (t0 >= u0);
          // Check against exhaustive completion.
          bool forced = true;
          bool consistent_exists = false;
          for (int c0 = 0; c0 < 2; ++c0) {
            for (int c1 = 0; c1 < 2; ++c1) {
              if (vals[0] != 2 && c0 != vals[0]) continue;
              if (vals[1] != 2 && c1 != vals[1]) continue;
              std::vector<bool> ins = {c0 == 1, c1 == 1};
              bool got = circuit::eval_gate(t, ins);
              if (got == out) consistent_exists = true;
              if (got != out) forced = false;
            }
          }
          // Justification is deliberately dissociated from value
          // consistency (§5: "value consistency is handled by the SAT
          // algorithm"), so the claim only holds on consistent states.
          if (justified && consistent_exists) {
            EXPECT_TRUE(forced)
                << to_string(t) << " out=" << out << " ins=" << a0 << a1
                << ": justified but not forced";
          }
          // Completeness direction: when the value is forced by the
          // assigned inputs alone AND enough inputs are assigned per
          // Table 2, the counters must say justified.  (For XOR gates
          // forced requires all inputs; for AND-like a controlling
          // input.)
          if (forced && consistent_exists) {
            EXPECT_TRUE(justified)
                << to_string(t) << " out=" << out << " ins=" << a0 << a1
                << ": forced but counters disagree";
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace sateda::csat
