#include "delay/delay.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"

namespace sateda::delay {
namespace {

using circuit::Circuit;
using circuit::NodeId;

/// The textbook false-path circuit: two chains share a select signal
/// such that the topologically longest path can never propagate.
/// y = s ? (a through a long chain) : b; and the long chain is only
/// sensitizable when s=1, but an extra gate forces the path through
/// ¬s as well → the longest path is false.
Circuit false_path_circuit() {
  Circuit c("falsepath");
  NodeId s = c.add_input("s");
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId ns = c.add_not(s, "ns");
  // Delay `a` so the unique topologically-longest path enters the
  // chain through `a` (length 7), not through `s` (length 5).
  NodeId a1 = c.add_buf(a);
  NodeId a2 = c.add_buf(a1);
  NodeId t1 = c.add_and(a2, s);   // sensitizing the a-path needs s = 1
  NodeId t2 = c.add_buf(t1);
  NodeId t3 = c.add_buf(t2);
  NodeId t4 = c.add_and(t3, ns);  // ...and simultaneously s = 0: false!
  NodeId short_branch = c.add_and(b, ns);
  NodeId y = c.add_or(t4, short_branch);
  c.mark_output(y, "y");
  return c;
}

TEST(DelayTest, TopologicalDelayOfChain) {
  Circuit c;
  NodeId x = c.add_input("x");
  NodeId n1 = c.add_not(x);
  NodeId n2 = c.add_not(n1);
  NodeId n3 = c.add_not(n2);
  c.mark_output(n3, "o");
  EXPECT_EQ(topological_delay(c), 3);
}

TEST(DelayTest, InverterChainIsFullySensitizable) {
  Circuit c;
  NodeId x = c.add_input("x");
  NodeId prev = x;
  for (int i = 0; i < 5; ++i) prev = c.add_not(prev);
  c.mark_output(prev, "o");
  DelayResult r = compute_delay(c);
  EXPECT_EQ(r.topological, 5);
  EXPECT_EQ(r.sensitizable, 5)
      << "chains without side inputs are always sensitizable";
  EXPECT_EQ(sensitized_delay(c, r.critical_vector), 5);
}

TEST(DelayTest, FalsePathReducesSensitizableDelay) {
  Circuit c = false_path_circuit();
  DelayResult r = compute_delay(c);
  EXPECT_EQ(r.topological, 7);  // a → a1 → a2 → t1 → t2 → t3 → t4 → y
  EXPECT_EQ(r.sensitizable, 5)
      << "the length-7 branch is false; the true critical path enters "
         "the chain at s";
  // Witness consistency.
  EXPECT_EQ(sensitized_delay(c, r.critical_vector), r.sensitizable);
}

TEST(DelayTest, SensitizeDelayWitnessIsConsistent) {
  Circuit c = circuit::c17();
  int topo = topological_delay(c);
  auto witness = sensitize_delay(c, topo);
  if (witness.has_value()) {
    EXPECT_GE(sensitized_delay(c, *witness), topo);
  }
  // d beyond the topological bound is impossible.
  EXPECT_FALSE(sensitize_delay(c, topo + 1).has_value());
}

TEST(DelayTest, XorTreeAlwaysSensitized) {
  // XOR gates have no controlling value: every path is sensitizable.
  Circuit c = circuit::parity_tree(8);
  DelayResult r = compute_delay(c);
  EXPECT_EQ(r.sensitizable, r.topological);
}

class DelayPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DelayPropertyTest, SatAgreesWithVectorEnumeration) {
  Circuit c = circuit::random_circuit(6, 18, GetParam());
  // Exhaustive ground truth: max sensitized delay over all 64 vectors.
  int truth = 0;
  for (std::uint64_t bits = 0; bits < 64; ++bits) {
    std::vector<bool> ins(6);
    for (int i = 0; i < 6; ++i) ins[i] = (bits >> i) & 1;
    truth = std::max(truth, sensitized_delay(c, ins));
  }
  DelayResult r = compute_delay(c);
  EXPECT_EQ(r.sensitizable, truth) << "seed " << GetParam();
  EXPECT_LE(r.sensitizable, r.topological);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelayPropertyTest,
                         ::testing::Range<std::uint64_t>(700, 716));

TEST(PathTest, LongestPathsAreStructurallyValid) {
  Circuit c = circuit::c17();
  std::vector<Path> paths = longest_paths(c, 10);
  ASSERT_FALSE(paths.empty());
  const int target = topological_delay(c);
  for (const Path& p : paths) {
    EXPECT_EQ(static_cast<int>(p.size()) - 1, target);
    EXPECT_TRUE(c.is_input(p.front()));
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      const auto& fanins = c.node(p[i + 1]).fanins;
      EXPECT_NE(std::find(fanins.begin(), fanins.end(), p[i]), fanins.end());
    }
  }
}

TEST(PathTest, FalsePathIsReportedUntestable) {
  // y = OR(AND(b, a), a): the path b→AND→OR needs a=1 (AND side) and
  // a=0 (OR side) simultaneously — a statically false path.
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g = c.add_and(b, a);
  NodeId y = c.add_or(g, a);
  c.mark_output(y, "y");
  EXPECT_FALSE(sensitize_path(c, {b, g, y}).has_value());
}

TEST(PathTest, SensitizablePathGetsWitness) {
  // y = OR(AND(b, a), x) with independent x: path b→AND→OR needs a=1
  // and x=0 — satisfiable.
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId x = c.add_input("x");
  NodeId g = c.add_and(b, a);
  NodeId y = c.add_or(g, x);
  c.mark_output(y, "y");
  auto witness = sensitize_path(c, {b, g, y});
  ASSERT_TRUE(witness.has_value());
  // The optional-access dataflow model cannot see through ASSERT_TRUE.
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  EXPECT_TRUE((*witness)[0]);  // a = 1
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  EXPECT_FALSE((*witness)[2]);  // x = 0
}

}  // namespace
}  // namespace sateda::delay
