#include "noise/crosstalk.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "circuit/simulator.hpp"

namespace sateda::noise {
namespace {

using circuit::Circuit;
using circuit::NodeId;

/// Validates a witness: victim quiet in both frames, at least
/// `claimed` aggressors rising.
void verify_witness(const Circuit& c, NodeId victim, bool victim_value,
                    const std::vector<NodeId>& aggressors,
                    const CrosstalkResult& r) {
  ASSERT_FALSE(r.vector1.empty());
  auto v1 = circuit::simulate(c, r.vector1);
  auto v2 = circuit::simulate(c, r.vector2);
  EXPECT_EQ(v1[victim], victim_value);
  EXPECT_EQ(v2[victim], victim_value);
  int rises = 0;
  for (NodeId a : aggressors) {
    if (!v1[a] && v2[a]) ++rises;
  }
  EXPECT_GE(rises, r.functional_worst);
}

TEST(CrosstalkTest, IndependentAggressorsAllRise) {
  Circuit c;
  std::vector<NodeId> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(c.add_input());
  NodeId victim = c.add_input("victim");
  std::vector<NodeId> aggressors;
  for (int i = 0; i < 4; ++i) aggressors.push_back(c.add_buf(ins[i]));
  NodeId vbuf = c.add_buf(victim);
  for (NodeId a : aggressors) c.mark_output(a);
  c.mark_output(vbuf, "v");
  CrosstalkResult r = worst_case_aggressors(c, vbuf, aggressors);
  EXPECT_EQ(r.topological_bound, 4);
  EXPECT_EQ(r.functional_worst, 4);
  verify_witness(c, vbuf, false, aggressors, r);
}

TEST(CrosstalkTest, ComplementaryAggressorsCannotAlign) {
  // Aggressors x and ¬x: at most one can rise in the same transition.
  Circuit c;
  NodeId x = c.add_input("x");
  NodeId v = c.add_input("v");
  NodeId a0 = c.add_buf(x);
  NodeId a1 = c.add_not(x);
  NodeId vb = c.add_buf(v);
  c.mark_output(a0);
  c.mark_output(a1);
  c.mark_output(vb, "vo");
  CrosstalkResult r = worst_case_aggressors(c, vb, {a0, a1});
  EXPECT_EQ(r.topological_bound, 2);
  EXPECT_EQ(r.functional_worst, 1)
      << "logic correlation must beat the topological bound";
  verify_witness(c, vb, false, {a0, a1}, r);
}

TEST(CrosstalkTest, VictimCorrelationLimitsAggressors) {
  // Aggressor = AND(x, v): with victim v forced low the aggressor can
  // never be 1, hence never rises.
  Circuit c;
  NodeId x = c.add_input("x");
  NodeId v = c.add_input("v");
  NodeId agg = c.add_and(x, v);
  NodeId vb = c.add_buf(v);
  c.mark_output(agg);
  c.mark_output(vb, "vo");
  CrosstalkResult r = worst_case_aggressors(c, vb, {agg});
  EXPECT_EQ(r.functional_worst, 0);
}

TEST(CrosstalkTest, ImpossibleVictimValueReportsMinusOne) {
  // Victim is constant 1; asking for quiet-low is infeasible.
  Circuit c;
  NodeId x = c.add_input("x");
  NodeId one = c.add_const(true);
  NodeId vb = c.add_buf(one);
  NodeId agg = c.add_buf(x);
  c.mark_output(agg);
  c.mark_output(vb, "vo");
  CrosstalkOptions opts;
  opts.victim_value = false;
  CrosstalkResult r = worst_case_aggressors(c, vb, {agg}, opts);
  EXPECT_EQ(r.functional_worst, -1);
}

TEST(CrosstalkTest, QuietHighVictimAlsoWorks) {
  Circuit c;
  NodeId x = c.add_input("x");
  NodeId v = c.add_input("v");
  NodeId agg = c.add_buf(x);
  NodeId vb = c.add_buf(v);
  c.mark_output(agg);
  c.mark_output(vb, "vo");
  CrosstalkOptions opts;
  opts.victim_value = true;
  CrosstalkResult r = worst_case_aggressors(c, vb, {agg}, opts);
  EXPECT_EQ(r.functional_worst, 1);
  verify_witness(c, vb, true, {agg}, r);
}

class CrosstalkPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CrosstalkPropertyTest, FunctionalWorstNeverExceedsTopological) {
  Circuit c = circuit::random_circuit(8, 30, GetParam());
  // Victim: first output; aggressors: up to 6 other gates.
  NodeId victim = c.outputs()[0];
  std::vector<NodeId> aggressors;
  for (NodeId n = static_cast<NodeId>(c.inputs().size());
       n < static_cast<NodeId>(c.num_nodes()) && aggressors.size() < 6; ++n) {
    if (n != victim) aggressors.push_back(n);
  }
  CrosstalkResult r = worst_case_aggressors(c, victim, aggressors);
  EXPECT_LE(r.functional_worst, r.topological_bound);
  if (r.functional_worst > 0) {
    verify_witness(c, victim, false, aggressors, r);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrosstalkPropertyTest,
                         ::testing::Range<std::uint64_t>(1500, 1510));

}  // namespace
}  // namespace sateda::noise
