#include "fpga/routing.hpp"

#include <gtest/gtest.h>

namespace sateda::fpga {
namespace {

TEST(ChannelTest, DensityComputation) {
  ChannelProblem p;
  p.nets = {{0, 3}, {1, 4}, {2, 2}, {5, 6}};
  // Column 2 is crossed by nets 0, 1, 2 → density 3.
  EXPECT_EQ(channel_density(p), 3);
}

TEST(ChannelTest, LeftEdgeMatchesDensityWithoutVerticals) {
  ChannelProblem p = random_channel(12, 10, 0.0, 4);
  EXPECT_EQ(left_edge_tracks(p), channel_density(p))
      << "left-edge is optimal on interval graphs";
}

TEST(RouteTest, DisjointNetsShareOneTrack) {
  ChannelProblem p;
  p.nets = {{0, 1}, {2, 3}, {4, 5}};
  RouteResult r = route_channel(p, 1);
  ASSERT_TRUE(r.routable);
  EXPECT_TRUE(validate_routing(p, r.track, 1));
}

TEST(RouteTest, OverlapForcesTwoTracks) {
  ChannelProblem p;
  p.nets = {{0, 2}, {1, 3}};
  EXPECT_FALSE(route_channel(p, 1).routable);
  RouteResult r = route_channel(p, 2);
  ASSERT_TRUE(r.routable);
  EXPECT_TRUE(validate_routing(p, r.track, 2));
}

TEST(RouteTest, VerticalConstraintOrdersTracks) {
  ChannelProblem p;
  p.nets = {{0, 2}, {1, 3}};
  p.verticals = {{1, 0}};  // net 1 must be above net 0
  RouteResult r = route_channel(p, 2);
  ASSERT_TRUE(r.routable);
  EXPECT_LT(r.track[1], r.track[0]);
  EXPECT_TRUE(validate_routing(p, r.track, 2));
}

TEST(RouteTest, VerticalConstraintsCanExceedDensity) {
  // Three pairwise-overlapping-free nets chained by verticals need 3
  // tracks even though density is 1.
  ChannelProblem p;
  p.nets = {{0, 0}, {2, 2}, {4, 4}};
  p.verticals = {{0, 1}, {1, 2}};
  EXPECT_EQ(channel_density(p), 1);
  EXPECT_FALSE(route_channel(p, 2).routable);
  RouteResult r = route_channel(p, 3);
  ASSERT_TRUE(r.routable);
  EXPECT_TRUE(validate_routing(p, r.track, 3));
  EXPECT_EQ(minimum_tracks(p, 5), 3);
}

TEST(RouteTest, CyclicVerticalsAreUnroutable) {
  ChannelProblem p;
  p.nets = {{0, 1}, {0, 1}};
  p.verticals = {{0, 1}, {1, 0}};
  EXPECT_EQ(minimum_tracks(p, 6), -1);
}

TEST(RouteTest, EmptyChannelIsTriviallyRoutable) {
  ChannelProblem p;
  EXPECT_TRUE(route_channel(p, 0).routable);
}

class RoutingPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingPropertyTest, MinimumTracksIsValidAndTight) {
  ChannelProblem p = random_channel(10, 12, 0.15, GetParam());
  int t = minimum_tracks(p, 12);
  ASSERT_GT(t, 0) << "acyclic instances are always routable";
  EXPECT_GE(t, channel_density(p));
  RouteResult r = route_channel(p, t);
  ASSERT_TRUE(r.routable);
  EXPECT_TRUE(validate_routing(p, r.track, t));
  // Tightness: one fewer track must fail (t is minimal).
  if (t > channel_density(p)) {
    EXPECT_FALSE(route_channel(p, t - 1).routable);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingPropertyTest,
                         ::testing::Range<std::uint64_t>(1100, 1112));

}  // namespace
}  // namespace sateda::fpga
