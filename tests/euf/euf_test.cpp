#include "euf/euf.hpp"

#include <gtest/gtest.h>

#include "euf/pipeline.hpp"

namespace sateda::euf {
namespace {

TEST(EufTest, EqualityIsReflexive) {
  EufContext ctx;
  TermId x = ctx.term_var("x");
  EXPECT_TRUE(ctx.is_valid(ctx.eq(x, x)));
}

TEST(EufTest, EqualityIsNotUniversal) {
  EufContext ctx;
  TermId x = ctx.term_var("x");
  TermId y = ctx.term_var("y");
  EXPECT_FALSE(ctx.is_valid(ctx.eq(x, y)));
  EXPECT_EQ(ctx.check_sat(ctx.eq(x, y)).result, sat::SolveResult::kSat);
  EXPECT_EQ(ctx.check_sat(ctx.f_not(ctx.eq(x, y))).result,
            sat::SolveResult::kSat);
}

TEST(EufTest, TransitivityHolds) {
  EufContext ctx;
  TermId x = ctx.term_var("x");
  TermId y = ctx.term_var("y");
  TermId z = ctx.term_var("z");
  FormulaId premise = ctx.f_and(ctx.eq(x, y), ctx.eq(y, z));
  EXPECT_TRUE(ctx.is_valid(ctx.f_implies(premise, ctx.eq(x, z))));
  // x=y ∧ y≠z ⇒ x≠z.
  FormulaId p2 = ctx.f_and(ctx.eq(x, y), ctx.f_not(ctx.eq(y, z)));
  EXPECT_TRUE(ctx.is_valid(ctx.f_implies(p2, ctx.f_not(ctx.eq(x, z)))));
}

TEST(EufTest, FunctionalConsistency) {
  EufContext ctx;
  TermId x = ctx.term_var("x");
  TermId y = ctx.term_var("y");
  TermId fx = ctx.apply("f", {x});
  TermId fy = ctx.apply("f", {y});
  // x = y ⇒ f(x) = f(y): Ackermann constraint.
  EXPECT_TRUE(ctx.is_valid(ctx.f_implies(ctx.eq(x, y), ctx.eq(fx, fy))));
  // The converse is NOT valid (f may collapse distinct inputs).
  EXPECT_FALSE(ctx.is_valid(ctx.f_implies(ctx.eq(fx, fy), ctx.eq(x, y))));
}

TEST(EufTest, CongruenceThroughNestedApplications) {
  EufContext ctx;
  TermId x = ctx.term_var("x");
  TermId y = ctx.term_var("y");
  TermId gfx = ctx.apply("g", {ctx.apply("f", {x})});
  TermId gfy = ctx.apply("g", {ctx.apply("f", {y})});
  EXPECT_TRUE(ctx.is_valid(ctx.f_implies(ctx.eq(x, y), ctx.eq(gfx, gfy))));
}

TEST(EufTest, HashConsingMergesIdenticalApplications) {
  EufContext ctx;
  TermId x = ctx.term_var("x");
  EXPECT_EQ(ctx.apply("f", {x}), ctx.apply("f", {x}));
}

TEST(EufTest, IteSelectsByCondition) {
  EufContext ctx;
  TermId a = ctx.term_var("a");
  TermId b = ctx.term_var("b");
  FormulaId c = ctx.prop_var("c");
  TermId m = ctx.term_ite(c, a, b);
  EXPECT_TRUE(ctx.is_valid(ctx.f_implies(c, ctx.eq(m, a))));
  EXPECT_TRUE(ctx.is_valid(ctx.f_implies(ctx.f_not(c), ctx.eq(m, b))));
  // Unconditionally m equals a or b.
  EXPECT_TRUE(ctx.is_valid(ctx.f_or(ctx.eq(m, a), ctx.eq(m, b))));
}

TEST(EufTest, DistinctnessConstraintsCompose) {
  // x≠y ∧ f(x)=f(y) is satisfiable (f collapses), but adding
  // injectivity via a premise g(f(x))=x ∧ g(f(y))=y makes it UNSAT.
  EufContext ctx;
  TermId x = ctx.term_var("x");
  TermId y = ctx.term_var("y");
  TermId fx = ctx.apply("f", {x});
  TermId fy = ctx.apply("f", {y});
  FormulaId base = ctx.f_and(ctx.f_not(ctx.eq(x, y)), ctx.eq(fx, fy));
  EXPECT_EQ(ctx.check_sat(base).result, sat::SolveResult::kSat);
  FormulaId inj = ctx.f_and(ctx.eq(ctx.apply("g", {fx}), x),
                            ctx.eq(ctx.apply("g", {fy}), y));
  EXPECT_EQ(ctx.check_sat(ctx.f_and(base, inj)).result,
            sat::SolveResult::kUnsat);
}

TEST(EufTest, ModelAssignsConsistentClasses) {
  EufContext ctx;
  TermId x = ctx.term_var("x");
  TermId y = ctx.term_var("y");
  TermId z = ctx.term_var("z");
  FormulaId f = ctx.f_and(ctx.eq(x, y), ctx.f_not(ctx.eq(y, z)));
  EufResult r = ctx.check_sat(f);
  ASSERT_EQ(r.result, sat::SolveResult::kSat);
  EXPECT_EQ(r.model.term_class[x], r.model.term_class[y]);
  EXPECT_NE(r.model.term_class[y], r.model.term_class[z]);
}

TEST(EufTest, PropositionalSkeletonWorks) {
  EufContext ctx;
  FormulaId p = ctx.prop_var("p");
  FormulaId q = ctx.prop_var("q");
  EXPECT_TRUE(ctx.is_valid(ctx.f_or(p, ctx.f_not(p))));
  EXPECT_FALSE(ctx.is_valid(ctx.f_implies(p, q)));
  EXPECT_TRUE(ctx.is_valid(ctx.f_iff(ctx.f_and(p, q), ctx.f_and(q, p))));
}

// --- the ref. [6] headline: pipeline vs ISA ---------------------------

TEST(PipelineTest, ForwardingPipelineIsCorrect) {
  PipelineVerification v = verify_toy_pipeline(/*with_forwarding=*/true);
  EXPECT_TRUE(v.valid);
}

TEST(PipelineTest, MissingForwardingIsCaught) {
  PipelineVerification v = verify_toy_pipeline(/*with_forwarding=*/false);
  EXPECT_FALSE(v.valid) << "the RAW hazard must produce a counterexample";
  EXPECT_EQ(v.query.result, sat::SolveResult::kSat);
}

}  // namespace
}  // namespace sateda::euf
