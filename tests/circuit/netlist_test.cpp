#include "circuit/netlist.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"

namespace sateda::circuit {
namespace {

TEST(NetlistTest, BuildSmallCircuit) {
  Circuit c("t");
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g = c.add_and(a, b, "g");
  c.mark_output(g, "out");
  EXPECT_EQ(c.num_nodes(), 3u);
  EXPECT_EQ(c.num_gates(), 1u);
  EXPECT_EQ(c.inputs().size(), 2u);
  EXPECT_EQ(c.outputs().size(), 1u);
  EXPECT_EQ(c.find("g"), g);
  EXPECT_EQ(c.find("nope"), kNullNode);
  EXPECT_NO_THROW(c.check());
}

TEST(NetlistTest, ArityIsEnforced) {
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  EXPECT_THROW(c.add_gate(GateType::kNot, {a, b}), CircuitError);
  EXPECT_THROW(c.add_gate(GateType::kXor, {a}), CircuitError);
  EXPECT_THROW(c.add_gate(GateType::kAnd, {}), CircuitError);
  EXPECT_THROW(c.add_gate(GateType::kInput, {a}), CircuitError);
}

TEST(NetlistTest, FaninsMustExist) {
  Circuit c;
  NodeId a = c.add_input("a");
  EXPECT_THROW(c.add_not(static_cast<NodeId>(99)), CircuitError);
  EXPECT_NO_THROW(c.add_not(a));
}

TEST(NetlistTest, DuplicateNamesRejected) {
  Circuit c;
  c.add_input("a");
  EXPECT_THROW(c.add_input("a"), CircuitError);
}

TEST(NetlistTest, FanoutsAreInverseOfFanins) {
  Circuit c = c17();
  for (NodeId n = 0; n < static_cast<NodeId>(c.num_nodes()); ++n) {
    for (NodeId f : c.node(n).fanins) {
      const auto& fo = c.fanouts(f);
      EXPECT_NE(std::find(fo.begin(), fo.end(), n), fo.end());
    }
  }
  // Node "11" (NAND) feeds both "16" and "19".
  NodeId g11 = c.find("11");
  EXPECT_EQ(c.fanouts(g11).size(), 2u);
}

TEST(NetlistTest, LevelsAndDepth) {
  Circuit c = c17();
  std::vector<int> lv = c.levels();
  for (NodeId i : c.inputs()) EXPECT_EQ(lv[i], 0);
  EXPECT_EQ(c.depth(), 3);  // NAND chain 11 -> 16 -> 23
}

TEST(NetlistTest, GeneratorShapes) {
  Circuit rca = ripple_carry_adder(4);
  EXPECT_EQ(rca.inputs().size(), 9u);   // 4+4+cin
  EXPECT_EQ(rca.outputs().size(), 5u);  // 4 sums + cout
  Circuit mul = array_multiplier(3);
  EXPECT_EQ(mul.inputs().size(), 6u);
  EXPECT_EQ(mul.outputs().size(), 6u);
  Circuit mux = mux_tree(3);
  EXPECT_EQ(mux.inputs().size(), 8u + 3u);
  EXPECT_EQ(mux.outputs().size(), 1u);
  Circuit a = alu(4);
  EXPECT_EQ(a.inputs().size(), 10u);
  EXPECT_EQ(a.outputs().size(), 5u);
}

TEST(NetlistTest, RandomCircuitIsDeterministicAndValid) {
  Circuit a = random_circuit(8, 50, 5);
  Circuit b = random_circuit(8, 50, 5);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_NO_THROW(a.check());
  EXPECT_FALSE(a.outputs().empty());
  for (NodeId n = 0; n < static_cast<NodeId>(a.num_nodes()); ++n) {
    EXPECT_EQ(a.node(n).type, b.node(n).type);
  }
}

}  // namespace
}  // namespace sateda::circuit
