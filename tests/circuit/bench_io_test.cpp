#include "circuit/bench_io.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "circuit/simulator.hpp"

namespace sateda::circuit {
namespace {

constexpr const char* kC17Bench = R"(# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

TEST(BenchIoTest, ParsesC17) {
  Circuit c = read_bench_string(kC17Bench, "c17");
  EXPECT_EQ(c.inputs().size(), 5u);
  EXPECT_EQ(c.outputs().size(), 2u);
  EXPECT_EQ(c.num_gates(), 6u);
  // Agrees with the built-in generator on all 32 patterns.
  Circuit ref = c17();
  for (std::uint64_t bits = 0; bits < 32; ++bits) {
    std::vector<bool> ins(5);
    for (int i = 0; i < 5; ++i) ins[i] = (bits >> i) & 1;
    EXPECT_EQ(simulate_outputs(c, ins), simulate_outputs(ref, ins));
  }
}

TEST(BenchIoTest, HandlesOutOfOrderDefinitions) {
  Circuit c = read_bench_string(
      "INPUT(a)\nOUTPUT(z)\nz = NOT(y)\ny = BUFF(a)\n");
  EXPECT_EQ(c.num_gates(), 2u);
  EXPECT_EQ(simulate_outputs(c, {false})[0], true);
}

TEST(BenchIoTest, RoundTripPreservesFunction) {
  Circuit c = alu(3);
  Circuit back = read_bench_string(to_bench_string(c), "alu3");
  ASSERT_EQ(back.inputs().size(), c.inputs().size());
  ASSERT_EQ(back.outputs().size(), c.outputs().size());
  for (std::uint64_t bits = 0; bits < 256; bits += 3) {
    std::vector<bool> ins(c.inputs().size());
    for (std::size_t i = 0; i < ins.size(); ++i) ins[i] = (bits >> i) & 1;
    EXPECT_EQ(simulate_outputs(c, ins), simulate_outputs(back, ins));
  }
}

TEST(BenchIoTest, DetectsCycle) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(x)\n"
                                 "x = AND(a, y)\ny = BUFF(x)\n"),
               CircuitError);
}

TEST(BenchIoTest, DetectsUndefinedSignal) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n"),
               CircuitError);
}

TEST(BenchIoTest, DetectsDoubleDefinition) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nz = NOT(a)\nz = BUFF(a)\n"),
               CircuitError);
}

TEST(BenchIoTest, DetectsMalformedLine) {
  EXPECT_THROW(read_bench_string("WHATEVER a b c\n"), CircuitError);
  EXPECT_THROW(read_bench_string("z = FROB(a)\n"), CircuitError);
}

TEST(BenchIoTest, IgnoresCommentsAndBlankLines) {
  Circuit c = read_bench_string(
      "# hello\n\nINPUT(a)\n# mid comment\nOUTPUT(b)\nb = NOT(a)\n");
  EXPECT_EQ(c.num_gates(), 1u);
}

}  // namespace
}  // namespace sateda::circuit
