#include "circuit/dot.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "circuit/simulator.hpp"

namespace sateda::circuit {
namespace {

TEST(DotTest, ContainsEveryNodeAndEdge) {
  Circuit c = c17();
  std::string dot = to_dot_string(c);
  EXPECT_NE(dot.find("digraph \"c17\""), std::string::npos);
  // All 11 nodes appear as definitions.
  for (NodeId id = 0; id < static_cast<NodeId>(c.num_nodes()); ++id) {
    EXPECT_NE(dot.find("n" + std::to_string(id) + " [label="),
              std::string::npos)
        << "node " << id;
  }
  // Edge count equals total fanin count (12 for c17's six NAND2s).
  std::size_t edges = 0, pos = 0;
  while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
    ++edges;
    pos += 4;
  }
  EXPECT_EQ(edges, 12u);
}

TEST(DotTest, InputsAreBoxesOutputsDoubleCircles) {
  Circuit c = c17();
  std::string dot = to_dot_string(c);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("shape=doublecircle"), std::string::npos);
}

TEST(DotTest, ValueAnnotationsShow) {
  Circuit c = c17();
  DotOptions opts;
  std::vector<bool> in(5, true);
  auto vals = simulate(c, in);
  opts.values.assign(c.num_nodes(), l_undef);
  for (NodeId n = 0; n < static_cast<NodeId>(c.num_nodes()); ++n) {
    opts.values[n] = lbool(static_cast<bool>(vals[n]));
  }
  std::string dot = to_dot_string(c, opts);
  EXPECT_NE(dot.find("\\n=1"), std::string::npos);
  EXPECT_NE(dot.find("\\n=0"), std::string::npos);
}

TEST(DotTest, HighlightedPathIsStyled) {
  Circuit c = c17();
  DotOptions opts;
  opts.highlight = {c.find("3"), c.find("11"), c.find("16"), c.find("22")};
  std::string dot = to_dot_string(c, opts);
  EXPECT_NE(dot.find("fillcolor=gold"), std::string::npos);
  EXPECT_NE(dot.find("penwidth=2"), std::string::npos);
}

TEST(DotTest, UnnamedNodesGetSyntheticNames) {
  Circuit c;
  NodeId a = c.add_input();
  NodeId g = c.add_not(a);
  c.mark_output(g);
  std::string dot = to_dot_string(c);
  EXPECT_NE(dot.find("label=\"n0\""), std::string::npos);
}

}  // namespace
}  // namespace sateda::circuit
