#include "circuit/simulator.hpp"

#include <random>

#include <gtest/gtest.h>

#include "circuit/generators.hpp"

namespace sateda::circuit {
namespace {

std::vector<bool> to_bits(std::uint64_t v, int n) {
  std::vector<bool> bits(n);
  for (int i = 0; i < n; ++i) bits[i] = (v >> i) & 1;
  return bits;
}

std::uint64_t from_bits(const std::vector<bool>& bits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) v |= std::uint64_t{1} << i;
  }
  return v;
}

TEST(SimulatorTest, AdderAddsExhaustively) {
  const int n = 4;
  Circuit c = ripple_carry_adder(n);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      for (std::uint64_t cin = 0; cin < 2; ++cin) {
        std::vector<bool> ins;
        for (bool bit : to_bits(a, n)) ins.push_back(bit);
        for (bool bit : to_bits(b, n)) ins.push_back(bit);
        ins.push_back(cin != 0);
        std::uint64_t got = from_bits(simulate_outputs(c, ins));
        EXPECT_EQ(got, a + b + cin);
      }
    }
  }
}

TEST(SimulatorTest, MultiplierMultipliesExhaustively) {
  const int n = 3;
  Circuit c = array_multiplier(n);
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      std::vector<bool> ins;
      for (bool bit : to_bits(a, n)) ins.push_back(bit);
      for (bool bit : to_bits(b, n)) ins.push_back(bit);
      EXPECT_EQ(from_bits(simulate_outputs(c, ins)), a * b)
          << a << " * " << b;
    }
  }
}

TEST(SimulatorTest, ComparatorDetectsEquality) {
  const int n = 3;
  Circuit c = equality_comparator(n);
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      std::vector<bool> ins;
      for (bool bit : to_bits(a, n)) ins.push_back(bit);
      for (bool bit : to_bits(b, n)) ins.push_back(bit);
      EXPECT_EQ(simulate_outputs(c, ins)[0], a == b);
    }
  }
}

TEST(SimulatorTest, ParityTreeComputesParity) {
  Circuit c = parity_tree(7);
  for (std::uint64_t v = 0; v < 128; ++v) {
    std::vector<bool> ins = to_bits(v, 7);
    bool parity = __builtin_popcountll(v) & 1;
    EXPECT_EQ(simulate_outputs(c, ins)[0], parity);
  }
}

TEST(SimulatorTest, MuxSelectsTheAddressedInput) {
  Circuit c = mux_tree(2);
  for (std::uint64_t data = 0; data < 16; ++data) {
    for (std::uint64_t sel = 0; sel < 4; ++sel) {
      std::vector<bool> ins;
      for (bool bit : to_bits(data, 4)) ins.push_back(bit);
      for (bool bit : to_bits(sel, 2)) ins.push_back(bit);
      EXPECT_EQ(simulate_outputs(c, ins)[0], static_cast<bool>((data >> sel) & 1));
    }
  }
}

TEST(SimulatorTest, AluImplementsItsOpcodes) {
  const int n = 4;
  Circuit c = alu(n);
  for (std::uint64_t a = 0; a < 16; a += 3) {
    for (std::uint64_t b = 0; b < 16; b += 5) {
      for (int op = 0; op < 4; ++op) {
        std::vector<bool> ins;
        for (bool bit : to_bits(a, n)) ins.push_back(bit);
        for (bool bit : to_bits(b, n)) ins.push_back(bit);
        ins.push_back(op & 1);
        ins.push_back((op >> 1) & 1);
        std::vector<bool> outs = simulate_outputs(c, ins);
        std::uint64_t r = from_bits({outs.begin(), outs.begin() + n});
        std::uint64_t expected;
        switch (op) {
          case 0: expected = (a + b) & 0xF; break;
          case 1: expected = a & b; break;
          case 2: expected = a | b; break;
          default: expected = a ^ b; break;
        }
        EXPECT_EQ(r, expected) << "a=" << a << " b=" << b << " op=" << op;
        if (op == 0) {
          EXPECT_EQ(outs[n], ((a + b) >> 4) & 1);
        } else {
          EXPECT_FALSE(outs[n]);
        }
      }
    }
  }
}

TEST(SimulatorTest, WordSimulationMatchesScalar) {
  Circuit c = random_circuit(10, 60, 17);
  // Pack 64 random patterns.
  std::mt19937_64 rng(99);
  std::vector<std::uint64_t> packed(c.inputs().size());
  for (auto& w : packed) w = rng();
  std::vector<std::uint64_t> word_vals = simulate_words(c, packed);
  for (int bit = 0; bit < 64; bit += 7) {
    std::vector<bool> ins(c.inputs().size());
    for (std::size_t i = 0; i < ins.size(); ++i) {
      ins[i] = (packed[i] >> bit) & 1;
    }
    std::vector<bool> scalar = simulate(c, ins);
    for (NodeId n = 0; n < static_cast<NodeId>(c.num_nodes()); ++n) {
      EXPECT_EQ(scalar[n], static_cast<bool>((word_vals[n] >> bit) & 1))
          << "node " << n << " bit " << bit;
    }
  }
}

TEST(SimulatorTest, TernarySimulationRefinesToBinary) {
  Circuit c = c17();
  // Fully specified ternary == binary.
  std::vector<lbool> t_ins(5, l_false);
  std::vector<bool> b_ins(5, false);
  auto tv = simulate_ternary(c, t_ins);
  auto bv = simulate(c, b_ins);
  for (NodeId n = 0; n < static_cast<NodeId>(c.num_nodes()); ++n) {
    EXPECT_EQ(tv[n].is_true(), bv[n]);
    EXPECT_FALSE(tv[n].is_undef());
  }
}

TEST(SimulatorTest, TernaryControllingValuesDecideOutputs) {
  // AND with one 0 input is 0 even when the other is X.
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g = c.add_and(a, b);
  NodeId h = c.add_or(a, b);
  (void)g;
  (void)h;
  auto v = simulate_ternary(c, {l_false, l_undef});
  EXPECT_TRUE(v[g].is_false());
  EXPECT_TRUE(v[h].is_undef());
  v = simulate_ternary(c, {l_true, l_undef});
  EXPECT_TRUE(v[g].is_undef());
  EXPECT_TRUE(v[h].is_true());
}

TEST(SimulatorTest, TernaryIsMonotoneInInformation) {
  // Any completion of a partial pattern agrees with the ternary result
  // wherever the latter is defined.
  Circuit c = random_circuit(6, 25, 4);
  std::vector<lbool> partial = {l_true, l_undef, l_false,
                                l_undef, l_true, l_undef};
  auto t = simulate_ternary(c, partial);
  for (std::uint64_t bits = 0; bits < 8; ++bits) {
    std::vector<bool> full(6);
    int undef_idx = 0;
    for (int i = 0; i < 6; ++i) {
      if (partial[i].is_undef()) {
        full[i] = (bits >> undef_idx++) & 1;
      } else {
        full[i] = partial[i].is_true();
      }
    }
    auto b = simulate(c, full);
    for (NodeId n = 0; n < static_cast<NodeId>(c.num_nodes()); ++n) {
      if (!t[n].is_undef()) {
        EXPECT_EQ(t[n].is_true(), b[n]);
      }
    }
  }
}

}  // namespace
}  // namespace sateda::circuit
