/// Equisatisfiability property suite: the structure-aware pipeline
/// (rewrite + Plaisted-Greenbaum cone encoding) must agree with the
/// plain Table 1 objective encoding on random netlists and random
/// objectives.  SAT verdicts are cross-checked by simulating the model
/// on the *original* circuit; UNSAT verdicts are DRAT-certified with
/// the in-process checker.
#include <gtest/gtest.h>

#include <random>

#include "circuit/encoder.hpp"
#include "circuit/generators.hpp"
#include "circuit/netlist.hpp"
#include "circuit/rewrite.hpp"
#include "circuit/simulator.hpp"
#include "sat/drat_check.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"

namespace sateda::circuit {
namespace {

struct PipelineVerdict {
  sat::SolveResult result;
  std::vector<bool> inputs;  // model inputs (SAT only), original order
};

/// Solves (objective on c) through rewrite + PG, certifying UNSAT
/// answers before returning.
PipelineVerdict solve_pipeline(const Circuit& c, NodeId obj, bool value) {
  RewriteResult rr = rewrite(c, {}, {obj});
  NodeId mapped = rr.node_map[obj];
  EXPECT_NE(mapped, kNullNode);
  ConeEncodingOptions eopts;
  eopts.plaisted_greenbaum = true;
  ConeEncoding enc = encode_objectives(rr.circuit, {{mapped, value}}, eopts);
  sat::Proof proof;
  sat::Solver s;
  s.set_proof_tracer(&proof);
  const bool consistent = s.add_formula(enc.formula);
  PipelineVerdict v{sat::SolveResult::kUnsat, {}};
  if (consistent) v.result = s.solve();
  if (v.result == sat::SolveResult::kSat) {
    for (NodeId i : rr.circuit.inputs()) {
      Var var = enc.var_of(i);
      v.inputs.push_back(var != kNullVar && s.model_value(var).is_true());
    }
  } else {
    sat::DratCheckResult chk = sat::check_drat(enc.formula, proof);
    EXPECT_TRUE(chk.ok) << chk.message;
    EXPECT_TRUE(chk.refutation);
  }
  return v;
}

TEST(EquisatPropertyTest, PipelineAgreesWithTable1OnRandomObjectives) {
  std::mt19937_64 rng(7);
  for (std::uint64_t seed = 500; seed < 512; ++seed) {
    Circuit c = random_circuit(6, 30, seed);
    for (int trial = 0; trial < 3; ++trial) {
      NodeId obj = static_cast<NodeId>(rng() % c.num_nodes());
      const bool value = (rng() & 1) != 0;

      sat::Solver base;
      (void)base.add_formula(encode_objective(c, obj, value));
      const sat::SolveResult expected = base.solve();

      PipelineVerdict got = solve_pipeline(c, obj, value);
      EXPECT_EQ(got.result, expected)
          << "seed " << seed << " node " << obj << " value " << value;
      if (got.result == sat::SolveResult::kSat) {
        // Rewriting preserves input order, so the model inputs apply
        // directly to the original circuit.
        EXPECT_EQ(simulate(c, got.inputs)[obj], value)
            << "seed " << seed << " node " << obj;
      }
    }
  }
}

TEST(EquisatPropertyTest, UnsatisfiableObjectiveIsCertified) {
  // XOR(g, h) with g == h structurally: asking for 1 is UNSAT and must
  // come back with a checkable refutation (or fold to constant 0, in
  // which case the unit-conflict proof still certifies).
  Circuit c("unsat");
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g = c.add_and(a, b);
  NodeId h = c.add_and(b, a);
  NodeId x = c.add_xor(g, h);
  c.mark_output(x, "o");
  PipelineVerdict v = solve_pipeline(c, x, true);
  EXPECT_EQ(v.result, sat::SolveResult::kUnsat);
}

TEST(EquisatPropertyTest, PgAloneIsEquisatisfiableOnRandomNetlists) {
  // Without rewriting, Plaisted-Greenbaum on the original netlist must
  // already match the Table 1 answer for every output objective.
  for (std::uint64_t seed = 600; seed < 610; ++seed) {
    Circuit c = random_circuit(5, 20, seed);
    for (NodeId out : c.outputs()) {
      for (bool value : {false, true}) {
        sat::Solver base;
        (void)base.add_formula(encode_objective(c, out, value));
        const sat::SolveResult expected = base.solve();

        ConeEncodingOptions eopts;
        eopts.plaisted_greenbaum = true;
        ConeEncoding enc = encode_objectives(c, {{out, value}}, eopts);
        sat::Solver s;
        const bool consistent = s.add_formula(enc.formula);
        const sat::SolveResult got =
            consistent ? s.solve() : sat::SolveResult::kUnsat;
        EXPECT_EQ(got, expected) << "seed " << seed << " out " << out;
        if (got == sat::SolveResult::kSat) {
          std::vector<bool> ins;
          for (NodeId i : c.inputs()) {
            Var var = enc.var_of(i);
            ins.push_back(var != kNullVar && s.model_value(var).is_true());
          }
          EXPECT_EQ(simulate(c, ins)[out], value);
        }
      }
    }
  }
}

}  // namespace
}  // namespace sateda::circuit
