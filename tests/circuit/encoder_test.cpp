/// Reproduces Table 1 (CNF formulas for simple gates) and Figure 1
/// (example circuit + property): every gate encoding must admit
/// exactly the gate's valid input-output assignments, with the clause
/// counts the table specifies.
#include "circuit/encoder.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "circuit/simulator.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace sateda::circuit {
namespace {

struct GateCase {
  GateType type;
  int arity;
};

class Table1Test : public ::testing::TestWithParam<GateCase> {};

/// The encoding of a single gate must be satisfied by exactly the
/// 2^arity valid input-output combinations — no more, no fewer.
TEST_P(Table1Test, EncodingMatchesTruthTable) {
  const auto [type, arity] = GetParam();
  Circuit c;
  std::vector<NodeId> ins;
  for (int i = 0; i < arity; ++i) ins.push_back(c.add_input());
  NodeId g = c.add_gate(type, ins);
  CnfFormula f = encode_circuit(c);
  // Every total assignment to the inputs extends uniquely to a model.
  EXPECT_EQ(testing::brute_force_count_models(f), std::uint64_t{1} << arity);
  // And each model agrees with eval_gate.
  const std::uint64_t total = std::uint64_t{1} << arity;
  for (std::uint64_t bits = 0; bits < total; ++bits) {
    std::vector<bool> in_vals(arity);
    for (int i = 0; i < arity; ++i) in_vals[i] = (bits >> i) & 1;
    bool out = eval_gate(type, in_vals);
    // Assignment (inputs, correct output) satisfies; flipped output
    // does not.
    std::vector<bool> assignment(c.num_nodes());
    for (int i = 0; i < arity; ++i) assignment[ins[i]] = in_vals[i];
    assignment[g] = out;
    EXPECT_TRUE(f.is_satisfied_by(assignment));
    assignment[g] = !out;
    EXPECT_FALSE(f.is_satisfied_by(assignment));
  }
}

TEST_P(Table1Test, ClauseCountMatchesTable1) {
  const auto [type, arity] = GetParam();
  Circuit c;
  std::vector<NodeId> ins;
  for (int i = 0; i < arity; ++i) ins.push_back(c.add_input());
  c.add_gate(type, ins);
  CnfFormula f = encode_circuit(c);
  EXPECT_EQ(f.num_clauses(), gate_clause_count(type, arity));
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, Table1Test,
    ::testing::Values(GateCase{GateType::kBuf, 1}, GateCase{GateType::kNot, 1},
                      GateCase{GateType::kAnd, 2}, GateCase{GateType::kAnd, 3},
                      GateCase{GateType::kAnd, 5}, GateCase{GateType::kNand, 2},
                      GateCase{GateType::kNand, 4}, GateCase{GateType::kOr, 2},
                      GateCase{GateType::kOr, 3}, GateCase{GateType::kNor, 2},
                      GateCase{GateType::kNor, 4}, GateCase{GateType::kXor, 2},
                      GateCase{GateType::kXnor, 2}),
    [](const ::testing::TestParamInfo<GateCase>& info) {
      return to_string(info.param.type) + std::to_string(info.param.arity);
    });

TEST(EncoderTest, ConstantsEncodeAsUnits) {
  Circuit c;
  c.add_input("i");
  NodeId k0 = c.add_const(false);
  NodeId k1 = c.add_const(true);
  CnfFormula f = encode_circuit(c);
  ASSERT_EQ(f.num_clauses(), 2u);
  auto model = testing::brute_force_model(f);
  ASSERT_TRUE(model.has_value());
  // The optional-access dataflow model cannot see through ASSERT_TRUE.
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  EXPECT_FALSE((*model)[k0]);
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  EXPECT_TRUE((*model)[k1]);
}

/// Whole-circuit property: for every input pattern, the circuit CNF
/// has exactly one model extending it, and it matches simulation.
TEST(EncoderTest, CircuitCnfAgreesWithSimulation) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Circuit c = random_circuit(5, 13, seed);
    CnfFormula f = encode_circuit(c);
    EXPECT_EQ(testing::brute_force_count_models(f) ,
              std::uint64_t{1} << c.inputs().size())
        << "each input pattern must extend to exactly one model";
    for (std::uint64_t bits = 0; bits < 16; ++bits) {
      std::vector<bool> ins(c.inputs().size());
      for (std::size_t i = 0; i < ins.size(); ++i) ins[i] = (bits >> i) & 1;
      std::vector<bool> values = simulate(c, ins);
      EXPECT_TRUE(f.is_satisfied_by(values));
    }
  }
}

TEST(EncoderTest, ConesRestrictClauses) {
  Circuit c = c17();
  NodeId g22 = c.find("22");
  ConeEncoding cone = encode_cones(c, {g22});
  CnfFormula full = encode_circuit(c);
  EXPECT_LT(cone.formula.num_clauses(), full.num_clauses());
  // Node 19 ("19") only feeds output 23: it gets no variable at all —
  // cone encodings are compact, not merely unconstrained.
  NodeId g19 = c.find("19");
  EXPECT_EQ(cone.var_of(g19), kNullVar);
  EXPECT_LT(cone.formula.num_vars(), static_cast<int>(c.num_nodes()));
  // The mapping round-trips: var_to_node inverts node_to_var.
  for (std::size_t v = 0; v < cone.var_to_node.size(); ++v) {
    EXPECT_EQ(cone.node_to_var[cone.var_to_node[v]], static_cast<Var>(v));
  }
  // Every clause speaks only in mapped variables.
  for (const Clause& cl : cone.formula) {
    for (Lit l : cl) {
      EXPECT_LT(l.var(), static_cast<Var>(cone.var_to_node.size()));
    }
  }
}

TEST(EncoderTest, ObjectivesMatchSeparateEncodeAndAssert) {
  Circuit c = c17();
  NodeId g22 = c.find("22");
  ConeEncoding enc = encode_objectives(c, {{g22, true}});
  // Same clause count as the non-objective cone plus the unit.
  ConeEncoding cone = encode_cones(c, {g22});
  EXPECT_EQ(enc.formula.num_clauses(), cone.formula.num_clauses() + 1);
  EXPECT_EQ(enc.clauses_dropped, 0u);
}

TEST(EncoderTest, PlaistedGreenbaumDropsSinglePolarityClauses) {
  // A monotone AND/OR cone mentioned in one polarity loses half of its
  // Table 1 clauses under Plaisted-Greenbaum.
  Circuit c("pg");
  NodeId a = c.add_input("a"), b = c.add_input("b");
  NodeId x = c.add_input("x"), y = c.add_input("y");
  NodeId o = c.add_or(c.add_and(a, b), c.add_and(x, y));
  c.mark_output(o, "o");
  ConeEncodingOptions pg;
  pg.plaisted_greenbaum = true;
  ConeEncoding full = encode_objectives(c, {{o, true}});
  ConeEncoding half = encode_objectives(c, {{o, true}}, pg);
  EXPECT_GT(half.clauses_dropped, 0u);
  EXPECT_EQ(half.formula.num_clauses() + half.clauses_dropped,
            full.formula.num_clauses());
  // Still satisfiable, and models simulate to the objective.
  sat::Solver s;
  (void)s.add_formula(half.formula);
  ASSERT_EQ(s.solve(), sat::SolveResult::kSat);
  std::vector<bool> ins;
  for (NodeId i : c.inputs())
    ins.push_back(s.model_value(half.var_of(i)).is_true());
  EXPECT_TRUE(simulate(c, ins)[o]);
}

// --- Figure 1: example circuit + objective ---------------------------

TEST(Figure1Test, PropertyZEquals0IsSatisfiable) {
  Circuit c = example_figure1();
  NodeId z = c.find("z");
  ASSERT_NE(z, kNullNode);
  CnfFormula f = encode_objective(c, z, false);
  sat::Solver s;
  (void)s.add_formula(f);
  ASSERT_EQ(s.solve(), sat::SolveResult::kSat);
  // Extract the input pattern and confirm by simulation.
  std::vector<bool> ins;
  for (NodeId i : c.inputs()) ins.push_back(s.model_value(i).is_true());
  std::vector<bool> vals = simulate(c, ins);
  EXPECT_FALSE(vals[z]);
}

TEST(Figure1Test, SatAgreesWithExhaustiveSimulationOnBothPolarities) {
  Circuit c = example_figure1();
  NodeId z = c.find("z");
  for (bool objective : {false, true}) {
    bool reachable = false;
    for (std::uint64_t bits = 0; bits < 8; ++bits) {
      std::vector<bool> ins = {static_cast<bool>(bits & 1),
                               static_cast<bool>((bits >> 1) & 1),
                               static_cast<bool>((bits >> 2) & 1)};
      if (simulate(c, ins)[z] == objective) reachable = true;
    }
    sat::Solver s;
    (void)s.add_formula(encode_objective(c, z, objective));
    EXPECT_EQ(s.solve() == sat::SolveResult::kSat, reachable);
  }
}

}  // namespace
}  // namespace sateda::circuit
