#include <gtest/gtest.h>

#include "circuit/encoder.hpp"
#include "circuit/generators.hpp"
#include "circuit/miter.hpp"
#include "circuit/simulator.hpp"
#include "circuit/structural_hash.hpp"
#include "sat/solver.hpp"

namespace sateda::circuit {
namespace {

bool miter_differs(const Circuit& a, const Circuit& b) {
  Circuit m = build_miter(a, b);
  sat::Solver s;
  (void)s.add_formula(encode_objective(m, m.outputs()[0], true));
  return s.solve() == sat::SolveResult::kSat;
}

TEST(MiterTest, IdenticalCircuitsAreEquivalent) {
  Circuit c = c17();
  EXPECT_FALSE(miter_differs(c, c17()));
}

TEST(MiterTest, MutatedGateIsDetected) {
  Circuit a = c17();
  // Rebuild with one NAND turned into NOR.
  Circuit b("c17_mut");
  NodeId g1 = b.add_input("1");
  NodeId g2 = b.add_input("2");
  NodeId g3 = b.add_input("3");
  NodeId g6 = b.add_input("6");
  NodeId g7 = b.add_input("7");
  NodeId g10 = b.add_nand(g1, g3);
  NodeId g11 = b.add_nor(g3, g6);  // mutation: NAND -> NOR
  NodeId g16 = b.add_nand(g2, g11);
  NodeId g19 = b.add_nand(g11, g7);
  b.mark_output(b.add_nand(g10, g16), "o1");
  b.mark_output(b.add_nand(g16, g19), "o2");
  EXPECT_TRUE(miter_differs(a, b));
}

TEST(MiterTest, InterfaceMismatchThrows) {
  EXPECT_THROW(build_miter(c17(), parity_tree(4)), CircuitError);
}

TEST(MiterTest, AdderVsStrashedAdderEquivalent) {
  Circuit a = ripple_carry_adder(5);
  Circuit b = strash(a);
  EXPECT_FALSE(miter_differs(a, b));
}

TEST(AppendCopyTest, PreservesFunction) {
  Circuit src = parity_tree(5);
  Circuit dst("host");
  std::vector<NodeId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(dst.add_input());
  auto map = append_copy(dst, src, ins);
  dst.mark_output(map[src.outputs()[0]], "p");
  for (std::uint64_t bits = 0; bits < 32; ++bits) {
    std::vector<bool> pattern(5);
    for (int i = 0; i < 5; ++i) pattern[i] = (bits >> i) & 1;
    EXPECT_EQ(simulate_outputs(dst, pattern)[0],
              simulate_outputs(src, pattern)[0]);
  }
}

TEST(StrashTest, MergesDuplicateGates) {
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g1 = c.add_and(a, b);
  NodeId g2 = c.add_and(b, a);  // commuted duplicate
  NodeId g3 = c.add_and(a, b);  // literal duplicate
  c.mark_output(c.add_or(g1, c.add_or(g2, g3)), "o");
  StrashStats st;
  Circuit out = strash(c, &st);
  EXPECT_GE(st.merged, 2u);
  EXPECT_LT(out.num_gates(), c.num_gates());
}

TEST(StrashTest, FoldsConstantsAndBuffers) {
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId one = c.add_const(true);
  NodeId buf = c.add_buf(a);
  NodeId g = c.add_and(buf, one);  // AND(a, 1) == a
  c.mark_output(g, "o");
  StrashStats st;
  Circuit out = strash(c, &st);
  EXPECT_EQ(out.num_gates(), 0u) << st.summary();
  // Output is the input itself.
  EXPECT_EQ(out.outputs()[0], out.inputs()[0]);
}

TEST(StrashTest, XorOfEqualNodesIsConstantZero) {
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g = c.add_and(a, b);
  NodeId h = c.add_and(a, b);
  c.mark_output(c.add_xor(g, h), "o");
  Circuit out = strash(c);
  EXPECT_EQ(out.node(out.outputs()[0]).type, GateType::kConst0);
}

TEST(StrashTest, CommutativeGatesMergeAcrossFaninOrder) {
  // AND(a,b) vs AND(b,a) (and XOR likewise): the canonical fanin sort
  // must make them one cache entry.
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g1 = c.add_and(a, b);
  NodeId g2 = c.add_and(b, a);
  NodeId x1 = c.add_xor(g1, g2);  // folds: same node ⇒ const 0
  c.mark_output(x1, "o");
  StrashStats stats;
  Circuit out = strash(c, &stats);
  EXPECT_GE(stats.merged + stats.constants_folded, 2u);
  EXPECT_EQ(out.node(out.outputs()[0]).type, GateType::kConst0);
}

TEST(StrashTest, DuplicateFaninsDedupe) {
  // AND(a, a, b) == AND(a, b); NOR(a, a) == NOT(a).
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g1 = c.add_gate(GateType::kAnd, {a, a, b});
  NodeId g2 = c.add_and(a, b);
  NodeId n1 = c.add_nor(a, a);
  c.mark_output(g1, "g1");
  c.mark_output(g2, "g2");
  c.mark_output(n1, "n1");
  StrashStats stats;
  Circuit out = strash(c, &stats);
  // g1 and g2 land on the same node after dedup.
  EXPECT_EQ(out.outputs()[0], out.outputs()[1]);
  EXPECT_EQ(out.node(out.outputs()[2]).type, GateType::kNot);
  for (int bits = 0; bits < 4; ++bits) {
    std::vector<bool> ins{(bits & 1) != 0, (bits & 2) != 0};
    EXPECT_EQ(simulate_outputs(c, ins), simulate_outputs(out, ins));
  }
}

TEST(StrashTest, MiterPairMergeCountRegression) {
  // The adder miter's two halves share g/p/c subterms; count the merges
  // so strash regressions (missed canonicalization) are caught by
  // number, not just by function.
  Circuit m = build_miter(ripple_carry_adder(4), ripple_carry_adder(4));
  StrashStats stats;
  Circuit out = strash(m, &stats);
  // Identical halves: every gate of the second copy merges into the
  // first, and the output XORs fold to constants.
  EXPECT_GE(stats.merged, ripple_carry_adder(4).num_gates());
  EXPECT_EQ(out.node(out.outputs()[0]).type, GateType::kConst0);
}

class StrashPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrashPropertyTest, PreservesFunctionExhaustively) {
  Circuit c = random_circuit(7, 40, GetParam());
  Circuit s = strash(c);
  ASSERT_EQ(s.inputs().size(), c.inputs().size());
  ASSERT_EQ(s.outputs().size(), c.outputs().size());
  for (std::uint64_t bits = 0; bits < 128; ++bits) {
    std::vector<bool> ins(7);
    for (int i = 0; i < 7; ++i) ins[i] = (bits >> i) & 1;
    EXPECT_EQ(simulate_outputs(c, ins), simulate_outputs(s, ins))
        << "pattern " << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrashPropertyTest,
                         ::testing::Range<std::uint64_t>(100, 116));

}  // namespace
}  // namespace sateda::circuit
