/// Unit and property tests for circuit/rewrite.hpp: functional
/// equivalence under exhaustive/random simulation, constant folding,
/// De Morgan normalization, cut-based merging, and node_map contracts.
#include "circuit/rewrite.hpp"

#include <gtest/gtest.h>

#include <random>

#include "circuit/generators.hpp"
#include "circuit/miter.hpp"
#include "circuit/netlist.hpp"
#include "circuit/simulator.hpp"
#include "circuit/structural_hash.hpp"

namespace sateda::circuit {
namespace {

/// Checks outputs agree on every pattern (inputs <= 12) or 256 random
/// patterns otherwise.
void expect_equivalent(const Circuit& a, const Circuit& b) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  const std::size_t n = a.inputs().size();
  std::mt19937_64 rng(42);
  const std::uint64_t total =
      n <= 12 ? (std::uint64_t{1} << n) : 256;
  for (std::uint64_t t = 0; t < total; ++t) {
    std::uint64_t bits = n <= 12 ? t : rng();
    std::vector<bool> ins(n);
    for (std::size_t i = 0; i < n; ++i) ins[i] = (bits >> (i % 64)) & 1;
    EXPECT_EQ(simulate_outputs(a, ins), simulate_outputs(b, ins))
        << "pattern " << bits;
  }
}

TEST(RewriteTest, PreservesInterfaceAndFunction) {
  Circuit c = alu(4);
  RewriteResult r = rewrite(c);
  EXPECT_EQ(r.circuit.inputs().size(), c.inputs().size());
  EXPECT_EQ(r.circuit.outputs().size(), c.outputs().size());
  expect_equivalent(c, r.circuit);
  // Complement edges may cost one realized inverter per output; beyond
  // that the pass must not grow the netlist.
  EXPECT_LE(r.stats.gates_after,
            r.stats.gates_before + c.outputs().size());
}

TEST(RewriteTest, RandomCircuitsStayEquivalent) {
  for (std::uint64_t seed = 200; seed < 220; ++seed) {
    Circuit c = random_circuit(7, 40, seed);
    RewriteResult r = rewrite(c);
    expect_equivalent(c, r.circuit);
  }
}

TEST(RewriteTest, RandomCircuitsStayEquivalentWithoutCutMerging) {
  RewriteOptions opts;
  opts.cut_merging = false;
  for (std::uint64_t seed = 300; seed < 310; ++seed) {
    Circuit c = random_circuit(6, 30, seed);
    RewriteResult r = rewrite(c, opts);
    expect_equivalent(c, r.circuit);
  }
}

TEST(RewriteTest, ConstantAndIdentityFolding) {
  Circuit c("fold");
  NodeId a = c.add_input("a");
  NodeId zero = c.add_const(false);
  NodeId dead = c.add_and(a, zero);   // = 0
  NodeId same = c.add_or(a, a);       // = a
  NodeId contra = c.add_and(a, c.add_not(a));  // = 0
  c.mark_output(dead, "dead");
  c.mark_output(same, "same");
  c.mark_output(contra, "contra");
  RewriteResult r = rewrite(c);
  expect_equivalent(c, r.circuit);
  EXPECT_GT(r.stats.constants_folded + r.stats.identity_folds, 0u);
  // dead and contra outputs are the constant-0 node.
  EXPECT_EQ(r.circuit.node(r.circuit.outputs()[0]).type, GateType::kConst0);
  EXPECT_EQ(r.circuit.node(r.circuit.outputs()[2]).type, GateType::kConst0);
}

TEST(RewriteTest, DeMorganVariantsMerge) {
  // NAND(¬a, ¬b) == OR(a, b): complement-edge normalization maps both
  // onto one node where plain strash sees different gate types.
  Circuit c("demorgan");
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId or_ab = c.add_or(a, b);
  NodeId nand_nn = c.add_nand(c.add_not(a), c.add_not(b));
  c.mark_output(or_ab, "o1");
  c.mark_output(nand_nn, "o2");

  StrashStats ss;
  Circuit strashed = strash(c, &ss);
  EXPECT_EQ(ss.merged, 0u) << "strash alone cannot merge these";
  (void)strashed;

  RewriteResult r = rewrite(c);
  expect_equivalent(c, r.circuit);
  EXPECT_EQ(r.circuit.outputs()[0], r.circuit.outputs()[1])
      << "both outputs must point at the same rewritten node";
}

TEST(RewriteTest, CutMergingFindsFunctionalTwins) {
  // XOR(a,b) built as a gate vs as OR(AND(a,¬b), AND(¬a,b)): same
  // function over the same leaves, different local structure — only
  // the cut layer can merge them.
  Circuit c("twins");
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId x1 = c.add_xor(a, b);
  NodeId x2 =
      c.add_or(c.add_and(a, c.add_not(b)), c.add_and(c.add_not(a), b));
  c.mark_output(x1, "x1");
  c.mark_output(x2, "x2");
  RewriteResult r = rewrite(c);
  expect_equivalent(c, r.circuit);
  EXPECT_EQ(r.circuit.outputs()[0], r.circuit.outputs()[1]);
  EXPECT_GT(r.stats.cut_merges, 0u);

  RewriteOptions no_cuts;
  no_cuts.cut_merging = false;
  RewriteResult r2 = rewrite(c, no_cuts);
  expect_equivalent(c, r2.circuit);
}

TEST(RewriteTest, AdderMiterCollapsesToConstantZero) {
  // rca carry = OR(g, pc); resynthesized carry = NAND(¬g, ¬pc).  Both
  // normalize to the same complement-edge node, the carry chains merge
  // bit by bit, and the whole miter folds to constant 0 — no SAT call.
  const int n = 8;
  Circuit rca = ripple_carry_adder(n);
  Circuit nor_adder("adder_nor");
  {
    std::vector<NodeId> a(n), b(n);
    for (int i = 0; i < n; ++i)
      a[i] = nor_adder.add_input("a" + std::to_string(i));
    for (int i = 0; i < n; ++i)
      b[i] = nor_adder.add_input("b" + std::to_string(i));
    NodeId carry = nor_adder.add_input("cin");
    for (int i = 0; i < n; ++i) {
      NodeId p = nor_adder.add_xor(a[i], b[i]);
      nor_adder.mark_output(nor_adder.add_xor(p, carry),
                            "s" + std::to_string(i));
      NodeId g = nor_adder.add_and(a[i], b[i]);
      NodeId pc = nor_adder.add_and(p, carry);
      carry = nor_adder.add_nand(nor_adder.add_not(g), nor_adder.add_not(pc));
    }
    nor_adder.mark_output(carry, "cout");
  }
  Circuit miter = build_miter(rca, nor_adder);
  RewriteResult r = rewrite(strash(miter));
  EXPECT_EQ(r.circuit.node(r.circuit.outputs()[0]).type, GateType::kConst0)
      << r.stats.summary();
}

TEST(RewriteTest, NodeMapCoversKeepNodesWithCorrectPolarity) {
  Circuit c("keep");
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId inner = c.add_nor(a, b);  // likely survives only complemented
  NodeId out = c.add_and(c.add_not(inner), a);
  c.mark_output(out, "o");
  RewriteResult r = rewrite(c, {}, {inner});
  ASSERT_NE(r.node_map[inner], kNullNode);
  // The kept node must compute NOR(a,b) in the rewritten circuit.
  for (int bits = 0; bits < 4; ++bits) {
    std::vector<bool> ins{(bits & 1) != 0, (bits & 2) != 0};
    std::vector<bool> vals = simulate(r.circuit, ins);
    EXPECT_EQ(vals[r.node_map[inner]], !(ins[0] || ins[1]));
  }
  // Inputs map to inputs, in order.
  for (std::size_t i = 0; i < c.inputs().size(); ++i) {
    EXPECT_EQ(r.node_map[c.inputs()[i]], r.circuit.inputs()[i]);
  }
}

TEST(RewriteTest, StatsSummaryMentionsGateCounts) {
  Circuit c = c17();
  RewriteResult r = rewrite(c);
  const std::string s = r.stats.summary();
  EXPECT_NE(s.find(std::to_string(r.stats.gates_before)), std::string::npos);
  EXPECT_NE(s.find(std::to_string(r.stats.gates_after)), std::string::npos);
}

}  // namespace
}  // namespace sateda::circuit
