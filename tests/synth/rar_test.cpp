#include "synth/rar.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "circuit/miter.hpp"
#include "circuit/simulator.hpp"
#include "circuit/structural_hash.hpp"

namespace sateda::synth {
namespace {

using circuit::Circuit;
using circuit::NodeId;

/// Exhaustive functional equivalence for small circuits.
void expect_equivalent(const Circuit& a, const Circuit& b) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  const int n = static_cast<int>(a.inputs().size());
  ASSERT_LE(n, 16);
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    std::vector<bool> in(n);
    for (int i = 0; i < n; ++i) in[i] = (bits >> i) & 1;
    EXPECT_EQ(circuit::simulate_outputs(a, in),
              circuit::simulate_outputs(b, in))
        << "pattern " << bits;
  }
}

TEST(RarTest, AbsorptionRedundancyIsRemoved) {
  // y = a + (a·b): the AND gate is redundant; the optimum is y = a.
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId g = c.add_and(a, b);
  NodeId y = c.add_or(a, g);
  c.mark_output(y, "y");
  RarStats stats;
  Circuit out = remove_redundancies(c, {}, &stats);
  EXPECT_GE(stats.redundancies_removed, 1);
  EXPECT_EQ(out.num_gates(), 0u) << stats.summary();
  expect_equivalent(c, out);
}

TEST(RarTest, ConsensusRedundancyIsRemoved) {
  // y = a·b + ¬a·c + b·c: the consensus term b·c is redundant.
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId d = c.add_input("c");
  NodeId na = c.add_not(a);
  NodeId t1 = c.add_and(a, b);
  NodeId t2 = c.add_and(na, d);
  NodeId t3 = c.add_and(b, d);  // consensus term
  NodeId y = c.add_or(c.add_or(t1, t2), t3);
  c.mark_output(y, "y");
  RarStats stats;
  Circuit out = remove_redundancies(c, {}, &stats);
  EXPECT_GE(stats.redundancies_removed, 1) << stats.summary();
  EXPECT_LT(out.num_gates(), c.num_gates());
  expect_equivalent(c, out);
}

TEST(RarTest, IrredundantCircuitIsUntouched) {
  Circuit c = circuit::c17();
  RarStats stats;
  Circuit out = remove_redundancies(c, {}, &stats);
  EXPECT_EQ(stats.redundancies_removed, 0);
  EXPECT_EQ(out.num_gates(), circuit::strash(c).num_gates());
  expect_equivalent(c, out);
}

TEST(RarTest, SaltedCircuitShrinksBackTowardOriginal) {
  // Take the c17 core and salt it with absorption-redundant gates on
  // each output; RAR must strip the salt.
  Circuit base = circuit::c17();
  Circuit salted("salted");
  std::vector<NodeId> in;
  for (std::size_t i = 0; i < base.inputs().size(); ++i) {
    in.push_back(salted.add_input());
  }
  auto map = circuit::append_copy(salted, base, in);
  for (std::size_t i = 0; i < base.outputs().size(); ++i) {
    NodeId o = map[base.outputs()[i]];
    NodeId junk = salted.add_and(o, in[i % in.size()]);
    salted.mark_output(salted.add_or(o, junk), "y" + std::to_string(i));
  }
  RarStats stats;
  Circuit out = remove_redundancies(salted, {}, &stats);
  EXPECT_GE(stats.redundancies_removed, 2) << stats.summary();
  expect_equivalent(salted, out);
  EXPECT_LE(out.num_gates(), circuit::strash(salted).num_gates() - 2);
}

class RarPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RarPropertyTest, PreservesFunctionAndNeverGrows) {
  Circuit c = circuit::random_circuit(7, 30, GetParam());
  RarStats stats;
  Circuit out = remove_redundancies(c, {}, &stats);
  EXPECT_LE(out.num_gates(), circuit::strash(c).num_gates());
  expect_equivalent(c, out);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RarPropertyTest,
                         ::testing::Range<std::uint64_t>(1400, 1410));

}  // namespace
}  // namespace sateda::synth
