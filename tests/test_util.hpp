/// \file test_util.hpp
/// \brief Shared helpers for the sateda test suite: a brute-force SAT
///        reference oracle, model-checking utilities, and the
///        verify_unsat() proof-certified UNSAT checks.
#pragma once

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "cnf/formula.hpp"
#include "sat/drat_check.hpp"
#include "sat/portfolio.hpp"
#include "sat/preprocess.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"

namespace sateda::testing {

/// Exhaustively searches all 2^n assignments (n ≤ 25 enforced by the
/// caller's good sense).  Returns a satisfying assignment or nullopt.
inline std::optional<std::vector<bool>> brute_force_model(
    const CnfFormula& f) {
  const int n = f.num_vars();
  std::vector<bool> assignment(n, false);
  const std::uint64_t total = std::uint64_t{1} << n;
  for (std::uint64_t bits = 0; bits < total; ++bits) {
    for (int v = 0; v < n; ++v) assignment[v] = (bits >> v) & 1;
    if (f.is_satisfied_by(assignment)) return assignment;
  }
  return std::nullopt;
}

/// True iff \p f is satisfiable (brute force).
inline bool brute_force_satisfiable(const CnfFormula& f) {
  return brute_force_model(f).has_value();
}

/// Counts satisfying assignments over all 2^n total assignments.
inline std::uint64_t brute_force_count_models(const CnfFormula& f) {
  const int n = f.num_vars();
  std::vector<bool> assignment(n, false);
  const std::uint64_t total = std::uint64_t{1} << n;
  std::uint64_t count = 0;
  for (std::uint64_t bits = 0; bits < total; ++bits) {
    for (int v = 0; v < n; ++v) assignment[v] = (bits >> v) & 1;
    if (f.is_satisfied_by(assignment)) ++count;
  }
  return count;
}

/// Converts a (possibly partial) lbool model into a complete Boolean
/// assignment, defaulting unassigned variables to false.
inline std::vector<bool> complete_model(const std::vector<lbool>& model,
                                        int num_vars) {
  std::vector<bool> out(num_vars, false);
  for (int v = 0; v < num_vars && v < static_cast<int>(model.size()); ++v) {
    out[v] = model[v].is_true();
  }
  return out;
}

// --- proof-certified UNSAT ----------------------------------------------
//
// The verify_unsat() helpers re-solve a formula with DRAT tracing
// enabled and run the certificate through the independent backward
// checker (sat/drat_check.hpp).  Tests use them so every UNSAT answer
// in the suite is not merely asserted but *proved*.

/// Checks a recorded trace against \p f with the backward RUP/RAT
/// checker.  When \p assumptions are given and the trace lacks an
/// explicit empty clause (the solver ends assumption-UNSAT traces with
/// the negated conflict core), the empty clause is appended: it is RUP
/// from the core clause plus the assumption units.
inline ::testing::AssertionResult check_proof(
    const CnfFormula& f, sat::Proof proof,
    const std::vector<Lit>& assumptions = {}) {
  if (!assumptions.empty() && !proof.derives_empty_clause()) {
    proof.on_derive({});
  }
  sat::DratCheckOptions copts;
  copts.assumptions = assumptions;
  sat::DratCheckResult r = sat::check_drat(f, proof, copts);
  if (r.ok) {
    return ::testing::AssertionSuccess()
           << "DRAT proof verified (" << r.steps_checked << " checked, "
           << r.steps_skipped << " skipped)";
  }
  return ::testing::AssertionFailure()
         << "DRAT proof rejected at step " << r.failed_step << ": "
         << r.message;
}

/// Solves \p f with a proof-tracing CDCL solver, expects UNSAT, and
/// verifies the emitted DRAT certificate.  With \p assumptions the
/// proof refutes f ∧ assumptions.
inline ::testing::AssertionResult verify_unsat(
    const CnfFormula& f, const std::vector<Lit>& assumptions = {},
    sat::SolverOptions opts = {}) {
  sat::Solver solver(opts);
  sat::Proof proof;
  solver.set_proof_tracer(&proof);
  bool ok = solver.add_formula(f);
  sat::SolveResult r =
      ok ? solver.solve(assumptions) : sat::SolveResult::kUnsat;
  if (r != sat::SolveResult::kUnsat) {
    return ::testing::AssertionFailure()
           << "expected UNSAT, solver returned "
           << (r == sat::SolveResult::kSat ? "SAT" : "UNKNOWN");
  }
  return check_proof(f, std::move(proof), assumptions);
}

/// verify_unsat() through the preprocessor: the preprocessor logs its
/// simplifications into the same trace the solver then appends to, so
/// one linear proof covers the whole pipeline.
inline ::testing::AssertionResult verify_unsat_preprocessed(
    const CnfFormula& f, sat::PreprocessOptions popts = {},
    sat::SolverOptions opts = {}) {
  sat::Proof proof;
  popts.proof = &proof;
  sat::PreprocessResult pre = sat::preprocess(f, popts);
  if (!pre.unsat) {
    sat::Solver solver(opts);
    solver.set_proof_tracer(&proof);
    bool ok = solver.add_formula(pre.simplified);
    sat::SolveResult r = ok ? solver.solve() : sat::SolveResult::kUnsat;
    if (r != sat::SolveResult::kUnsat) {
      return ::testing::AssertionFailure()
             << "expected UNSAT, solver returned "
             << (r == sat::SolveResult::kSat ? "SAT" : "UNKNOWN");
    }
  }
  return check_proof(f, std::move(proof));
}

/// verify_unsat() on the parallel portfolio: each worker traces into a
/// globally ticketed SequencedProof and the stitched linear proof is
/// checked against the original formula.
inline ::testing::AssertionResult verify_unsat_portfolio(
    const CnfFormula& f, int num_workers, sat::SolverOptions opts = {},
    sat::PortfolioOptions popts = {}) {
  popts.num_workers = num_workers;
  sat::PortfolioSolver solver(opts, popts);
  solver.enable_proof();
  bool ok = solver.add_formula(f);
  sat::SolveResult r = ok ? solver.solve() : sat::SolveResult::kUnsat;
  if (r != sat::SolveResult::kUnsat) {
    return ::testing::AssertionFailure()
           << "expected UNSAT, portfolio returned "
           << (r == sat::SolveResult::kSat ? "SAT" : "UNKNOWN");
  }
  return check_proof(f, solver.stitched_proof());
}

}  // namespace sateda::testing
