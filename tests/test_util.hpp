/// \file test_util.hpp
/// \brief Shared helpers for the sateda test suite: a brute-force SAT
///        reference oracle and model-checking utilities.
#pragma once

#include <optional>
#include <vector>

#include "cnf/formula.hpp"

namespace sateda::testing {

/// Exhaustively searches all 2^n assignments (n ≤ 25 enforced by the
/// caller's good sense).  Returns a satisfying assignment or nullopt.
inline std::optional<std::vector<bool>> brute_force_model(
    const CnfFormula& f) {
  const int n = f.num_vars();
  std::vector<bool> assignment(n, false);
  const std::uint64_t total = std::uint64_t{1} << n;
  for (std::uint64_t bits = 0; bits < total; ++bits) {
    for (int v = 0; v < n; ++v) assignment[v] = (bits >> v) & 1;
    if (f.is_satisfied_by(assignment)) return assignment;
  }
  return std::nullopt;
}

/// True iff \p f is satisfiable (brute force).
inline bool brute_force_satisfiable(const CnfFormula& f) {
  return brute_force_model(f).has_value();
}

/// Counts satisfying assignments over all 2^n total assignments.
inline std::uint64_t brute_force_count_models(const CnfFormula& f) {
  const int n = f.num_vars();
  std::vector<bool> assignment(n, false);
  const std::uint64_t total = std::uint64_t{1} << n;
  std::uint64_t count = 0;
  for (std::uint64_t bits = 0; bits < total; ++bits) {
    for (int v = 0; v < n; ++v) assignment[v] = (bits >> v) & 1;
    if (f.is_satisfied_by(assignment)) ++count;
  }
  return count;
}

/// Converts a (possibly partial) lbool model into a complete Boolean
/// assignment, defaulting unassigned variables to false.
inline std::vector<bool> complete_model(const std::vector<lbool>& model,
                                        int num_vars) {
  std::vector<bool> out(num_vars, false);
  for (int v = 0; v < num_vars && v < static_cast<int>(model.size()); ++v) {
    out[v] = model[v].is_true();
  }
  return out;
}

}  // namespace sateda::testing
