#include "vectors/vectors.hpp"

#include <set>

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "circuit/simulator.hpp"

namespace sateda::vectors {
namespace {

using circuit::Circuit;
using circuit::NodeId;

TEST(VectorGenTest, AllVectorsSatisfyTheConstraint) {
  Circuit c = circuit::ripple_carry_adder(3);
  NodeId cout = c.outputs().back();
  VectorGenResult r = generate_vectors(c, cout, true, 10);
  EXPECT_EQ(r.vectors.size(), 10u);
  for (const auto& v : r.vectors) {
    EXPECT_TRUE(circuit::simulate(c, v)[cout]);
  }
}

TEST(VectorGenTest, VectorsAreDistinct) {
  Circuit c = circuit::c17();
  NodeId o = c.find("22");
  VectorGenResult r = generate_vectors(c, o, true, 16);
  std::set<std::vector<bool>> unique(r.vectors.begin(), r.vectors.end());
  EXPECT_EQ(unique.size(), r.vectors.size());
}

TEST(VectorGenTest, ExhaustsFiniteSolutionSpace) {
  // AND of 3 inputs = 1 has exactly one solution.
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId d = c.add_input("d");
  NodeId g = c.add_and(c.add_and(a, b), d);
  c.mark_output(g, "o");
  VectorGenResult r = generate_vectors(c, g, true, 100);
  EXPECT_EQ(r.vectors.size(), 1u);
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.vectors[0], (std::vector<bool>{true, true, true}));
}

TEST(VectorGenTest, UnsatisfiableConstraintYieldsNothing) {
  Circuit c;
  NodeId a = c.add_input("a");
  NodeId g = c.add_and(a, c.add_not(a));
  c.mark_output(g, "o");
  VectorGenResult r = generate_vectors(c, g, true, 5);
  EXPECT_TRUE(r.vectors.empty());
  EXPECT_TRUE(r.exhausted);
}

TEST(VectorGenTest, CubeBlockingCoversSpaceFaster) {
  // Wide OR = 1: cube blocking with the §5 layer should reach the
  // requested count with one SAT call per vector and exhaust the space
  // in far fewer calls than there are solutions.
  Circuit c;
  std::vector<NodeId> ins;
  for (int i = 0; i < 10; ++i) ins.push_back(c.add_input());
  NodeId acc = ins[0];
  for (int i = 1; i < 10; ++i) acc = c.add_or(acc, ins[i]);
  c.mark_output(acc, "o");
  VectorGenOptions cube_opts;
  VectorGenResult r = generate_vectors(c, acc, true, 64, cube_opts);
  for (const auto& v : r.vectors) {
    EXPECT_TRUE(circuit::simulate(c, v)[acc]);
  }
  std::set<std::vector<bool>> unique(r.vectors.begin(), r.vectors.end());
  EXPECT_EQ(unique.size(), r.vectors.size());
}

TEST(VectorGenTest, FullVectorBlockingAlsoWorks) {
  Circuit c = circuit::parity_tree(5);
  NodeId o = c.outputs()[0];
  VectorGenOptions opts;
  opts.block_cubes = false;
  opts.use_structural_layer = false;
  // Parity=1 has exactly 16 solutions over 5 inputs.
  VectorGenResult r = generate_vectors(c, o, true, 100, opts);
  EXPECT_EQ(r.vectors.size(), 16u);
  EXPECT_TRUE(r.exhausted);
  for (const auto& v : r.vectors) {
    EXPECT_TRUE(circuit::simulate(c, v)[o]);
  }
}

TEST(VectorGenTest, BothPolaritiesPartitionTheSpace) {
  Circuit c = circuit::parity_tree(4);
  NodeId o = c.outputs()[0];
  VectorGenOptions opts;
  opts.block_cubes = false;
  opts.use_structural_layer = false;
  VectorGenResult r1 = generate_vectors(c, o, true, 100, opts);
  VectorGenResult r0 = generate_vectors(c, o, false, 100, opts);
  EXPECT_EQ(r1.vectors.size() + r0.vectors.size(), 16u);
}

}  // namespace
}  // namespace sateda::vectors
