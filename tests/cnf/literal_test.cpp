#include "cnf/literal.hpp"

#include <gtest/gtest.h>

namespace sateda {
namespace {

TEST(LiteralTest, EncodingRoundTrips) {
  for (Var v = 0; v < 100; ++v) {
    for (bool negative : {false, true}) {
      Lit l(v, negative);
      EXPECT_EQ(l.var(), v);
      EXPECT_EQ(l.negative(), negative);
      EXPECT_EQ(Lit::from_index(l.index()), l);
    }
  }
}

TEST(LiteralTest, ComplementFlipsPolarityOnly) {
  Lit l = pos(7);
  EXPECT_EQ((~l).var(), 7);
  EXPECT_TRUE((~l).negative());
  EXPECT_EQ(~~l, l);
}

TEST(LiteralTest, XorWithBoolFlipsConditionally) {
  Lit l = pos(3);
  EXPECT_EQ(l ^ false, l);
  EXPECT_EQ(l ^ true, ~l);
}

TEST(LiteralTest, IndexIsDense) {
  EXPECT_EQ(pos(0).index(), 0);
  EXPECT_EQ(neg(0).index(), 1);
  EXPECT_EQ(pos(1).index(), 2);
  EXPECT_EQ(neg(1).index(), 3);
}

TEST(LiteralTest, UndefLiteralIsNotDefined) {
  EXPECT_FALSE(kUndefLit.is_defined());
  EXPECT_TRUE(pos(0).is_defined());
}

TEST(LiteralTest, OrderingGroupsByVariable) {
  EXPECT_LT(pos(0), neg(0));
  EXPECT_LT(neg(0), pos(1));
}

TEST(LiteralTest, ToStringUsesDimacsConvention) {
  EXPECT_EQ(to_string(pos(0)), "1");
  EXPECT_EQ(to_string(neg(2)), "-3");
}

TEST(LboolTest, TernaryLogicBasics) {
  EXPECT_TRUE(l_true.is_true());
  EXPECT_TRUE(l_false.is_false());
  EXPECT_TRUE(l_undef.is_undef());
  EXPECT_EQ(~l_true, l_false);
  EXPECT_EQ(~l_false, l_true);
  EXPECT_EQ(~l_undef, l_undef);
}

TEST(LboolTest, XorWithBool) {
  EXPECT_EQ(l_true ^ true, l_false);
  EXPECT_EQ(l_true ^ false, l_true);
  EXPECT_EQ(l_false ^ true, l_true);
  EXPECT_EQ(l_undef ^ true, l_undef);
}

TEST(LboolTest, UndefComparesEqualToUndefOnly) {
  EXPECT_EQ(l_undef, l_undef);
  EXPECT_FALSE(l_undef == l_true);
  EXPECT_FALSE(l_undef == l_false);
}

}  // namespace
}  // namespace sateda
