#include "cnf/formula.hpp"

#include <gtest/gtest.h>

#include "cnf/dimacs.hpp"

namespace sateda {
namespace {

TEST(ClauseTest, NormalizeSortsAndDeduplicates) {
  Clause c({pos(3), pos(1), pos(3), neg(2)});
  EXPECT_TRUE(c.normalize());
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], pos(1));
  EXPECT_EQ(c[1], neg(2));
  EXPECT_EQ(c[2], pos(3));
}

TEST(ClauseTest, NormalizeDetectsTautology) {
  Clause c({pos(1), neg(1)});
  EXPECT_FALSE(c.normalize());
}

TEST(ClauseTest, ContainsFindsLiteral) {
  Clause c({pos(0), neg(5)});
  EXPECT_TRUE(c.contains(pos(0)));
  EXPECT_TRUE(c.contains(neg(5)));
  EXPECT_FALSE(c.contains(pos(5)));
}

TEST(FormulaTest, GrowsVariableSpaceFromClauses) {
  CnfFormula f;
  f.add_clause({pos(4), neg(9)});
  EXPECT_EQ(f.num_vars(), 10);
  EXPECT_EQ(f.num_clauses(), 1u);
  EXPECT_EQ(f.num_literals(), 2u);
}

TEST(FormulaTest, EvaluateCompleteAssignment) {
  CnfFormula f(2);
  f.add_binary(pos(0), pos(1));
  std::vector<lbool> a = {l_false, l_true};
  EXPECT_EQ(f.evaluate(a), l_true);
  a[1] = l_false;
  EXPECT_EQ(f.evaluate(a), l_false);
}

TEST(FormulaTest, EvaluatePartialAssignmentIsUndef) {
  CnfFormula f(2);
  f.add_binary(pos(0), pos(1));
  std::vector<lbool> a = {l_false, l_undef};
  EXPECT_EQ(f.evaluate(a), l_undef);
}

TEST(FormulaTest, IsSatisfiedByBoolVector) {
  CnfFormula f(3);
  f.add_ternary(pos(0), neg(1), pos(2));
  EXPECT_TRUE(f.is_satisfied_by({true, true, false}));
  EXPECT_FALSE(f.is_satisfied_by({false, true, false}));
}

TEST(FormulaTest, AppendConjoinsFormulas) {
  CnfFormula a(2);
  a.add_binary(pos(0), pos(1));
  CnfFormula b(3);
  b.add_unit(neg(2));
  a.append(b);
  EXPECT_EQ(a.num_vars(), 3);
  EXPECT_EQ(a.num_clauses(), 2u);
}

TEST(FormulaTest, NormalizeDropsTautologies) {
  CnfFormula f(2);
  f.add_binary(pos(0), neg(0));
  f.add_binary(pos(0), pos(1));
  EXPECT_EQ(f.normalize(), 1u);
  EXPECT_EQ(f.num_clauses(), 1u);
}

TEST(DimacsTest, RoundTrip) {
  CnfFormula f(3);
  f.add_ternary(pos(0), neg(1), pos(2));
  f.add_unit(neg(2));
  CnfFormula g = read_dimacs_string(to_dimacs_string(f));
  EXPECT_EQ(g.num_vars(), 3);
  ASSERT_EQ(g.num_clauses(), 2u);
  EXPECT_EQ(g.clause(0)[1], neg(1));
  EXPECT_EQ(g.clause(1)[0], neg(2));
}

TEST(DimacsTest, ParsesCommentsAndHeader) {
  CnfFormula f = read_dimacs_string(
      "c a comment\n"
      "p cnf 4 2\n"
      "1 -2 0\n"
      "3 4 0\n");
  EXPECT_EQ(f.num_vars(), 4);
  EXPECT_EQ(f.num_clauses(), 2u);
}

TEST(DimacsTest, MultipleClausesPerLine) {
  CnfFormula f = read_dimacs_string("p cnf 2 2\n1 0 -2 0\n");
  EXPECT_EQ(f.num_clauses(), 2u);
}

TEST(DimacsTest, RejectsUnterminatedClause) {
  EXPECT_THROW(read_dimacs_string("p cnf 2 1\n1 -2\n"), DimacsError);
}

TEST(DimacsTest, RejectsGarbageHeader) {
  EXPECT_THROW(read_dimacs_string("p dnf 2 1\n1 0\n"), DimacsError);
}

TEST(DimacsTest, RejectsNonNumericToken) {
  EXPECT_THROW(read_dimacs_string("p cnf 2 1\n1 x 0\n"), DimacsError);
}

}  // namespace
}  // namespace sateda
