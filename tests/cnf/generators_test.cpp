#include "cnf/generators.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace sateda {
namespace {

TEST(GeneratorsTest, RandomKsatHasRequestedShape) {
  CnfFormula f = random_ksat(20, 50, 3, 42);
  EXPECT_EQ(f.num_vars(), 20);
  EXPECT_EQ(f.num_clauses(), 50u);
  for (const Clause& c : f) {
    EXPECT_EQ(c.size(), 3u);
    // Literals mention distinct variables.
    EXPECT_NE(c[0].var(), c[1].var());
    EXPECT_NE(c[1].var(), c[2].var());
    EXPECT_NE(c[0].var(), c[2].var());
  }
}

TEST(GeneratorsTest, RandomKsatIsDeterministicInSeed) {
  CnfFormula a = random_ksat(15, 30, 3, 7);
  CnfFormula b = random_ksat(15, 30, 3, 7);
  ASSERT_EQ(a.num_clauses(), b.num_clauses());
  for (std::size_t i = 0; i < a.num_clauses(); ++i) {
    ASSERT_EQ(a.clause(i).size(), b.clause(i).size());
    for (std::size_t j = 0; j < a.clause(i).size(); ++j) {
      EXPECT_EQ(a.clause(i)[j], b.clause(i)[j]);
    }
  }
  CnfFormula c = random_ksat(15, 30, 3, 8);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.num_clauses() && !any_diff; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (a.clause(i)[j] != c.clause(i)[j]) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorsTest, PigeonholeIsUnsatisfiable) {
  for (int holes : {1, 2, 3, 4}) {
    CnfFormula f = pigeonhole(holes);
    EXPECT_FALSE(testing::brute_force_satisfiable(f))
        << "PHP with " << holes << " holes must be UNSAT";
  }
}

TEST(GeneratorsTest, PigeonholeShape) {
  CnfFormula f = pigeonhole(3);
  EXPECT_EQ(f.num_vars(), 4 * 3);
  // 4 at-least-one clauses + 3 * C(4,2)=6 pairwise clauses.
  EXPECT_EQ(f.num_clauses(), 4u + 3u * 6u);
}

TEST(GeneratorsTest, EquivalenceChainConsistentIsSat) {
  CnfFormula f = equivalence_chain(8, /*inconsistent=*/false, 0, 1);
  auto model = testing::brute_force_model(f);
  ASSERT_TRUE(model.has_value());
  // All chained variables take the same value.  (The optional-access
  // dataflow model cannot see through ASSERT_TRUE.)
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  for (int v = 1; v < 8; ++v) EXPECT_EQ((*model)[v], (*model)[0]);
}

TEST(GeneratorsTest, EquivalenceChainInconsistentIsUnsat) {
  CnfFormula f = equivalence_chain(8, /*inconsistent=*/true, 0, 1);
  EXPECT_FALSE(testing::brute_force_satisfiable(f));
}

TEST(GeneratorsTest, ParityChainCountsModels) {
  // x0 ⊕ x1 ⊕ x2 = 1 has exactly 4 solutions over the 3 inputs; helper
  // variables are functionally determined, so the model count is 4.
  CnfFormula f = parity_chain(3, true);
  EXPECT_EQ(testing::brute_force_count_models(f), 4u);
}

TEST(GeneratorsTest, ParityChainBothTargetsPartitionSpace) {
  CnfFormula f1 = parity_chain(4, true);
  CnfFormula f0 = parity_chain(4, false);
  EXPECT_EQ(testing::brute_force_count_models(f1) +
                testing::brute_force_count_models(f0),
            16u);
}

TEST(GeneratorsTest, PlantedKsatIsAlwaysSatisfiable) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    CnfFormula f = planted_ksat(12, 80, 3, seed);
    EXPECT_TRUE(testing::brute_force_satisfiable(f)) << "seed " << seed;
  }
}

TEST(GeneratorsTest, GraphColoringTriangleNeedsThreeColors) {
  // A dense-enough random graph on 3 nodes with p=1 is a triangle.
  CnfFormula two = random_graph_coloring(3, 1.0, 2, 3);
  EXPECT_FALSE(testing::brute_force_satisfiable(two));
  CnfFormula three = random_graph_coloring(3, 1.0, 3, 3);
  EXPECT_TRUE(testing::brute_force_satisfiable(three));
}

}  // namespace
}  // namespace sateda
