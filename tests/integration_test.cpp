/// Cross-module integration tests: complete flows chaining several
/// libraries, the way a downstream EDA tool would.
#include <gtest/gtest.h>

#include "atpg/engine.hpp"
#include "bmc/bmc.hpp"
#include "circuit/bench_io.hpp"
#include "circuit/encoder.hpp"
#include "circuit/generators.hpp"
#include "circuit/miter.hpp"
#include "circuit/simulator.hpp"
#include "equiv/cec.hpp"
#include "sat/preprocess.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"
#include "synth/rar.hpp"
#include "vectors/vectors.hpp"

namespace sateda {
namespace {

/// Flow: netlist text → parse → optimize (RAR) → re-verify (CEC) →
/// generate tests (ATPG) for the optimized design.
TEST(IntegrationTest, ParseOptimizeVerifyTest) {
  // A mux with a redundant consensus term, as a BENCH netlist.
  const char* netlist =
      "INPUT(sel)\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
      "nsel = NOT(sel)\n"
      "ta = AND(sel, a)\n"
      "tb = AND(nsel, b)\n"
      "mux = OR(ta, tb)\n"
      "cons = AND(a, b)\n"
      "y = OR(mux, cons)\n";
  circuit::Circuit c = circuit::read_bench_string(netlist, "muxr");
  synth::RarStats stats;
  circuit::Circuit optimized = synth::remove_redundancies(c, {}, &stats);
  EXPECT_GE(stats.redundancies_removed, 1);
  // The optimizer's output must check equivalent to the original.
  equiv::CecResult cec = equiv::check_equivalence(c, optimized);
  EXPECT_EQ(cec.verdict, equiv::CecVerdict::kEquivalent);
  // And the optimized design must still be fully testable.
  atpg::AtpgResult tests = atpg::run_atpg(optimized);
  EXPECT_EQ(tests.stats.aborted, 0);
  EXPECT_DOUBLE_EQ(tests.stats.test_efficiency(), 1.0);
}

/// Flow: proof-logged equivalence proof, independently checked.
TEST(IntegrationTest, CheckedEquivalenceProof) {
  circuit::Circuit a = circuit::ripple_carry_adder(4);
  circuit::Circuit m = circuit::build_miter(a, circuit::ripple_carry_adder(4));
  CnfFormula f = circuit::encode_circuit(m);
  f.add_unit(pos(m.outputs()[0]));
  sat::Proof proof;
  sat::Solver solver;
  solver.set_proof_logger(&proof);
  (void)solver.add_formula(f);
  ASSERT_EQ(solver.solve(), sat::SolveResult::kUnsat);
  sat::ProofCheckResult check = sat::check_rup_proof(f, proof);
  EXPECT_TRUE(check.valid) << check.message;
  EXPECT_TRUE(check.refutation);
}

/// Flow: preprocess a circuit instance, solve, lift the model, check
/// it against the circuit by simulation.
TEST(IntegrationTest, PreprocessedCircuitObjective) {
  circuit::Circuit c = circuit::alu(4);
  circuit::NodeId target = c.outputs()[2];
  CnfFormula f = circuit::encode_objective(c, target, true);
  sat::PreprocessResult pre = sat::preprocess(f);
  ASSERT_FALSE(pre.unsat);
  sat::Solver solver;
  (void)solver.add_formula(pre.simplified);
  solver.ensure_var(f.num_vars() - 1);
  ASSERT_EQ(solver.solve(), sat::SolveResult::kSat);
  std::vector<lbool> model = pre.reconstruct_model(solver.model());
  std::vector<bool> inputs;
  for (circuit::NodeId i : c.inputs()) {
    inputs.push_back(model[i].is_true());
  }
  EXPECT_TRUE(circuit::simulate(c, inputs)[target]);
}

/// Flow: the test vectors from ATPG drive the functional-vector
/// generator's constraint, tying the two stimulus paths together.
TEST(IntegrationTest, AtpgPatternsSatisfyVectorConstraints) {
  circuit::Circuit c = circuit::c17();
  atpg::AtpgResult r = atpg::run_atpg(c);
  ASSERT_FALSE(r.tests.empty());
  // Each ATPG pattern produces definite outputs; the vector generator
  // asked for the same output value must accept the pattern's cube.
  for (const auto& t : r.tests) {
    auto vals = circuit::simulate(c, t);
    circuit::NodeId o22 = c.find("22");
    vectors::VectorGenResult vg =
        vectors::generate_vectors(c, o22, vals[o22], 1);
    ASSERT_EQ(vg.vectors.size(), 1u);
    EXPECT_EQ(circuit::simulate(c, vg.vectors[0])[o22], vals[o22]);
  }
}

/// Flow: BMC counterexample on a sequential circuit whose
/// combinational core came through BENCH I/O.
TEST(IntegrationTest, BmcOnParsedCore) {
  bmc::SequentialCircuit m = bmc::shift_register_machine(3);
  // Round-trip the core through the BENCH format.
  circuit::Circuit parsed =
      circuit::read_bench_string(circuit::to_bench_string(m.comb), "core");
  ASSERT_EQ(parsed.num_gates(), m.comb.num_gates());
  bmc::BmcResult r = bmc::bounded_model_check(m);
  ASSERT_EQ(r.verdict, bmc::BmcVerdict::kCounterexample);
  EXPECT_TRUE(replay_reaches_bad(m, r.trace));
}

}  // namespace
}  // namespace sateda
