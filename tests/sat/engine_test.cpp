/// \file engine_test.cpp
/// \brief Cross-engine conformance suite: every backend reachable
///        through the SatEngine interface must honour the same
///        contract (verdicts, models, assumption handling, trivial
///        UNSAT on add_clause).  Runs the identical test body against
///        cdcl, dpll, wsat and the 2-worker portfolio via factories.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "cnf/generators.hpp"
#include "sat/engine.hpp"
#include "sat/portfolio.hpp"

namespace {

using namespace sateda;
using sat::SolveResult;

struct EngineCase {
  std::string name;
  bool complete;  ///< can the engine answer kUnsat by search?
};

class EngineConformanceTest : public testing::TestWithParam<EngineCase> {
 protected:
  std::unique_ptr<sat::SatEngine> make(sat::SolverOptions opts = {}) const {
    return sat::engine_factory_by_name(GetParam().name, /*num_workers=*/2)(
        opts);
  }
};

TEST_P(EngineConformanceTest, ReportsItsName) {
  auto e = make();
  EXPECT_FALSE(e->name().empty());
}

TEST_P(EngineConformanceTest, TrivialSat) {
  auto e = make();
  Var a = e->new_var();
  ASSERT_TRUE(e->add_clause({pos(a)}));
  ASSERT_EQ(e->solve(), SolveResult::kSat);
  EXPECT_EQ(e->model_value(a), l_true);
}

TEST_P(EngineConformanceTest, ModelSatisfiesFormula) {
  CnfFormula f = random_3sat(25, 3.0, 123);  // under-constrained: SAT
  auto e = make();
  ASSERT_TRUE(e->add_formula(f));
  ASSERT_EQ(e->solve(), SolveResult::kSat);
  std::vector<bool> bits(f.num_vars());
  for (Var v = 0; v < f.num_vars(); ++v) bits[v] = e->model_value(v).is_true();
  EXPECT_TRUE(f.is_satisfied_by(bits));
}

TEST_P(EngineConformanceTest, EmptyClauseFailsOnAdd) {
  auto e = make();
  EXPECT_FALSE(e->add_clause(std::vector<Lit>{}));
  EXPECT_FALSE(e->okay());
  EXPECT_EQ(e->solve(), SolveResult::kUnsat);
}

TEST_P(EngineConformanceTest, ContradictoryUnitsRefuted) {
  if (!GetParam().complete) GTEST_SKIP() << "incomplete engine";
  auto e = make();
  Var a = e->new_var();
  ASSERT_TRUE(e->add_clause({pos(a)}));
  // Detecting the contradiction at add time is permitted but not
  // required (CDCL propagates eagerly; DPLL defers to solve).
  const bool detected = !e->add_clause({neg(a)});
  if (detected) {
    EXPECT_FALSE(e->okay());
  }
  EXPECT_EQ(e->solve(), SolveResult::kUnsat);
}

TEST_P(EngineConformanceTest, CompleteEnginesRefutePigeonhole) {
  if (!GetParam().complete) GTEST_SKIP() << "incomplete engine";
  auto e = make();
  ASSERT_TRUE(e->add_formula(pigeonhole(4)));
  EXPECT_EQ(e->solve(), SolveResult::kUnsat);
}

TEST_P(EngineConformanceTest, AssumptionsRestrictModels) {
  auto e = make();
  Var a = e->new_var();
  Var b = e->new_var();
  ASSERT_TRUE(e->add_clause({pos(a), pos(b)}));
  ASSERT_EQ(e->solve({neg(a)}), SolveResult::kSat);
  EXPECT_EQ(e->model_value(a), l_false);
  EXPECT_EQ(e->model_value(b), l_true);
  // Assumptions are not clauses: the unassumed problem stays SAT.
  ASSERT_EQ(e->solve(), SolveResult::kSat);
}

TEST_P(EngineConformanceTest, UnsatAssumptionsYieldCoreSubset) {
  if (!GetParam().complete) GTEST_SKIP() << "incomplete engine";
  auto e = make();
  Var a = e->new_var();
  Var b = e->new_var();
  Var c = e->new_var();
  ASSERT_TRUE(e->add_clause({neg(a), neg(b)}));
  std::vector<Lit> assumptions = {pos(a), pos(b), pos(c)};
  ASSERT_EQ(e->solve(assumptions), SolveResult::kUnsat);
  for (Lit l : e->conflict_core()) {
    EXPECT_TRUE(std::find(assumptions.begin(), assumptions.end(), l) !=
                assumptions.end())
        << "core literal not among assumptions";
  }
  // The clause set itself is satisfiable, so the state must recover.
  EXPECT_TRUE(e->okay());
  EXPECT_EQ(e->solve(), SolveResult::kSat);
}

TEST_P(EngineConformanceTest, ModelValueOutOfRangeIsUndef) {
  auto e = make();
  Var a = e->new_var();
  ASSERT_TRUE(e->add_clause({pos(a)}));
  ASSERT_EQ(e->solve(), SolveResult::kSat);
  EXPECT_EQ(e->model_value(static_cast<Var>(999)), l_undef);
}

TEST_P(EngineConformanceTest, StatsCountSolveCalls) {
  auto e = make();
  Var a = e->new_var();
  ASSERT_TRUE(e->add_clause({pos(a)}));
  ASSERT_EQ(e->solve(), SolveResult::kSat);
  ASSERT_EQ(e->solve(), SolveResult::kSat);
  EXPECT_GE(e->stats().solve_calls, 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineConformanceTest,
    testing::Values(EngineCase{"cdcl", true}, EngineCase{"dpll", true},
                    EngineCase{"wsat", false}, EngineCase{"portfolio", true}),
    [](const testing::TestParamInfo<EngineCase>& info) {
      return info.param.name;
    });

TEST(EngineFactoryTest, UnknownNameThrows) {
  EXPECT_THROW(sat::engine_factory_by_name("nope"), std::invalid_argument);
}

TEST(EngineFactoryTest, EmptyFactoryYieldsCdcl) {
  auto e = sat::make_engine({}, sat::SolverOptions{});
  EXPECT_EQ(e->name(), "cdcl");
}

TEST(EngineFactoryTest, NamedFactoriesYieldMatchingEngines) {
  EXPECT_EQ(sat::engine_factory_by_name("cdcl")(sat::SolverOptions{})->name(),
            "cdcl");
  EXPECT_EQ(sat::engine_factory_by_name("dpll")(sat::SolverOptions{})->name(),
            "dpll");
  EXPECT_EQ(sat::engine_factory_by_name("walksat")(sat::SolverOptions{})->name(),
            "walksat");
  EXPECT_EQ(
      sat::engine_factory_by_name("portfolio", 2)(sat::SolverOptions{})->name(),
      "portfolio");
}

}  // namespace
