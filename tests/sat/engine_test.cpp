/// \file engine_test.cpp
/// \brief Cross-engine conformance suite: every backend reachable
///        through the SatEngine interface must honour the same
///        contract (verdicts, models, assumption handling, trivial
///        UNSAT on add_clause).  Runs the identical test body against
///        cdcl, dpll, wsat and the 2-worker portfolio via factories.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "cnf/generators.hpp"
#include "sat/engine.hpp"
#include "sat/portfolio.hpp"

namespace {

using namespace sateda;
using sat::SolveResult;

struct EngineCase {
  std::string name;
  bool complete;  ///< can the engine answer kUnsat by search?
};

class EngineConformanceTest : public testing::TestWithParam<EngineCase> {
 protected:
  std::unique_ptr<sat::SatEngine> make(sat::SolverOptions opts = {}) const {
    return sat::EngineSpec::parse(GetParam().name).with_workers(2).build(opts);
  }
};

TEST_P(EngineConformanceTest, ReportsItsName) {
  auto e = make();
  EXPECT_FALSE(e->name().empty());
}

TEST_P(EngineConformanceTest, TrivialSat) {
  auto e = make();
  Var a = e->new_var();
  ASSERT_TRUE(e->add_clause({pos(a)}));
  ASSERT_EQ(e->solve(), SolveResult::kSat);
  EXPECT_EQ(e->model_value(a), l_true);
}

TEST_P(EngineConformanceTest, ModelSatisfiesFormula) {
  CnfFormula f = random_3sat(25, 3.0, 123);  // under-constrained: SAT
  auto e = make();
  ASSERT_TRUE(e->add_formula(f));
  ASSERT_EQ(e->solve(), SolveResult::kSat);
  std::vector<bool> bits(f.num_vars());
  for (Var v = 0; v < f.num_vars(); ++v) bits[v] = e->model_value(v).is_true();
  EXPECT_TRUE(f.is_satisfied_by(bits));
}

TEST_P(EngineConformanceTest, EmptyClauseFailsOnAdd) {
  auto e = make();
  EXPECT_FALSE(e->add_clause(std::vector<Lit>{}));
  EXPECT_FALSE(e->okay());
  EXPECT_EQ(e->solve(), SolveResult::kUnsat);
}

TEST_P(EngineConformanceTest, ContradictoryUnitsRefuted) {
  if (!GetParam().complete) GTEST_SKIP() << "incomplete engine";
  auto e = make();
  Var a = e->new_var();
  ASSERT_TRUE(e->add_clause({pos(a)}));
  // Detecting the contradiction at add time is permitted but not
  // required (CDCL propagates eagerly; DPLL defers to solve).
  const bool detected = !e->add_clause({neg(a)});
  if (detected) {
    EXPECT_FALSE(e->okay());
  }
  EXPECT_EQ(e->solve(), SolveResult::kUnsat);
}

TEST_P(EngineConformanceTest, CompleteEnginesRefutePigeonhole) {
  if (!GetParam().complete) GTEST_SKIP() << "incomplete engine";
  auto e = make();
  ASSERT_TRUE(e->add_formula(pigeonhole(4)));
  EXPECT_EQ(e->solve(), SolveResult::kUnsat);
}

TEST_P(EngineConformanceTest, AssumptionsRestrictModels) {
  auto e = make();
  Var a = e->new_var();
  Var b = e->new_var();
  ASSERT_TRUE(e->add_clause({pos(a), pos(b)}));
  ASSERT_EQ(e->solve({neg(a)}), SolveResult::kSat);
  EXPECT_EQ(e->model_value(a), l_false);
  EXPECT_EQ(e->model_value(b), l_true);
  // Assumptions are not clauses: the unassumed problem stays SAT.
  ASSERT_EQ(e->solve(), SolveResult::kSat);
}

TEST_P(EngineConformanceTest, UnsatAssumptionsYieldCoreSubset) {
  if (!GetParam().complete) GTEST_SKIP() << "incomplete engine";
  auto e = make();
  Var a = e->new_var();
  Var b = e->new_var();
  Var c = e->new_var();
  ASSERT_TRUE(e->add_clause({neg(a), neg(b)}));
  std::vector<Lit> assumptions = {pos(a), pos(b), pos(c)};
  ASSERT_EQ(e->solve(assumptions), SolveResult::kUnsat);
  for (Lit l : e->conflict_core()) {
    EXPECT_TRUE(std::find(assumptions.begin(), assumptions.end(), l) !=
                assumptions.end())
        << "core literal not among assumptions";
  }
  // The clause set itself is satisfiable, so the state must recover.
  EXPECT_TRUE(e->okay());
  EXPECT_EQ(e->solve(), SolveResult::kSat);
}

TEST_P(EngineConformanceTest, ModelValueOutOfRangeIsUndef) {
  auto e = make();
  Var a = e->new_var();
  ASSERT_TRUE(e->add_clause({pos(a)}));
  ASSERT_EQ(e->solve(), SolveResult::kSat);
  EXPECT_EQ(e->model_value(static_cast<Var>(999)), l_undef);
}

TEST_P(EngineConformanceTest, StatsCountSolveCalls) {
  auto e = make();
  Var a = e->new_var();
  ASSERT_TRUE(e->add_clause({pos(a)}));
  ASSERT_EQ(e->solve(), SolveResult::kSat);
  ASSERT_EQ(e->solve(), SolveResult::kSat);
  EXPECT_GE(e->stats().solve_calls, 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineConformanceTest,
    testing::Values(EngineCase{"cdcl", true}, EngineCase{"dpll", true},
                    EngineCase{"wsat", false}, EngineCase{"portfolio", true},
                    EngineCase{"cube", true}),
    [](const testing::TestParamInfo<EngineCase>& info) {
      return info.param.name;
    });

using sat::EngineSpec;

TEST(EngineSpecTest, DefaultIsCdcl) {
  EngineSpec s;
  EXPECT_EQ(s.backend(), EngineSpec::Backend::kCdcl);
  EXPECT_EQ(s.to_string(), "cdcl");
  EXPECT_EQ(s.build(sat::SolverOptions{})->name(), "cdcl");
}

TEST(EngineSpecTest, ParseToStringRoundTrips) {
  for (const char* text :
       {"cdcl", "dpll", "walksat", "portfolio", "portfolio:4",
        "portfolio:4:det", "portfolio:0:race", "cube", "cube:8"}) {
    const EngineSpec s = EngineSpec::parse(text);
    EXPECT_EQ(EngineSpec::parse(s.to_string()), s) << text;
  }
}

TEST(EngineSpecTest, WsatAliasCanonicalizesToWalksat) {
  EXPECT_EQ(EngineSpec::parse("wsat").to_string(), "walksat");
  EXPECT_EQ(EngineSpec::parse("wsat"), EngineSpec::parse("walksat"));
}

TEST(EngineSpecTest, PortfolioFieldsParse) {
  const EngineSpec s = EngineSpec::parse("portfolio:8:det");
  EXPECT_EQ(s.backend(), EngineSpec::Backend::kPortfolio);
  EXPECT_EQ(s.num_workers(), 8);
  EXPECT_TRUE(s.deterministic());
}

TEST(EngineSpecTest, WithersOverrideParsedFields) {
  EngineSpec s = EngineSpec::parse("portfolio:2");
  s.with_workers(6).with_deterministic(true);
  EXPECT_EQ(s.to_string(), "portfolio:6:det");
}

TEST(EngineSpecTest, InvalidSpecsThrow) {
  EXPECT_THROW(EngineSpec::parse("nope"), std::invalid_argument);
  EXPECT_THROW(EngineSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(EngineSpec::parse("portfolio:x"), std::invalid_argument);
  EXPECT_THROW(EngineSpec::parse("portfolio:2:fancy"), std::invalid_argument);
  EXPECT_THROW(EngineSpec::parse("cdcl:2"), std::invalid_argument);
  EXPECT_THROW(EngineSpec::parse("cube:det"), std::invalid_argument);
  EXPECT_THROW(EngineSpec::parse("cube:2:2"), std::invalid_argument);
}

TEST(EngineSpecTest, BuildsTheNamedBackends) {
  EXPECT_EQ(EngineSpec("cdcl").build()->name(), "cdcl");
  EXPECT_EQ(EngineSpec("dpll").build()->name(), "dpll");
  EXPECT_EQ(EngineSpec("walksat").build()->name(), "walksat");
  EXPECT_EQ(EngineSpec("portfolio:2").build()->name(), "portfolio");
  EXPECT_EQ(EngineSpec("cube:2").build()->name(), "cube");
}

TEST(EngineSpecTest, CustomFactoryWraps) {
  EngineSpec s(sat::dpll_engine_factory());
  EXPECT_TRUE(s.is_custom());
  EXPECT_EQ(s.to_string(), "custom");
  EXPECT_EQ(s.build()->name(), "dpll");
}

TEST(EngineSpecTest, FactoryClosureBuildsSameEngine) {
  const sat::EngineFactory f = EngineSpec::parse("dpll").factory();
  EXPECT_EQ(f(sat::SolverOptions{})->name(), "dpll");
}

TEST(EngineFactoryTest, EmptyFactoryYieldsCdcl) {
  auto e = sat::make_engine(sat::EngineFactory{}, sat::SolverOptions{});
  EXPECT_EQ(e->name(), "cdcl");
}

TEST(EngineFactoryTest, SpecOverloadBuildsDescribedEngine) {
  auto e = sat::make_engine(EngineSpec::parse("portfolio:2"),
                            sat::SolverOptions{});
  EXPECT_EQ(e->name(), "portfolio");
}

// The deprecated shim must keep resolving names until its removal.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(EngineFactoryTest, DeprecatedNameShimStillResolves) {
  EXPECT_EQ(sat::engine_factory_by_name("cdcl")(sat::SolverOptions{})->name(),
            "cdcl");
  EXPECT_EQ(
      sat::engine_factory_by_name("portfolio", 2)(sat::SolverOptions{})->name(),
      "portfolio");
  EXPECT_THROW(sat::engine_factory_by_name("nope"), std::invalid_argument);
}
#pragma GCC diagnostic pop

}  // namespace
