/// \file session_test.cpp
/// \brief SolverSession contract tests: clause epochs, per-query
///        budgets, cancellation recovery (the serve regression: a
///        session whose query was interrupted answers the next query
///        normally), and the variable-allocation guarantees recorded
///        protocol traces depend on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cnf/generators.hpp"
#include "sat/session.hpp"
#include "sat/solver.hpp"

namespace {

using namespace sateda;
using sat::EngineSpec;
using sat::QueryBudget;
using sat::QueryResult;
using sat::SessionOptions;
using sat::SolveResult;
using sat::SolverSession;
using sat::UnknownReason;

TEST(SessionTest, RootClausesPersistAcrossQueries) {
  SolverSession s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a), pos(b)}));
  EXPECT_EQ(s.query({neg(a)}).result, SolveResult::kSat);
  EXPECT_EQ(s.query({neg(b)}).result, SolveResult::kSat);
  EXPECT_EQ(s.query({neg(a), neg(b)}).result, SolveResult::kUnsat);
}

TEST(SessionTest, QueryIdsAreMonotone) {
  SolverSession s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a)}));
  EXPECT_EQ(s.next_query_id(), 1u);
  EXPECT_EQ(s.query({}).id, 1u);
  EXPECT_EQ(s.query({}).id, 2u);
  EXPECT_EQ(s.queries_run(), 2u);
  EXPECT_EQ(s.next_query_id(), 3u);
}

TEST(SessionTest, EpochClausesVanishAfterPop) {
  SolverSession s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a)}));
  ASSERT_EQ(s.push(), 1);
  ASSERT_TRUE(s.add_clause({neg(a)}));  // contradicts the root unit
  EXPECT_EQ(s.query({}).result, SolveResult::kUnsat);
  ASSERT_EQ(s.pop(), 0);
  // The contradiction was epoch-local; the root problem is SAT again.
  EXPECT_EQ(s.query({}).result, SolveResult::kSat);
}

TEST(SessionTest, NestedEpochsRetireInnermostFirst) {
  SolverSession s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a), pos(b)}));
  ASSERT_EQ(s.push(), 1);
  ASSERT_TRUE(s.add_clause({neg(a)}));
  ASSERT_EQ(s.push(), 2);
  ASSERT_TRUE(s.add_clause({neg(b)}));
  EXPECT_EQ(s.query({}).result, SolveResult::kUnsat);
  ASSERT_EQ(s.pop(), 1);  // drop ¬b: a∨b with ¬a forces b
  QueryResult r = s.query({});
  ASSERT_EQ(r.result, SolveResult::kSat);
  EXPECT_EQ(r.model[static_cast<std::size_t>(b)], l_true);
  ASSERT_EQ(s.pop(), 0);
  EXPECT_EQ(s.depth(), 0);
}

TEST(SessionTest, PopAtRootReturnsMinusOne) {
  SolverSession s;
  EXPECT_EQ(s.pop(), -1);
}

TEST(SessionTest, PushAllocatesExactlyOneVariable) {
  // Recorded protocol traces predict the session's variable layout:
  // push() takes exactly the next free id (the selector) and nothing
  // else.  This is a documented guarantee — breaking it invalidates
  // every trace shipped with the repo.
  SolverSession s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a)}));
  const Var before = s.next_free_var();
  s.push();
  EXPECT_EQ(s.num_vars(), before + 1);
  EXPECT_EQ(s.next_free_var(), before + 1);
  (void)s.pop();
  // pop() allocates nothing either.
  EXPECT_EQ(s.next_free_var(), before + 1);
}

TEST(SessionTest, SelectorsNeverAppearInCores) {
  SolverSession s;
  const Var a = s.new_var();
  s.push();
  ASSERT_TRUE(s.add_clause({neg(a)}));
  QueryResult r = s.query({pos(a)});
  ASSERT_EQ(r.result, SolveResult::kUnsat);
  for (Lit l : r.core) {
    EXPECT_EQ(l.var(), a) << "core leaked a non-user literal";
  }
  (void)s.pop();
}

TEST(SessionTest, ModelsAreTrimmedToUserVariables) {
  SolverSession s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a)}));
  s.push();  // selector above the user range
  QueryResult r = s.query({});
  ASSERT_EQ(r.result, SolveResult::kSat);
  EXPECT_LE(r.model.size(), static_cast<std::size_t>(a) + 1);
  (void)s.pop();
}

TEST(SessionTest, RetiredEpochVariablesLeaveTheBranchingOrder) {
  // After pop() the epoch's variables occur only in retired clauses;
  // the session must stop the solver from deciding them (a long
  // session retires thousands) yet revive any the caller re-uses.
  SolverSession s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a)}));
  s.push();
  const Var x = s.new_var();
  const Var y = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(x), pos(y)}));
  ASSERT_EQ(s.query({}).result, SolveResult::kSat);
  (void)s.pop();
  // x and y are retired; a query must still answer correctly.
  ASSERT_EQ(s.query({}).result, SolveResult::kSat);
  // Re-using a retired variable in a new root clause revives it: the
  // new constraint must genuinely bind in both polarities.
  ASSERT_TRUE(s.add_clause({pos(x)}));
  QueryResult r = s.query({pos(x)});
  ASSERT_EQ(r.result, SolveResult::kSat);
  EXPECT_EQ(s.query({neg(x)}).result, SolveResult::kUnsat);
}

TEST(SessionTest, ReusedRetiredVariableAppearsAssignedInModels) {
  SolverSession s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a)}));
  s.push();
  const Var x = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(x), pos(a)}));
  (void)s.pop();
  ASSERT_TRUE(s.add_clause({pos(x)}));
  QueryResult r = s.query({});
  ASSERT_EQ(r.result, SolveResult::kSat);
  ASSERT_GT(r.model.size(), static_cast<std::size_t>(x));
  EXPECT_EQ(r.model[static_cast<std::size_t>(x)], l_true);
}

TEST(SessionTest, ConflictBudgetYieldsUnknownWithReason) {
  SolverSession s;
  ASSERT_TRUE(s.add_formula(pigeonhole(7)));  // too hard for 1 conflict
  QueryBudget tight;
  tight.conflicts = 1;
  QueryResult r = s.query({}, tight);
  EXPECT_EQ(r.result, SolveResult::kUnknown);
  EXPECT_EQ(r.reason, UnknownReason::kConflictBudget);
  // The budget was per-query: an unbudgeted query finishes the proof.
  EXPECT_EQ(s.query({}).result, SolveResult::kUnsat);
}

TEST(SessionTest, SessionDefaultBudgetAppliesWhenQueryNamesNone) {
  SessionOptions opts;
  opts.default_budget.conflicts = 1;
  SolverSession s(opts);
  ASSERT_TRUE(s.add_formula(pigeonhole(7)));
  QueryResult r = s.query({});
  EXPECT_EQ(r.result, SolveResult::kUnknown);
  EXPECT_EQ(r.reason, UnknownReason::kConflictBudget);
  // An explicit per-query budget overrides the session default.
  QueryBudget wide;
  wide.conflicts = 1000000;
  EXPECT_EQ(s.query({}, wide).result, SolveResult::kUnsat);
}

TEST(SessionTest, StatsDeltaCoversExactlyOneQuery) {
  SolverSession s;
  ASSERT_TRUE(s.add_formula(pigeonhole(5)));
  QueryResult r1 = s.query({});
  ASSERT_EQ(r1.result, SolveResult::kUnsat);
  EXPECT_EQ(r1.stats.solve_calls, 1);
  EXPECT_GT(r1.stats.conflicts, 0);
  QueryResult r2 = s.query({});
  EXPECT_EQ(r2.stats.solve_calls, 1);
  // Cumulative stats keep growing monotonically across queries.
  EXPECT_GE(s.cumulative_stats().solve_calls, 2);
}

TEST(SessionTest, ActiveFormulaReproducesTheQueriedClauseSet) {
  SolverSession s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a), pos(b)}));
  s.push();
  ASSERT_TRUE(s.add_clause({neg(b)}));
  const CnfFormula f = s.active_formula();
  EXPECT_EQ(f.num_clauses(), 2u);
  // Epoch clauses appear unguarded: solving the snapshot standalone
  // reproduces the session's verdicts (the certification path).
  sat::Solver fresh;
  ASSERT_TRUE(fresh.add_formula(f));
  ASSERT_EQ(fresh.solve(), SolveResult::kSat);
  EXPECT_EQ(fresh.model_value(a), l_true);
  (void)s.pop();
  EXPECT_EQ(s.active_formula().num_clauses(), 1u);
}

// --- the serve cancellation regression ------------------------------
//
// A session must survive a query interrupted mid-flight: the
// interrupted query returns kUnknown/kInterrupted and the *next* query
// on the same warm engine answers normally.  This is exactly what the
// daemon's out-of-band cancel op does to a busy session.

class SessionCancelTest : public testing::TestWithParam<const char*> {};

TEST_P(SessionCancelTest, InterruptedQueryDoesNotPoisonTheSession) {
  SessionOptions opts;
  opts.engine = EngineSpec::parse(GetParam());
  SolverSession s(opts);
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a), pos(b)}));  // trivially SAT root

  // Hard epoch-local instance: php(9) takes long enough that the
  // canceller wins the race; if the solve finishes first the test
  // still passes via the kUnsat branch (no flakiness, less coverage).
  s.push();
  ASSERT_TRUE(s.add_formula(pigeonhole(9)));

  std::atomic<bool> go{false};
  std::thread canceller([&] {
    while (!go.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    s.cancel();
  });
  go.store(true);
  QueryResult r = s.query({});
  canceller.join();
  if (r.result == SolveResult::kUnknown) {
    EXPECT_EQ(r.reason, UnknownReason::kInterrupted);
  } else {
    EXPECT_EQ(r.result, SolveResult::kUnsat);
  }
  (void)s.pop();  // retire the pigeonhole epoch

  // Regression: the next query must answer normally — the engine
  // contract clears the interrupt flag on solve() entry, including
  // across portfolio round barriers.
  QueryResult next = s.query({neg(a)});
  ASSERT_EQ(next.result, SolveResult::kSat);
  EXPECT_EQ(next.model[static_cast<std::size_t>(b)], l_true);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SessionCancelTest,
                         testing::Values("cdcl", "dpll", "portfolio:2",
                                         "portfolio:2:det"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ':') c = '_';
                           }
                           return name;
                         });

TEST(SessionTest, CancelBeforeQueryOnlyAffectsTheInFlightOne) {
  // cancel() with nothing in flight must not wedge the next query.
  SolverSession s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a)}));
  s.cancel();
  EXPECT_EQ(s.query({}).result, SolveResult::kSat);
}

TEST(SessionTest, EngineSpecSelectsTheBackend) {
  SessionOptions opts;
  opts.engine = EngineSpec::parse("dpll");
  SolverSession s(opts);
  EXPECT_EQ(s.engine().name(), "dpll");
  EXPECT_EQ(s.spec().to_string(), "dpll");
}

}  // namespace
