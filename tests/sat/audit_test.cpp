/// \file audit_test.cpp
/// \brief Tests for the SolverAuditor debug invariant checker: clean
///        solves must audit clean, and each corruption hook must trip
///        the corresponding check.
#include "sat/audit.hpp"

#include <gtest/gtest.h>

#include "cnf/generators.hpp"
#include "sat/solver.hpp"

namespace sateda::sat {
namespace {

AuditOptions every_checkpoint() {
  AuditOptions opts;
  opts.interval = 1;
  return opts;
}

TEST(AuditTest, CleanUnsatSolveAuditsClean) {
  Solver solver;
  SolverAuditor auditor(every_checkpoint());
  solver.set_auditor(&auditor);
  ASSERT_TRUE(solver.add_formula(pigeonhole(4)));
  EXPECT_EQ(solver.solve(), SolveResult::kUnsat);
  const AuditReport& r = auditor.report();
  EXPECT_TRUE(r.ok()) << r.violations.front();
  EXPECT_GT(r.checkpoints_seen, 0u);
  EXPECT_GT(r.audits_run, 0u);
  EXPECT_GT(r.learnts_checked, 0u);
}

TEST(AuditTest, CleanSatSolveAuditsClean) {
  Solver solver;
  SolverAuditor auditor(every_checkpoint());
  solver.set_auditor(&auditor);
  ASSERT_TRUE(solver.add_formula(random_3sat(30, 3.0, /*seed=*/11)));
  EXPECT_EQ(solver.solve(), SolveResult::kSat);
  EXPECT_TRUE(auditor.report().ok())
      << auditor.report().violations.front();
}

TEST(AuditTest, StrictLearntRupHoldsWithoutDeletion) {
  SolverOptions sopts;
  sopts.deletion = DeletionPolicy::kNever;
  Solver solver(sopts);
  AuditOptions opts = every_checkpoint();
  opts.strict_learnt_rup = true;
  SolverAuditor auditor(opts);
  solver.set_auditor(&auditor);
  ASSERT_TRUE(solver.add_formula(pigeonhole(4)));
  EXPECT_EQ(solver.solve(), SolveResult::kUnsat);
  const AuditReport& r = auditor.report();
  EXPECT_TRUE(r.ok()) << r.violations.front();
  EXPECT_GT(r.learnts_checked, 0u);
}

TEST(AuditTest, IntervalThrottlesAudits) {
  Solver solver;
  AuditOptions opts;
  opts.interval = 1000000;  // never divides a small checkpoint count
  SolverAuditor auditor(opts);
  solver.set_auditor(&auditor);
  ASSERT_TRUE(solver.add_formula(pigeonhole(3)));
  EXPECT_EQ(solver.solve(), SolveResult::kUnsat);
  EXPECT_GT(auditor.report().checkpoints_seen, 0u);
  EXPECT_EQ(auditor.report().audits_run, 0u);
}

TEST(AuditTest, DetectsCorruptedWatcher) {
  Solver solver;
  ASSERT_TRUE(solver.add_formula(pigeonhole(4)));
  SolverAuditor::corrupt_watcher_for_test(solver);
  SolverAuditor auditor(every_checkpoint());
  auditor.audit(solver);
  EXPECT_FALSE(auditor.report().ok());
}

TEST(AuditTest, DetectsCorruptedTrail) {
  CnfFormula f(3);
  f.add_unit(pos(0));  // guarantees a trail entry at level 0
  f.add_binary(neg(0), pos(1));
  f.add_ternary(neg(0), neg(1), pos(2));
  Solver solver;
  ASSERT_TRUE(solver.add_formula(f));
  ASSERT_EQ(solver.solve(), SolveResult::kSat);
  SolverAuditor::corrupt_trail_for_test(solver);
  SolverAuditor auditor(every_checkpoint());
  auditor.audit(solver);
  EXPECT_FALSE(auditor.report().ok());
}

TEST(AuditTest, DetectsCorruptedLearntUnderStrictRup) {
  // A satisfiable base so the corrupted clause cannot be vacuously
  // entailed (after an UNSAT solve *everything* is a consequence).
  // Ternary, because binary clauses are implicit (never in the arena,
  // so never eligible for the learnt-corruption hook).
  CnfFormula f(3);
  f.add_ternary(neg(0), pos(1), pos(2));
  SolverOptions sopts;
  sopts.deletion = DeletionPolicy::kNever;
  Solver solver(sopts);
  ASSERT_TRUE(solver.add_formula(f));
  // Imported duplicate of the problem clause: trivially RUP.
  ASSERT_TRUE(solver.add_learnt_clause({neg(0), pos(1), pos(2)}));
  AuditOptions opts = every_checkpoint();
  opts.strict_learnt_rup = true;
  opts.check_watchers = false;  // isolate the learnt-redundancy check
  opts.check_trail = false;
  SolverAuditor auditor(opts);
  auditor.audit(solver);
  ASSERT_TRUE(auditor.report().ok()) << auditor.report().violations.front();
  // Flipping one literal turns it into (¬x1 + x2 + ¬x3) — not RUP.
  SolverAuditor::corrupt_learnt_for_test(solver);
  auditor.audit(solver);
  EXPECT_FALSE(auditor.report().ok());
}

TEST(AuditTest, ClearResetsTheReport) {
  Solver solver;
  ASSERT_TRUE(solver.add_formula(pigeonhole(3)));
  SolverAuditor::corrupt_watcher_for_test(solver);
  SolverAuditor auditor(every_checkpoint());
  auditor.audit(solver);
  ASSERT_FALSE(auditor.report().ok());
  auditor.clear();
  EXPECT_TRUE(auditor.report().ok());
  EXPECT_EQ(auditor.report().audits_run, 0u);
}

}  // namespace
}  // namespace sateda::sat
