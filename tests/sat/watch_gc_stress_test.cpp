/// \file watch_gc_stress_test.cpp
/// \brief Arena-GC stress tests for the flat watch arena: with the GC
///        threshold cranked down so clause compaction and watch-pool
///        rebuilds fire constantly, every audited checkpoint must still
///        see structurally consistent watch slabs, and the DRAT
///        certificate emitted across all those compactions must still
///        verify with the independent backward checker.
#include <gtest/gtest.h>

#include "cnf/generators.hpp"
#include "sat/audit.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace sateda::sat {
namespace {

/// Near-zero GC threshold: any wasted arena word triggers compaction,
/// so the solve crosses rebuild_watches() as often as the workload
/// allows.  Inprocessing rides along so its clause rewrites feed the
/// waste counter too.
SolverOptions aggressive_gc_options() {
  SolverOptions opts;
  opts.gc_frac = 0.01;
  opts.inprocess.enabled = true;
  opts.inprocess.interval = 100;
  return opts;
}

AuditOptions every_checkpoint() {
  AuditOptions opts;
  opts.interval = 1;
  opts.check_watchers = true;
  return opts;
}

TEST(WatchGcStressTest, UnsatSolveUnderConstantGcAuditsClean) {
  Solver solver(aggressive_gc_options());
  SolverAuditor auditor(every_checkpoint());
  solver.set_auditor(&auditor);
  ASSERT_TRUE(solver.add_formula(pigeonhole(6)));
  EXPECT_EQ(solver.solve(), SolveResult::kUnsat);
  const AuditReport& r = auditor.report();
  EXPECT_TRUE(r.ok()) << r.violations.front();
  EXPECT_GT(r.audits_run, 0u);
  // The stress premise: compaction actually happened.  A zero here
  // means gc_frac stopped forcing rebuilds and the test went soft.
  EXPECT_GT(solver.stats().watch_rebuilds, 0);
}

TEST(WatchGcStressTest, SatSolveUnderConstantGcAuditsClean) {
  Solver solver(aggressive_gc_options());
  SolverAuditor auditor(every_checkpoint());
  solver.set_auditor(&auditor);
  ASSERT_TRUE(solver.add_formula(random_3sat(120, 4.0, /*seed=*/3)));
  EXPECT_EQ(solver.solve(), SolveResult::kSat);
  EXPECT_TRUE(auditor.report().ok())
      << auditor.report().violations.front();
  EXPECT_GT(solver.stats().watch_rebuilds, 0);
}

TEST(WatchGcStressTest, DratCertificateSurvivesConstantGc) {
  // The proof trace spans every garbage_collect()/rebuild_watches()
  // the solve performed; clause relocation must be invisible to it.
  const CnfFormula f = pigeonhole(6);
  Solver solver(aggressive_gc_options());
  Proof proof;
  solver.set_proof_tracer(&proof);
  ASSERT_TRUE(solver.add_formula(f));
  ASSERT_EQ(solver.solve(), SolveResult::kUnsat);
  ASSERT_GT(solver.stats().watch_rebuilds, 0);
  EXPECT_TRUE(testing::check_proof(f, std::move(proof)));
}

TEST(WatchGcStressTest, DratCertificateSurvivesGcWithInprocessing) {
  // dubois chains are where entry BVE rewrites the database hardest:
  // eliminations, resolvent re-insertions and learnt retirement all
  // land in the same trace the backward checker has to accept.
  const CnfFormula f = dubois(20);
  Solver solver(aggressive_gc_options());
  Proof proof;
  solver.set_proof_tracer(&proof);
  ASSERT_TRUE(solver.add_formula(f));
  ASSERT_EQ(solver.solve(), SolveResult::kUnsat);
  EXPECT_GT(solver.stats().inprocess_runs, 0);
  EXPECT_TRUE(testing::check_proof(f, std::move(proof)));
}

}  // namespace
}  // namespace sateda::sat
