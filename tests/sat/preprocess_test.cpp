#include "sat/preprocess.hpp"

#include <gtest/gtest.h>

#include "cnf/generators.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace sateda::sat {
namespace {

TEST(PreprocessTest, UnitPropagationFixesChains) {
  // (a)(¬a + b)(¬b + c): all three variables forced.
  CnfFormula f(3);
  f.add_unit(pos(0));
  f.add_binary(neg(0), pos(1));
  f.add_binary(neg(1), pos(2));
  PreprocessResult r = preprocess(f);
  ASSERT_FALSE(r.unsat);
  EXPECT_EQ(r.simplified.num_clauses(), 0u);
  auto model = r.reconstruct_model({});
  EXPECT_EQ(model[0], l_true);
  EXPECT_EQ(model[1], l_true);
  EXPECT_EQ(model[2], l_true);
}

TEST(PreprocessTest, DetectsUnitContradiction) {
  CnfFormula f(1);
  f.add_unit(pos(0));
  f.add_unit(neg(0));
  EXPECT_TRUE(preprocess(f).unsat);
}

TEST(PreprocessTest, PureLiteralElimination) {
  // b occurs only positively.
  CnfFormula f(3);
  f.add_binary(pos(0), pos(1));
  f.add_binary(neg(0), pos(1));
  f.add_binary(pos(2), neg(2));  // tautology, dropped
  PreprocessOptions opts;
  opts.equivalency_reasoning = false;
  opts.subsumption = false;
  opts.self_subsumption = false;
  PreprocessResult r = preprocess(f, opts);
  ASSERT_FALSE(r.unsat);
  EXPECT_GE(r.stats.pure_literals, 1);
  EXPECT_EQ(r.simplified.num_clauses(), 0u);
}

TEST(PreprocessTest, EquivalencyChainCollapsesToOneVariable) {
  // Paper §6: x ≡ y lets y be replaced by x, eliminating a variable.
  CnfFormula f = equivalence_chain(10, /*inconsistent=*/false, 0, 3);
  PreprocessResult r = preprocess(f);
  ASSERT_FALSE(r.unsat);
  EXPECT_EQ(r.stats.equivalent_vars_eliminated, 9);
  // The equivalence clauses become tautologies/duplicates and vanish.
  EXPECT_EQ(r.simplified.num_clauses(), 0u);
  auto model = r.reconstruct_model(std::vector<lbool>(10, l_true));
  for (int v = 1; v < 10; ++v) EXPECT_EQ(model[v], model[0]);
}

TEST(PreprocessTest, InconsistentEquivalenceCycleIsUnsat) {
  CnfFormula f = equivalence_chain(6, /*inconsistent=*/true, 0, 3);
  EXPECT_TRUE(preprocess(f).unsat);
}

TEST(PreprocessTest, SubsumptionDropsSupersets) {
  CnfFormula f(3);
  f.add_binary(pos(0), pos(1));
  f.add_ternary(pos(0), pos(1), pos(2));
  PreprocessOptions opts;
  opts.pure_literals = false;  // keep the example intact
  opts.equivalency_reasoning = false;
  opts.self_subsumption = false;
  opts.bounded_variable_elimination = false;
  PreprocessResult r = preprocess(f, opts);
  EXPECT_EQ(r.stats.clauses_subsumed, 1);
  EXPECT_EQ(r.simplified.num_clauses(), 1u);
}

TEST(PreprocessTest, SelfSubsumptionStrengthens) {
  // (a + b) and (¬a + b + c): resolving on a gives (b + c) ⊂ second
  // clause → strengthen it to (b + c).
  CnfFormula f(3);
  f.add_binary(pos(0), pos(1));
  f.add_ternary(neg(0), pos(1), pos(2));
  PreprocessOptions opts;
  opts.pure_literals = false;
  opts.equivalency_reasoning = false;
  PreprocessResult r = preprocess(f, opts);
  EXPECT_GE(r.stats.literals_self_subsumed, 1);
}

TEST(PreprocessTest, BveEliminatesAndReconstructs) {
  // x0 occurs once per polarity; clause distribution replaces its two
  // clauses with the single resolvent (x1 ∨ x2).
  CnfFormula f(3);
  f.add_binary(pos(0), pos(1));
  f.add_binary(neg(0), pos(2));
  PreprocessOptions opts;
  opts.pure_literals = false;
  opts.equivalency_reasoning = false;
  opts.subsumption = false;
  opts.self_subsumption = false;
  PreprocessResult r = preprocess(f, opts);
  ASSERT_FALSE(r.unsat);
  EXPECT_GE(r.stats.bve_eliminated, 1);
  // Whatever remains is satisfiable; the lifted model must cover the
  // eliminated variables and satisfy the original clauses.
  Solver s;
  (void)s.add_formula(r.simplified);
  s.ensure_var(f.num_vars() - 1);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  auto lifted = r.reconstruct_model(s.model());
  EXPECT_TRUE(
      f.is_satisfied_by(testing::complete_model(lifted, f.num_vars())));
}

TEST(PreprocessTest, FrozenVariablesSurviveEveryPass) {
  // x0 is pure and a cheap elimination pivot; freezing it must keep it
  // out of every value-changing pass so assumptions on it stay
  // meaningful against the simplified formula.
  CnfFormula f(4);
  f.add_binary(pos(0), pos(1));
  f.add_binary(pos(0), pos(2));
  f.add_ternary(neg(1), pos(2), pos(3));
  PreprocessOptions opts;
  opts.frozen = {0};
  PreprocessResult r = preprocess(f, opts);
  ASSERT_FALSE(r.unsat);
  EXPECT_TRUE(r.fixed[0].is_undef());
  EXPECT_FALSE(r.substituted[0].is_defined());
  for (const ElimRecord& rec : r.eliminated) EXPECT_NE(rec.pivot, 0);
  for (const Lit a : {pos(0), neg(0)}) {
    CnfFormula augmented = f;
    augmented.add_clause({a});
    Solver s;
    (void)s.add_formula(r.simplified);
    s.ensure_var(f.num_vars() - 1);
    const SolveResult res = s.solve({a});
    ASSERT_EQ(res == SolveResult::kSat,
              testing::brute_force_satisfiable(augmented));
    if (res == SolveResult::kSat) {
      auto lifted = r.reconstruct_model(s.model());
      EXPECT_TRUE(augmented.is_satisfied_by(
          testing::complete_model(lifted, f.num_vars())));
    }
  }
}

TEST(PreprocessTest, UnconstrainedVariablesGetTotalModel) {
  // x4 and x5 occur in no clause; reconstruction must still assign
  // them (any value) so the lifted model is total.
  CnfFormula f(6);
  f.add_binary(pos(0), pos(1));
  f.add_binary(neg(1), pos(2));
  f.add_binary(neg(2), pos(3));
  PreprocessResult r = preprocess(f);
  ASSERT_FALSE(r.unsat);
  Solver s;
  (void)s.add_formula(r.simplified);
  s.ensure_var(f.num_vars() - 1);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  auto model = r.reconstruct_model(s.model());
  ASSERT_EQ(model.size(), 6u);
  for (const lbool& b : model) EXPECT_FALSE(b.is_undef());
  EXPECT_TRUE(f.is_satisfied_by(testing::complete_model(model, 6)));
}

class PreprocessPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PreprocessPropertyTest, PreservesSatisfiability) {
  CnfFormula f = random_3sat(13, 4.3, GetParam());
  const bool expected = testing::brute_force_satisfiable(f);
  PreprocessResult r = preprocess(f);
  if (r.unsat) {
    EXPECT_FALSE(expected);
    return;
  }
  Solver s;
  (void)s.add_formula(r.simplified);
  s.ensure_var(f.num_vars() - 1);
  SolveResult res = s.solve();
  EXPECT_EQ(res == SolveResult::kSat, expected);
  if (res == SolveResult::kSat) {
    // The reconstructed model must satisfy the *original* formula.
    auto lifted = r.reconstruct_model(s.model());
    EXPECT_TRUE(
        f.is_satisfied_by(testing::complete_model(lifted, f.num_vars())));
  }
}

TEST_P(PreprocessPropertyTest, EquivalenceRichFormulasPreserved) {
  CnfFormula f = equivalence_chain(12, /*inconsistent=*/false, 10, GetParam());
  const bool expected = testing::brute_force_satisfiable(f);
  PreprocessResult r = preprocess(f);
  if (r.unsat) {
    EXPECT_FALSE(expected);
    return;
  }
  Solver s;
  (void)s.add_formula(r.simplified);
  s.ensure_var(f.num_vars() - 1);
  SolveResult res = s.solve();
  EXPECT_EQ(res == SolveResult::kSat, expected);
  if (res == SolveResult::kSat) {
    auto lifted = r.reconstruct_model(s.model());
    EXPECT_TRUE(
        f.is_satisfied_by(testing::complete_model(lifted, f.num_vars())));
  }
}

TEST_P(PreprocessPropertyTest, RoundTripAcrossPassMixes) {
  // Randomized round trip for every pass combination: preprocess,
  // solve the simplified formula, lift the model, evaluate it against
  // the original CNF.
  CnfFormula f = random_3sat(11, 4.4, GetParam() + 7000);
  const bool expected = testing::brute_force_satisfiable(f);
  for (int mask = 0; mask < 32; ++mask) {
    PreprocessOptions opts;
    opts.pure_literals = (mask & 1) != 0;
    opts.equivalency_reasoning = (mask & 2) != 0;
    opts.subsumption = (mask & 4) != 0;
    opts.self_subsumption = (mask & 8) != 0;
    opts.bounded_variable_elimination = (mask & 16) != 0;
    PreprocessResult r = preprocess(f, opts);
    if (r.unsat) {
      EXPECT_FALSE(expected) << "pass mask " << mask;
      continue;
    }
    Solver s;
    (void)s.add_formula(r.simplified);
    s.ensure_var(f.num_vars() - 1);
    const SolveResult res = s.solve();
    ASSERT_EQ(res == SolveResult::kSat, expected) << "pass mask " << mask;
    if (res == SolveResult::kSat) {
      auto lifted = r.reconstruct_model(s.model());
      EXPECT_TRUE(
          f.is_satisfied_by(testing::complete_model(lifted, f.num_vars())))
          << "pass mask " << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreprocessPropertyTest,
                         ::testing::Range<std::uint64_t>(3000, 3020));

// --- DRAT certification of this suite's UNSAT cases -------------------

TEST(PreprocessProofCertificationTest, PreprocessorUnsatVerdictsAreCertified) {
  {
    CnfFormula f(1);  // unit contradiction found by the preprocessor
    f.add_unit(pos(0));
    f.add_unit(neg(0));
    EXPECT_TRUE(testing::verify_unsat_preprocessed(f));
  }
  // Inconsistent equivalence cycle: refuted by equivalency reasoning.
  EXPECT_TRUE(testing::verify_unsat_preprocessed(
      equivalence_chain(6, /*inconsistent=*/true, 0, 3)));
}

TEST(PreprocessProofCertificationTest, PipelineProofsCoverEveryPassMix) {
  const CnfFormula f = pigeonhole(4);
  for (int mask = 0; mask < 32; ++mask) {
    PreprocessOptions opts;
    opts.pure_literals = (mask & 1) != 0;
    opts.equivalency_reasoning = (mask & 2) != 0;
    opts.subsumption = (mask & 4) != 0;
    opts.self_subsumption = (mask & 8) != 0;
    opts.bounded_variable_elimination = (mask & 16) != 0;
    EXPECT_TRUE(testing::verify_unsat_preprocessed(f, opts))
        << "pass mask " << mask;
  }
}

TEST(PreprocessProofCertificationTest, SelfSubsumptionHeavyInstanceCertified) {
  // dubois formulas exercise rewrites + self-subsumption before search.
  EXPECT_TRUE(testing::verify_unsat_preprocessed(dubois(8)));
  EXPECT_TRUE(testing::verify_unsat_preprocessed(
      equivalence_chain(10, /*inconsistent=*/true, 12, 9)));
}

}  // namespace
}  // namespace sateda::sat
