/// \file inprocess_test.cpp
/// \brief Tests for the inprocessing subsystem (BVE + vivification +
///        failed-literal probing), frozen-variable protection,
///        eliminated-variable reintroduction, and wall-clock budgets.
#include <gtest/gtest.h>

#include <vector>

#include "cnf/formula.hpp"
#include "cnf/generators.hpp"
#include "sat/dpll.hpp"
#include "sat/portfolio.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace sateda::sat {
namespace {

using testing::brute_force_model;
using testing::brute_force_satisfiable;
using testing::check_proof;
using testing::complete_model;
using testing::verify_unsat;
using testing::verify_unsat_portfolio;

SolverOptions inprocess_options(std::int64_t interval = 1) {
  SolverOptions opts;
  opts.inprocess.enabled = true;
  opts.inprocess.interval = interval;
  opts.inprocess.interval_growth = 1.0;
  // This file tests the passes themselves (elimination, reintroduction,
  // freezing, proof soundness) on tiny formulas that mostly solve
  // without a conflict — exactly the case the self-throttling scheduler
  // skips.  Flat budgets keep every pass running unconditionally; the
  // scheduler's own gating is covered in inprocess_schedule_test.cpp.
  opts.inprocess.self_throttle = false;
  return opts;
}

/// A formula where variable 0 has two occurrences and a single
/// non-tautological resolvent (x1 ∨ x2) — the cheapest BVE pivot.
CnfFormula eliminable_formula() {
  CnfFormula f(4);
  f.add_clause({pos(0), pos(1)});
  f.add_clause({neg(0), pos(2)});
  f.add_clause({pos(1), pos(3)});
  f.add_clause({pos(2), neg(3)});
  f.add_clause({neg(1), pos(3)});
  return f;
}

TEST(InprocessTest, EquivalentToBruteForceOnRandomCnfs) {
  for (int seed = 0; seed < 25; ++seed) {
    const CnfFormula f = random_3sat(12, 4.3, seed);
    Solver solver(inprocess_options());
    const bool added = solver.add_formula(f);
    const SolveResult r =
        added ? solver.solve() : SolveResult::kUnsat;
    const bool expect_sat = brute_force_satisfiable(f);
    if (expect_sat) {
      ASSERT_EQ(r, SolveResult::kSat) << "seed " << seed;
      // The reconstructed model must satisfy the *original* formula,
      // including any variables BVE eliminated mid-search.
      EXPECT_TRUE(f.is_satisfied_by(complete_model(solver.model(),
                                                   f.num_vars())))
          << "seed " << seed;
    } else {
      EXPECT_EQ(r, SolveResult::kUnsat) << "seed " << seed;
    }
  }
}

TEST(InprocessTest, ProofCertifiedUnsatAllPassCombinations) {
  const CnfFormula php = pigeonhole(4);
  for (int mask = 0; mask < 8; ++mask) {
    SolverOptions opts = inprocess_options();
    opts.inprocess.bve = (mask & 1) != 0;
    opts.inprocess.probing = (mask & 2) != 0;
    opts.inprocess.vivify = (mask & 4) != 0;
    EXPECT_TRUE(verify_unsat(php, {}, opts)) << "pass mask " << mask;
  }
}

TEST(InprocessTest, ProofCertifiedUnsatOnDubois) {
  EXPECT_TRUE(verify_unsat(dubois(15), {}, inprocess_options()));
}

TEST(InprocessTest, ProofCertifiedUnsatUnderAssumptions) {
  // f ∧ x0 ∧ ¬x1 is UNSAT; assumptions must survive inprocessing.
  CnfFormula f(3);
  f.add_clause({neg(0), pos(1), pos(2)});
  f.add_clause({neg(0), pos(1), neg(2)});
  const std::vector<Lit> assumptions = {pos(0), neg(1)};
  EXPECT_TRUE(verify_unsat(f, assumptions, inprocess_options()));
}

TEST(InprocessTest, PortfolioProofCertifiedWithInprocessing) {
  EXPECT_TRUE(verify_unsat_portfolio(pigeonhole(4), 2, inprocess_options()));
}

TEST(InprocessTest, ProbingDerivesFailedLiteralUnit) {
  // x0 → x1 and x0 → ¬x1: probing x0 hits a conflict, so ¬x0 becomes a
  // root unit before any decision is made.
  CnfFormula f(4);
  f.add_clause({neg(0), pos(1)});
  f.add_clause({neg(0), neg(1)});
  f.add_clause({pos(2), pos(3)});
  SolverOptions opts = inprocess_options();
  opts.inprocess.bve = false;
  opts.inprocess.vivify = false;
  Solver solver(opts);
  ASSERT_TRUE(solver.add_formula(f));
  ASSERT_EQ(solver.solve(), SolveResult::kSat);
  EXPECT_GE(solver.stats().failed_literals, 1);
  EXPECT_TRUE(solver.model()[0].is_false());
}

TEST(InprocessTest, BveEliminatesUnfrozenVariable) {
  Solver solver(inprocess_options());
  ASSERT_TRUE(solver.add_formula(eliminable_formula()));
  ASSERT_EQ(solver.solve(), SolveResult::kSat);
  EXPECT_GE(solver.stats().eliminated_vars, 1);
  EXPECT_TRUE(
      eliminable_formula().is_satisfied_by(complete_model(solver.model(), 4)));
}

TEST(InprocessTest, FreezeProtectsVariableFromElimination) {
  Solver solver(inprocess_options());
  ASSERT_TRUE(solver.add_formula(eliminable_formula()));
  solver.freeze(0);
  ASSERT_EQ(solver.solve(), SolveResult::kSat);
  EXPECT_TRUE(solver.is_frozen(0));
  EXPECT_FALSE(solver.is_eliminated(0));
  solver.thaw(0);
  EXPECT_FALSE(solver.is_frozen(0));
}

TEST(InprocessTest, AssumptionOnEliminatedVariableReintroducesIt) {
  const CnfFormula f = eliminable_formula();
  Solver solver(inprocess_options());
  ASSERT_TRUE(solver.add_formula(f));
  ASSERT_EQ(solver.solve(), SolveResult::kSat);
  // Both polarities of every variable must remain assumable afterwards,
  // eliminated or not (solve() reintroduces and freezes on demand).
  for (Var v = 0; v < 4; ++v) {
    for (const Lit a : {pos(v), neg(v)}) {
      CnfFormula augmented = f;
      augmented.add_clause({a});
      const SolveResult r = solver.solve({a});
      ASSERT_EQ(r == SolveResult::kSat, brute_force_satisfiable(augmented))
          << "assumption on var " << v;
      if (r == SolveResult::kSat) {
        EXPECT_TRUE(augmented.is_satisfied_by(
            complete_model(solver.model(), f.num_vars())));
      }
      EXPECT_FALSE(solver.is_eliminated(v));
      EXPECT_TRUE(solver.is_frozen(v));
    }
  }
}

TEST(InprocessTest, AssumptionVariablesAreStickyFrozen) {
  Solver solver(inprocess_options());
  ASSERT_TRUE(solver.add_formula(eliminable_formula()));
  ASSERT_EQ(solver.solve({pos(0)}), SolveResult::kSat);
  // The first solve froze var 0; later assumption-free solves with
  // inprocessing must leave it alone.
  ASSERT_EQ(solver.solve(), SolveResult::kSat);
  EXPECT_TRUE(solver.is_frozen(0));
  EXPECT_FALSE(solver.is_eliminated(0));
}

TEST(InprocessTest, ClauseReaddedOnEliminatedVariable) {
  const CnfFormula f = eliminable_formula();
  Solver solver(inprocess_options());
  ASSERT_TRUE(solver.add_formula(f));
  ASSERT_EQ(solver.solve(), SolveResult::kSat);
  // Adding a clause over a (possibly eliminated) variable must
  // reintroduce its defining clauses, not silently reference a ghost.
  ASSERT_TRUE(solver.add_clause({neg(0), neg(3)}));
  CnfFormula augmented = f;
  augmented.add_clause({neg(0), neg(3)});
  const SolveResult r = solver.solve();
  ASSERT_EQ(r == SolveResult::kSat, brute_force_satisfiable(augmented));
  if (r == SolveResult::kSat) {
    EXPECT_TRUE(augmented.is_satisfied_by(
        complete_model(solver.model(), f.num_vars())));
  }
}

TEST(InprocessTest, GcStressKeepsProofsSound) {
  // Tiny GC threshold + an inprocessing run at every restart boundary:
  // BVE and vivification race arena compactions, and every UNSAT
  // answer must still carry a checkable certificate.
  SolverOptions opts = inprocess_options(/*interval=*/0);
  opts.gc_frac = 0.01;
  EXPECT_TRUE(verify_unsat(pigeonhole(5), {}, opts));
  EXPECT_TRUE(verify_unsat(dubois(20), {}, opts));
  for (int seed = 0; seed < 10; ++seed) {
    const CnfFormula f = random_3sat(14, 4.5, 100 + seed);
    Solver solver(opts);
    Proof proof;
    solver.set_proof_tracer(&proof);
    const bool added = solver.add_formula(f);
    const SolveResult r = added ? solver.solve() : SolveResult::kUnsat;
    const bool expect_sat = brute_force_satisfiable(f);
    ASSERT_EQ(r == SolveResult::kSat, expect_sat) << "seed " << seed;
    if (expect_sat) {
      EXPECT_TRUE(
          f.is_satisfied_by(complete_model(solver.model(), f.num_vars())));
    } else {
      EXPECT_TRUE(check_proof(f, std::move(proof))) << "seed " << seed;
    }
  }
}

TEST(TimeBudgetTest, CdclStopsOnWallClock) {
  SolverOptions opts;
  opts.time_budget_ms = 50;
  Solver solver(opts);
  ASSERT_TRUE(solver.add_formula(pigeonhole(9)));
  EXPECT_EQ(solver.solve(), SolveResult::kUnknown);
  EXPECT_EQ(solver.unknown_reason(), UnknownReason::kTimeBudget);
}

TEST(TimeBudgetTest, DpllStopsOnWallClock) {
  SolverOptions opts;
  opts.time_budget_ms = 50;
  DpllSolver solver(opts);
  ASSERT_TRUE(solver.add_formula(pigeonhole(8)));
  EXPECT_EQ(solver.solve(), SolveResult::kUnknown);
  EXPECT_EQ(solver.unknown_reason(), UnknownReason::kTimeBudget);
}

TEST(TimeBudgetTest, PortfolioRacingStopsOnWallClock) {
  SolverOptions opts;
  opts.time_budget_ms = 100;
  PortfolioOptions popts;
  popts.num_workers = 2;
  PortfolioSolver solver(opts, popts);
  ASSERT_TRUE(solver.add_formula(pigeonhole(9)));
  EXPECT_EQ(solver.solve(), SolveResult::kUnknown);
  EXPECT_EQ(solver.unknown_reason(), UnknownReason::kTimeBudget);
}

TEST(TimeBudgetTest, PortfolioDeterministicStopsOnWallClock) {
  SolverOptions opts;
  opts.time_budget_ms = 100;
  PortfolioOptions popts;
  popts.num_workers = 2;
  popts.deterministic = true;
  popts.round_conflicts = 500;
  PortfolioSolver solver(opts, popts);
  ASSERT_TRUE(solver.add_formula(pigeonhole(9)));
  EXPECT_EQ(solver.solve(), SolveResult::kUnknown);
  EXPECT_EQ(solver.unknown_reason(), UnknownReason::kTimeBudget);
}

TEST(TimeBudgetTest, DisabledBudgetDoesNotTrigger) {
  Solver solver;  // time_budget_ms defaults to -1: off
  ASSERT_TRUE(solver.add_formula(pigeonhole(4)));
  EXPECT_EQ(solver.solve(), SolveResult::kUnsat);
}

TEST(TimeBudgetTest, ReasonString) {
  EXPECT_EQ(to_string(UnknownReason::kTimeBudget), "time-budget");
}

}  // namespace
}  // namespace sateda::sat
