#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include "cnf/generators.hpp"
#include "test_util.hpp"

namespace sateda::sat {
namespace {

TEST(SolverTest, EmptyProblemIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(SolverTest, SingleUnitClause) {
  Solver s;
  ASSERT_TRUE(s.add_clause({pos(0)}));
  EXPECT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model_value(Var{0}), l_true);
}

TEST(SolverTest, ContradictoryUnitsAreUnsat) {
  Solver s;
  EXPECT_TRUE(s.add_clause({pos(0)}));
  EXPECT_FALSE(s.add_clause({neg(0)}));
  EXPECT_FALSE(s.okay());
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(SolverTest, SimpleImplicationChain) {
  // (¬a + b)(¬b + c)(a) forces c.
  Solver s;
  ASSERT_TRUE(s.add_clause({neg(0), pos(1)}));
  ASSERT_TRUE(s.add_clause({neg(1), pos(2)}));
  ASSERT_TRUE(s.add_clause({pos(0)}));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model_value(Var{2}), l_true);
}

TEST(SolverTest, TautologyIsIgnored) {
  Solver s;
  ASSERT_TRUE(s.add_clause({pos(0), neg(0)}));
  EXPECT_EQ(s.num_problem_clauses(), 0u);
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(SolverTest, DuplicateLiteralsCollapse) {
  Solver s;
  ASSERT_TRUE(s.add_clause({pos(0), pos(0), pos(1)}));
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(SolverTest, UnsatRequiresConflictAnalysis) {
  // (a+b)(a+¬b)(¬a+b)(¬a+¬b) is the smallest full contradiction.
  Solver s;
  ASSERT_TRUE(s.add_clause({pos(0), pos(1)}));
  ASSERT_TRUE(s.add_clause({pos(0), neg(1)}));
  ASSERT_TRUE(s.add_clause({neg(0), pos(1)}));
  ASSERT_TRUE(s.add_clause({neg(0), neg(1)}));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_FALSE(s.okay());
}

TEST(SolverTest, PigeonholeUnsat) {
  Solver s;
  (void)s.add_formula(pigeonhole(5));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0);
}

TEST(SolverTest, ParityChainSolvesAndModelChecks) {
  CnfFormula f = parity_chain(12, true);
  Solver s;
  (void)s.add_formula(f);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(
      f.is_satisfied_by(testing::complete_model(s.model(), f.num_vars())));
}

TEST(SolverTest, ModelSatisfiesEveryClause) {
  CnfFormula f = random_3sat(40, 3.0, 11);
  Solver s;
  (void)s.add_formula(f);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(
      f.is_satisfied_by(testing::complete_model(s.model(), f.num_vars())));
}

// --- assumptions / incremental interface (paper §6) -----------------

TEST(SolverAssumptionsTest, AssumptionFlipsOutcome) {
  Solver s;
  ASSERT_TRUE(s.add_clause({pos(0), pos(1)}));
  EXPECT_EQ(s.solve({neg(0), neg(1)}), SolveResult::kUnsat);
  EXPECT_EQ(s.solve({neg(0)}), SolveResult::kSat);
  EXPECT_EQ(s.model_value(Var{1}), l_true);
  // The solver is reusable after an assumption-UNSAT (incremental use).
  EXPECT_TRUE(s.okay());
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(SolverAssumptionsTest, ConflictCoreIsSubsetOfAssumptions) {
  Solver s;
  ASSERT_TRUE(s.add_clause({neg(0), neg(1)}));  // a ∧ b impossible
  s.new_var();                     // unrelated variable 2
  ASSERT_EQ(s.solve({pos(0), pos(1), pos(2)}), SolveResult::kUnsat);
  const auto& core = s.conflict_core();
  EXPECT_GE(core.size(), 1u);
  for (Lit l : core) {
    EXPECT_TRUE(l == pos(0) || l == pos(1))
        << "core literal " << to_string(l) << " must be a culpable assumption";
  }
}

TEST(SolverAssumptionsTest, CoreConjunctionIsReallyUnsat) {
  CnfFormula f = random_3sat(15, 4.0, 5);
  Solver s;
  (void)s.add_formula(f);
  std::vector<Lit> assumptions;
  for (Var v = 0; v < 6; ++v) assumptions.push_back(pos(v));
  if (s.solve(assumptions) == SolveResult::kUnsat) {
    // Adding the core literals as units must give an UNSAT formula.
    CnfFormula g = f;
    for (Lit l : s.conflict_core()) g.add_unit(l);
    EXPECT_FALSE(testing::brute_force_satisfiable(g));
  }
}

TEST(SolverAssumptionsTest, IncrementalSolvesShareLearnedClauses) {
  Solver s;
  (void)s.add_formula(pigeonhole(4));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_EQ(s.stats().solve_calls, 1);
}

// --- budgets ---------------------------------------------------------

TEST(SolverBudgetTest, ConflictBudgetYieldsUnknown) {
  SolverOptions opts;
  opts.conflict_budget = 5;
  Solver s(opts);
  (void)s.add_formula(pigeonhole(6));
  EXPECT_EQ(s.solve(), SolveResult::kUnknown);
}

TEST(SolverBudgetTest, BudgetIsPerCall) {
  SolverOptions opts;
  opts.conflict_budget = 3;
  Solver s(opts);
  (void)s.add_formula(pigeonhole(5));
  EXPECT_EQ(s.solve(), SolveResult::kUnknown);
  // The next call gets a fresh budget, not an already-exhausted one.
  EXPECT_EQ(s.solve(), SolveResult::kUnknown);
  EXPECT_TRUE(s.okay());
}

// --- Figure 3: conflict analysis on the example circuit --------------
//
// y1 = NAND(x1, w), y2 = NOR(x1, w), y3 = NOR(y1, y2).  With w=1 and
// y3=0, assigning x1=1 yields y1=0, y2=0 and hence y3=1 — a conflict.
// The derivable conflict clause is (¬x1 + ¬w + y3): the solver must
// conclude x1=0 under assumptions {w=1, y3=0}.
class Figure3Test : public ::testing::Test {
 protected:
  // Variables: 0=x1, 1=w, 2=y1, 3=y2, 4=y3.
  static CnfFormula circuit() {
    CnfFormula f(5);
    const Var x1 = 0, w = 1, y1 = 2, y2 = 3, y3 = 4;
    // y1 = NAND(x1, w): (y1 + x1')·... Table 1 NAND CNF:
    f.add_ternary(neg(x1), neg(w), neg(y1));
    f.add_binary(pos(x1), pos(y1));
    f.add_binary(pos(w), pos(y1));
    // y2 = NOR(x1, w):
    f.add_ternary(pos(x1), pos(w), pos(y2));
    f.add_binary(neg(x1), neg(y2));
    f.add_binary(neg(w), neg(y2));
    // y3 = NOR(y1, y2):
    f.add_ternary(pos(y1), pos(y2), pos(y3));
    f.add_binary(neg(y1), neg(y3));
    f.add_binary(neg(y2), neg(y3));
    return f;
  }
};

TEST_F(Figure3Test, ConflictForcesComplementOfX1) {
  Solver s;
  (void)s.add_formula(circuit());
  // Under w=1, y3=0, x1=1: UNSAT (the Fig. 3 conflict).
  EXPECT_EQ(s.solve({pos(1), neg(4), pos(0)}), SolveResult::kUnsat);
  // Under w=1, y3=0 alone: satisfiable, and x1 must be 0 — i.e. the
  // learnt implicate (¬x1 + ¬w + y3) is honoured.
  ASSERT_EQ(s.solve({pos(1), neg(4)}), SolveResult::kSat);
  EXPECT_EQ(s.model_value(Var{0}), l_false);
}

TEST_F(Figure3Test, LearntImplicateIsImplicate) {
  // (¬x1 + ¬w + y3) must be an implicate of the circuit CNF: adding
  // its negation {x1, w, ¬y3} as units is UNSAT.
  CnfFormula f = circuit();
  f.add_unit(pos(0));
  f.add_unit(pos(1));
  f.add_unit(neg(4));
  EXPECT_FALSE(testing::brute_force_satisfiable(f));
}

// --- option ablations: every configuration must stay sound -----------

struct AblationCase {
  const char* name;
  SolverOptions opts;
};

class SolverAblationTest : public ::testing::TestWithParam<AblationCase> {};

TEST_P(SolverAblationTest, SoundOnSatAndUnsatFamilies) {
  const SolverOptions& opts = GetParam().opts;
  {
    Solver s(opts);
    (void)s.add_formula(pigeonhole(4));
    EXPECT_EQ(s.solve(), SolveResult::kUnsat) << GetParam().name;
  }
  if (opts.clause_learning) {
    // Re-run with DRAT tracing: the refutation must check out under
    // every configuration that records clauses.
    EXPECT_TRUE(testing::verify_unsat(pigeonhole(4), {}, opts))
        << GetParam().name;
  }
  {
    CnfFormula f = planted_ksat(25, 90, 3, 77);
    Solver s(opts);
    (void)s.add_formula(f);
    ASSERT_EQ(s.solve(), SolveResult::kSat) << GetParam().name;
    EXPECT_TRUE(
        f.is_satisfied_by(testing::complete_model(s.model(), f.num_vars())));
  }
  {
    CnfFormula f = parity_chain(10, false);
    Solver s(opts);
    (void)s.add_formula(f);
    ASSERT_EQ(s.solve(), SolveResult::kSat) << GetParam().name;
    EXPECT_TRUE(
        f.is_satisfied_by(testing::complete_model(s.model(), f.num_vars())));
  }
}

SolverOptions make_opts(BacktrackMode bt, bool learn, DeletionPolicy del,
                        bool restarts, double rand_freq, bool minimize) {
  SolverOptions o;
  o.backtrack = bt;
  o.clause_learning = learn;
  o.deletion = del;
  o.restarts = restarts;
  o.random_var_freq = rand_freq;
  o.minimize_learnt = minimize;
  return o;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, SolverAblationTest,
    ::testing::Values(
        AblationCase{"default", SolverOptions{}},
        AblationCase{"chronological",
                     make_opts(BacktrackMode::kChronological, true,
                               DeletionPolicy::kActivity, true, 0.02, true)},
        AblationCase{"no_learning",
                     make_opts(BacktrackMode::kNonChronological, false,
                               DeletionPolicy::kActivity, true, 0.02, true)},
        AblationCase{"keep_everything",
                     make_opts(BacktrackMode::kNonChronological, true,
                               DeletionPolicy::kNever, true, 0.02, true)},
        AblationCase{"relevance",
                     make_opts(BacktrackMode::kNonChronological, true,
                               DeletionPolicy::kRelevance, true, 0.02, true)},
        AblationCase{"size_bounded",
                     make_opts(BacktrackMode::kNonChronological, true,
                               DeletionPolicy::kSizeBounded, true, 0.02, true)},
        AblationCase{"no_restarts",
                     make_opts(BacktrackMode::kNonChronological, true,
                               DeletionPolicy::kActivity, false, 0.02, true)},
        AblationCase{"no_randomization",
                     make_opts(BacktrackMode::kNonChronological, true,
                               DeletionPolicy::kActivity, true, 0.0, true)},
        AblationCase{"heavy_randomization",
                     make_opts(BacktrackMode::kNonChronological, true,
                               DeletionPolicy::kActivity, true, 0.5, true)},
        AblationCase{"no_minimization",
                     make_opts(BacktrackMode::kNonChronological, true,
                               DeletionPolicy::kActivity, true, 0.02, false)},
        AblationCase{"dpll_like",
                     make_opts(BacktrackMode::kChronological, false,
                               DeletionPolicy::kActivity, false, 0.0, false)}),
    [](const ::testing::TestParamInfo<AblationCase>& info) {
      return info.param.name;
    });

// --- DRAT certification of this suite's UNSAT cases -------------------

TEST(SolverProofCertificationTest, SuiteUnsatCasesHaveCheckableProofs) {
  {
    CnfFormula f(1);  // contradictory units
    f.add_unit(pos(0));
    f.add_unit(neg(0));
    EXPECT_TRUE(testing::verify_unsat(f));
  }
  {
    CnfFormula f(2);  // smallest full contradiction
    f.add_binary(pos(0), pos(1));
    f.add_binary(pos(0), neg(1));
    f.add_binary(neg(0), pos(1));
    f.add_binary(neg(0), neg(1));
    EXPECT_TRUE(testing::verify_unsat(f));
  }
  EXPECT_TRUE(testing::verify_unsat(pigeonhole(5)));
  EXPECT_TRUE(testing::verify_unsat(dubois(10)));
}

TEST(SolverProofCertificationTest, AssumptionUnsatCasesHaveCheckableProofs) {
  {
    CnfFormula f(2);  // (a + b) under {¬a, ¬b}
    f.add_binary(pos(0), pos(1));
    EXPECT_TRUE(testing::verify_unsat(f, {neg(0), neg(1)}));
  }
  {
    CnfFormula f(3);  // (¬a + ¬b) under {a, b, c}
    f.add_binary(neg(0), neg(1));
    EXPECT_TRUE(testing::verify_unsat(f, {pos(0), pos(1), pos(2)}));
  }
}

// --- stats sanity -----------------------------------------------------

TEST(SolverStatsTest, CountersMoveMonotonically) {
  Solver s;
  (void)s.add_formula(pigeonhole(5));
  ASSERT_NE(s.solve(), SolveResult::kUnknown);
  const SolverStats& st = s.stats();
  EXPECT_GT(st.decisions, 0);
  EXPECT_GT(st.propagations, 0);
  EXPECT_GT(st.conflicts, 0);
  EXPECT_GT(st.learnt_clauses, 0);
  EXPECT_GE(st.max_decision_level, 1);
  EXPECT_FALSE(st.summary().empty());
}

}  // namespace
}  // namespace sateda::sat
