/// \file inprocess_schedule_test.cpp
/// \brief Tests for the self-throttling inprocessing scheduler: the
///        unit-level plan/record/observe contract (tick budgets,
///        utility ledger, geometric backoff) and the solver-level entry
///        gate (zero-conflict solves never inprocess, the entry round
///        fires as soon as the instance proves nontrivial).
#include "sat/inprocess/schedule.hpp"

#include <gtest/gtest.h>

#include "cnf/generators.hpp"
#include "sat/solver.hpp"

namespace sateda::sat {
namespace {

SolverStats at(std::int64_t props, std::int64_t conflicts) {
  SolverStats s;
  s.propagations = props;
  s.conflicts = conflicts;
  return s;
}

TEST(InprocessScheduleTest, EntryBudgetScalesWithFormula) {
  InprocessScheduler sched;
  InprocessOptions opts;
  sched.observe(at(0, 0), opts);
  const PassPlan bve =
      sched.plan(InprocessPass::kBve, at(0, 1), /*num_problem_clauses=*/100,
                 /*binary_fraction=*/0.0, opts);
  EXPECT_TRUE(bve.run);
  EXPECT_EQ(bve.ticks, 8 * opts.entry_ticks_per_clause * 100);
  // Probe ticks are propagations: the entry round is capped by the
  // demonstrated search effort, floored at a quarter of min_ticks.
  const PassPlan probe =
      sched.plan(InprocessPass::kProbe, at(0, 1), 100, 0.0, opts);
  EXPECT_TRUE(probe.run);
  EXPECT_EQ(probe.ticks, opts.min_ticks / 4);
}

TEST(InprocessScheduleTest, SteadyStateBudgetTracksSearchEffort) {
  InprocessScheduler sched;
  InprocessOptions opts;
  sched.observe(at(0, 0), opts);
  ASSERT_TRUE(sched.plan(InprocessPass::kProbe, at(0, 1), 50, 0.0, opts).run);
  sched.record(InprocessPass::kProbe, at(0, 1), /*ticks=*/500,
               /*reductions=*/3);
  // 400k propagations later the pass may spend tick_share of them.
  sched.observe(at(400000, 900), opts);
  const PassPlan plan =
      sched.plan(InprocessPass::kProbe, at(400000, 900), 50, 0.0, opts);
  EXPECT_TRUE(plan.run);
  EXPECT_EQ(plan.ticks,
            static_cast<std::int64_t>(opts.tick_share * 400000.0));
  // A near-idle interval falls back to the min_ticks floor.
  sched.record(InprocessPass::kProbe, at(400000, 900), plan.ticks, 1);
  sched.observe(at(405000, 910), opts);
  const PassPlan idle =
      sched.plan(InprocessPass::kProbe, at(405000, 910), 50, 0.0, opts);
  EXPECT_TRUE(idle.run);
  EXPECT_EQ(idle.ticks, opts.min_ticks);
}

TEST(InprocessScheduleTest, BudgetNeverExceedsOptionCap) {
  InprocessScheduler sched;
  InprocessOptions opts;
  opts.probe_budget = 1000;
  sched.observe(at(0, 0), opts);
  ASSERT_TRUE(sched.plan(InprocessPass::kProbe, at(0, 1), 50, 0.0, opts).run);
  sched.record(InprocessPass::kProbe, at(0, 1), 500, 1);
  sched.observe(at(10'000'000, 1000), opts);
  const PassPlan plan =
      sched.plan(InprocessPass::kProbe, at(10'000'000, 1000), 50, 0.0, opts);
  EXPECT_EQ(plan.ticks, 1000);
}

TEST(InprocessScheduleTest, UselessRunsBackOffGeometrically) {
  InprocessScheduler sched;
  InprocessOptions opts;
  std::int64_t props = 0;
  std::int64_t skipped_rounds = 0;
  std::int64_t runs = 0;
  // 40 boundaries of a pass that derives nothing, each followed by a
  // measurable interval with an unchanged conflict rate.  The utility
  // EWMA sinks below the threshold and the backoff doubles after every
  // re-probe, so skips must come to dominate the boundaries.
  for (int round = 0; round < 40; ++round) {
    sched.observe(at(props, props / 100), opts);
    const PassPlan plan =
        sched.plan(InprocessPass::kVivify, at(props, props / 100), 50, 0.0,
                   opts);
    if (plan.run) {
      ++runs;
      sched.record(InprocessPass::kVivify, at(props, props / 100), plan.ticks,
                   /*reductions=*/0);
    } else {
      ++skipped_rounds;
    }
    props += 50000;
  }
  EXPECT_LT(sched.utility(InprocessPass::kVivify), 0.0);
  EXPECT_GT(sched.backoff(InprocessPass::kVivify), 1);
  EXPECT_EQ(sched.skips(InprocessPass::kVivify), skipped_rounds);
  EXPECT_GT(skipped_rounds, runs);
  // The backoff re-probes rather than retiring the pass outright.
  EXPECT_GT(runs, 1);
  EXPECT_LE(sched.backoff(InprocessPass::kVivify), opts.max_backoff);
}

TEST(InprocessScheduleTest, SelfThrottleOffRestoresFlatBudgets) {
  InprocessScheduler sched;
  InprocessOptions opts;
  opts.self_throttle = false;
  sched.observe(at(0, 0), opts);
  const PassPlan plan = sched.plan(InprocessPass::kBve, at(0, 0), 50, 0.0, opts);
  EXPECT_TRUE(plan.run);
  EXPECT_EQ(plan.ticks, opts.bve_budget);
}

TEST(InprocessScheduleTest, BinaryHeavyDatabaseGatesEntryRound) {
  // Circuit-shaped databases (Tseitin encodings are mostly implicit
  // binaries) skip the formula-scaled entry round; the pass's first
  // actual run later uses the steady-state search-share budget.
  InprocessScheduler sched;
  InprocessOptions opts;
  sched.observe(at(0, 0), opts);
  const PassPlan gated = sched.plan(InprocessPass::kBve, at(0, 1), 1000,
                                    /*binary_fraction=*/0.7, opts);
  EXPECT_FALSE(gated.run);
  EXPECT_EQ(sched.skips(InprocessPass::kBve), 1);
  // Later rounds: the pass may run, but on the steady-share budget,
  // not the 8x formula-scaled entry budget.
  sched.observe(at(200000, 500), opts);
  const PassPlan later = sched.plan(InprocessPass::kBve, at(200000, 500), 1000,
                                    0.7, opts);
  EXPECT_TRUE(later.run);
  EXPECT_EQ(later.ticks,
            static_cast<std::int64_t>(opts.tick_share * 200000.0));
  // A sparse (non-binary) database is untouched by the gate.
  InprocessScheduler sched2;
  sched2.observe(at(0, 0), opts);
  const PassPlan entry = sched2.plan(InprocessPass::kBve, at(0, 1), 1000,
                                     /*binary_fraction=*/0.0, opts);
  EXPECT_TRUE(entry.run);
  EXPECT_EQ(entry.ticks, 8 * opts.entry_ticks_per_clause * 1000);
}

TEST(InprocessScheduleTest, ZeroConflictSolveNeverInprocesses) {
  // A parity chain solves by pure propagation.  With the default
  // entry gate (entry_conflicts=1) no pass may ever run — this is the
  // fix for the parity200 cliff recorded in BENCH_solver.json history.
  SolverOptions opts;
  opts.inprocess.enabled = true;
  opts.inprocess.interval = 1;
  Solver solver(opts);
  ASSERT_TRUE(solver.add_formula(parity_chain(50, true)));
  ASSERT_EQ(solver.solve(), SolveResult::kSat);
  EXPECT_EQ(solver.stats().conflicts, 0);
  EXPECT_EQ(solver.stats().inprocess_runs, 0);
  EXPECT_EQ(solver.stats().probe_runs, 0);
  EXPECT_EQ(solver.stats().bve_runs, 0);
}

TEST(InprocessScheduleTest, EntryRoundFiresOnceSearchProvesNontrivial) {
  // dubois produces conflicts immediately; the entry round must fire
  // (via the forced restart) and its BVE collapse the chain.
  SolverOptions opts;
  opts.inprocess.enabled = true;
  Solver solver(opts);
  ASSERT_TRUE(solver.add_formula(dubois(15)));
  ASSERT_EQ(solver.solve(), SolveResult::kUnsat);
  EXPECT_GT(solver.stats().inprocess_runs, 0);
  EXPECT_GT(solver.stats().eliminated_vars, 0);
}

}  // namespace
}  // namespace sateda::sat
