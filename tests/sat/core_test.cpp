/// \file core_test.cpp
/// \brief MUS extraction (sat/core): minimized assumption cores are
///        UNSAT, subsets of the input, and — when the deletion pass
///        reports minimality — irreducible, cross-checked against
///        brute-force subset enumeration.
#include "sat/core/mus.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "cnf/generators.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace {

using namespace sateda;
using sateda::testing::brute_force_satisfiable;

std::unique_ptr<sat::SatEngine> engine_for(const CnfFormula& f) {
  auto solver = std::make_unique<sat::Solver>();
  EXPECT_TRUE(solver->add_formula(f));
  return solver;
}

/// Conjoins \p f with the unit clauses of \p assumptions.
CnfFormula with_units(const CnfFormula& f, const std::vector<Lit>& lits) {
  CnfFormula g = f;
  for (Lit l : lits) g.add_unit(l);
  return g;
}

/// Brute-force MUS check: \p core with \p f is UNSAT and every proper
/// subset (drop one literal) is SAT.
void expect_is_mus(const CnfFormula& f, const std::vector<Lit>& core) {
  EXPECT_FALSE(brute_force_satisfiable(with_units(f, core)))
      << "core is not UNSAT";
  for (std::size_t skip = 0; skip < core.size(); ++skip) {
    std::vector<Lit> sub;
    for (std::size_t i = 0; i < core.size(); ++i) {
      if (i != skip) sub.push_back(core[i]);
    }
    EXPECT_TRUE(brute_force_satisfiable(with_units(f, sub)))
        << "dropping " << to_string(core[skip]) << " stays UNSAT: the core "
        << "is not minimal";
  }
}

TEST(CoreTest, SatUnderAssumptionsYieldsNoCore) {
  CnfFormula f(2);
  f.add_clause({pos(0), pos(1)});
  auto e = engine_for(f);
  sat::core::CoreResult r = sat::core::extract_core(*e, {pos(0)});
  EXPECT_FALSE(r.unsat);
  EXPECT_TRUE(r.core.empty());
}

TEST(CoreTest, KnownMusIsRecovered) {
  // Selector s_i activates clause C_i.  C_0 = x, C_1 = ¬x form the
  // only contradiction; C_2, C_3 are satisfiable padding.
  CnfFormula f(5);  // x = 0, selectors 1..4
  f.add_clause({neg(1), pos(0)});
  f.add_clause({neg(2), neg(0)});
  f.add_clause({neg(3), pos(0)});   // agrees with C_0
  f.add_clause({neg(4), pos(0)});
  auto e = engine_for(f);
  const std::vector<Lit> all = {pos(1), pos(2), pos(3), pos(4)};
  sat::core::CoreResult r = sat::core::extract_core(*e, all);
  ASSERT_TRUE(r.unsat);
  ASSERT_TRUE(r.minimal);
  // The MUS must contain the ¬x activator plus exactly one x activator.
  std::sort(r.core.begin(), r.core.end());
  EXPECT_EQ(r.core.size(), 2u);
  EXPECT_TRUE(std::find(r.core.begin(), r.core.end(), pos(2)) !=
              r.core.end());
  expect_is_mus(f, r.core);
}

TEST(CoreTest, ChainContradictionMinimizesToChainLinks) {
  // s_i activates x_i → x_{i+1}; extra selectors activate the ends
  // x_0 and ¬x_4.  Every activator participates: the MUS is everything.
  const int n = 4;
  CnfFormula f(2 * n + 2);  // x_0..x_4 = 0..4, selectors 5..10
  int sel = n + 1;
  std::vector<Lit> assumptions;
  for (int i = 0; i < n; ++i) {
    f.add_clause({neg(sel), neg(i), pos(i + 1)});
    assumptions.push_back(pos(sel++));
  }
  f.add_clause({neg(sel), pos(0)});
  assumptions.push_back(pos(sel++));
  f.add_clause({neg(sel), neg(n)});
  assumptions.push_back(pos(sel++));
  auto e = engine_for(f);
  sat::core::CoreResult r = sat::core::extract_core(*e, assumptions);
  ASSERT_TRUE(r.unsat);
  ASSERT_TRUE(r.minimal);
  EXPECT_EQ(r.core.size(), assumptions.size());
  expect_is_mus(f, r.core);
}

TEST(CoreTest, RandomizedMinimizedCoresAreMusesByBruteForce) {
  // Random activation instances: each selector guards a random short
  // clause over few variables, so UNSAT-under-all-selectors is common
  // and every minimized core can be verified by subset enumeration.
  std::mt19937_64 rng(20260806);
  int unsat_seen = 0;
  for (int round = 0; round < 40; ++round) {
    const int num_x = 4;
    const int num_sel = 8;
    CnfFormula f(num_x + num_sel);
    std::vector<Lit> assumptions;
    std::uniform_int_distribution<int> var_dist(0, num_x - 1);
    std::uniform_int_distribution<int> len_dist(1, 2);
    std::uniform_int_distribution<int> sign_dist(0, 1);
    for (int s = 0; s < num_sel; ++s) {
      std::vector<Lit> cl = {neg(num_x + s)};
      const int len = len_dist(rng);
      for (int j = 0; j < len; ++j) {
        const int v = var_dist(rng);
        cl.push_back(sign_dist(rng) ? pos(v) : neg(v));
      }
      f.add_clause(cl);
      assumptions.push_back(pos(num_x + s));
    }
    auto e = engine_for(f);
    sat::core::CoreResult r = sat::core::extract_core(*e, assumptions);
    if (!r.unsat) {
      EXPECT_TRUE(brute_force_satisfiable(with_units(f, assumptions)));
      continue;
    }
    ++unsat_seen;
    ASSERT_TRUE(r.minimal);
    // Core ⊆ assumptions.
    for (Lit l : r.core) {
      EXPECT_TRUE(std::find(assumptions.begin(), assumptions.end(), l) !=
                  assumptions.end());
    }
    expect_is_mus(f, r.core);
    EXPECT_LE(r.stats.final_size, r.stats.initial_size);
  }
  EXPECT_GT(unsat_seen, 5) << "random family too easy; tighten generator";
}

TEST(CoreTest, SolveBudgetReturnsSoundButUnminimizedCore) {
  CnfFormula f(4);
  f.add_clause({neg(1), pos(0)});
  f.add_clause({neg(2), neg(0)});
  f.add_clause({neg(3), pos(0)});
  auto e = engine_for(f);
  sat::core::CoreMinimizeOptions opts;
  opts.max_solve_calls = 1;  // enough to establish UNSAT, nothing more
  sat::core::CoreResult r =
      sat::core::extract_core(*e, {pos(1), pos(2), pos(3)}, opts);
  ASSERT_TRUE(r.unsat);
  EXPECT_FALSE(r.minimal);
  EXPECT_FALSE(brute_force_satisfiable(with_units(f, r.core)));
}

TEST(CoreTest, MinimizeCoreShrinksAnOverwideCore) {
  CnfFormula f(4);
  f.add_clause({neg(1), pos(0)});
  f.add_clause({neg(2), neg(0)});
  f.add_clause({neg(3), pos(0)});
  auto e = engine_for(f);
  // Hand the minimizer the full assumption set as a (valid) core.
  sat::core::CoreResult r =
      sat::core::minimize_core(*e, {pos(1), pos(2), pos(3)});
  ASSERT_TRUE(r.unsat);
  ASSERT_TRUE(r.minimal);
  EXPECT_EQ(r.core.size(), 2u);
  expect_is_mus(f, r.core);
  EXPECT_FALSE(r.stats.summary().empty());
}

TEST(CoreTest, ExtractionWithInprocessingEngineStaysSound) {
  // x2 is a cheap BVE pivot; with inprocessing firing at every restart
  // boundary the extractor must freeze the assumption variables so the
  // dozens of subset queries keep answering the same formula.
  CnfFormula f(4);
  f.add_binary(neg(0), pos(2));
  f.add_binary(neg(1), neg(2));
  sat::SolverOptions opts;
  opts.inprocess.enabled = true;
  opts.inprocess.interval = 0;
  auto solver = std::make_unique<sat::Solver>(opts);
  ASSERT_TRUE(solver->add_formula(f));
  const std::vector<Lit> assumptions = {pos(0), pos(1), pos(3)};
  sat::core::CoreResult r = sat::core::extract_core(*solver, assumptions);
  ASSERT_TRUE(r.unsat);
  expect_is_mus(f, r.core);
  for (Lit a : assumptions) {
    EXPECT_TRUE(solver->is_frozen(a.var()));
    EXPECT_FALSE(solver->is_eliminated(a.var()));
  }
}

}  // namespace
