#include "sat/proof.hpp"

#include <gtest/gtest.h>

#include "cnf/generators.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace sateda::sat {
namespace {

/// Solves \p f with proof logging and returns {result, proof}.
std::pair<SolveResult, Proof> solve_with_proof(const CnfFormula& f,
                                               SolverOptions opts = {}) {
  Proof proof;
  Solver s(opts);
  s.set_proof_logger(&proof);
  (void)s.add_formula(f);
  return {s.solve(), std::move(proof)};
}

TEST(ProofTest, TrivialContradictionYieldsRefutation) {
  CnfFormula f(1);
  f.add_unit(pos(0));
  f.add_unit(neg(0));
  auto [result, proof] = solve_with_proof(f);
  EXPECT_EQ(result, SolveResult::kUnsat);
  EXPECT_TRUE(proof.derives_empty_clause());
  ProofCheckResult check = check_rup_proof(f, proof);
  EXPECT_TRUE(check.valid) << check.message;
  EXPECT_TRUE(check.refutation);
}

TEST(ProofTest, PigeonholeRefutationVerifies) {
  CnfFormula f = pigeonhole(5);
  auto [result, proof] = solve_with_proof(f);
  ASSERT_EQ(result, SolveResult::kUnsat);
  ASSERT_TRUE(proof.derives_empty_clause());
  ProofCheckResult check = check_rup_proof(f, proof);
  EXPECT_TRUE(check.valid) << check.message << " at step "
                           << check.failed_step;
  EXPECT_TRUE(check.refutation);
}

TEST(ProofTest, SatInstanceProducesNoRefutation) {
  CnfFormula f = planted_ksat(30, 100, 3, 3);
  auto [result, proof] = solve_with_proof(f);
  ASSERT_EQ(result, SolveResult::kSat);
  EXPECT_FALSE(proof.derives_empty_clause());
  // Whatever was derived along the way must still be RUP-valid.
  ProofCheckResult check = check_rup_proof(f, proof);
  EXPECT_TRUE(check.valid) << check.message;
  EXPECT_FALSE(check.refutation);
}

TEST(ProofTest, BogusProofIsRejected) {
  CnfFormula f(3);
  f.add_binary(pos(0), pos(1));
  Proof proof;
  proof.on_derive({pos(2)});  // x2 is not implied by anything
  ProofCheckResult check = check_rup_proof(f, proof);
  EXPECT_FALSE(check.valid);
  EXPECT_EQ(check.failed_step, 0u);
}

TEST(ProofTest, DratSerializationRoundsTheFormat) {
  Proof proof;
  proof.on_derive({pos(0), neg(2)});
  proof.on_delete({pos(0), neg(2)});
  proof.on_derive({});
  EXPECT_EQ(proof.to_drat_string(), "1 -3 0\nd 1 -3 0\n0\n");
}

TEST(ProofTest, DeletionsDoNotBreakVerification) {
  // Aggressive deletion policy exercises the 'd' lines.
  SolverOptions opts;
  opts.deletion = DeletionPolicy::kSizeBounded;
  opts.size_bound = 2;
  CnfFormula f = pigeonhole(6);
  auto [result, proof] = solve_with_proof(f, opts);
  ASSERT_EQ(result, SolveResult::kUnsat);
  bool has_deletion = false;
  for (const auto& s : proof.steps()) has_deletion |= s.deletion;
  EXPECT_TRUE(has_deletion);
  ProofCheckResult check = check_rup_proof(f, proof);
  EXPECT_TRUE(check.valid) << check.message << " at step "
                           << check.failed_step;
  EXPECT_TRUE(check.refutation);
}

class ProofPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProofPropertyTest, EveryUnsatRunVerifies) {
  CnfFormula f = random_3sat(20, 5.2, GetParam());  // overconstrained
  auto [result, proof] = solve_with_proof(f);
  if (result != SolveResult::kUnsat) {
    EXPECT_TRUE(testing::brute_force_satisfiable(f));
    return;
  }
  EXPECT_FALSE(testing::brute_force_satisfiable(f));
  ProofCheckResult check = check_rup_proof(f, proof);
  EXPECT_TRUE(check.valid) << "seed " << GetParam() << ": " << check.message
                           << " at step " << check.failed_step;
  EXPECT_TRUE(check.refutation);
}

TEST_P(ProofPropertyTest, ChronologicalModeAlsoVerifies) {
  SolverOptions opts;
  opts.backtrack = BacktrackMode::kChronological;
  CnfFormula f = random_3sat(18, 5.5, GetParam() + 31);
  auto [result, proof] = solve_with_proof(f, opts);
  if (result != SolveResult::kUnsat) return;
  ProofCheckResult check = check_rup_proof(f, proof);
  EXPECT_TRUE(check.valid) << check.message;
  EXPECT_TRUE(check.refutation);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProofPropertyTest,
                         ::testing::Range<std::uint64_t>(5000, 5016));

}  // namespace
}  // namespace sateda::sat
