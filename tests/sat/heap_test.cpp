#include "sat/heap.hpp"

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

namespace sateda::sat {
namespace {

TEST(VarOrderHeapTest, PopsInActivityOrder) {
  std::vector<double> activity = {5.0, 1.0, 9.0, 3.0, 7.0};
  VarOrderHeap heap(activity);
  for (Var v = 0; v < 5; ++v) heap.insert(v);
  std::vector<Var> order;
  while (!heap.empty()) order.push_back(heap.pop());
  EXPECT_EQ(order, (std::vector<Var>{2, 4, 0, 3, 1}));
}

TEST(VarOrderHeapTest, ContainsTracksMembership) {
  std::vector<double> activity = {1.0, 2.0};
  VarOrderHeap heap(activity);
  EXPECT_FALSE(heap.contains(0));
  heap.insert(0);
  EXPECT_TRUE(heap.contains(0));
  heap.pop();
  EXPECT_FALSE(heap.contains(0));
}

TEST(VarOrderHeapTest, IncreasedRestoresOrder) {
  std::vector<double> activity = {1.0, 2.0, 3.0};
  VarOrderHeap heap(activity);
  for (Var v = 0; v < 3; ++v) heap.insert(v);
  activity[0] = 10.0;
  heap.increased(0);
  EXPECT_EQ(heap.pop(), 0);
  EXPECT_EQ(heap.pop(), 2);
  EXPECT_EQ(heap.pop(), 1);
}

TEST(VarOrderHeapTest, RebuildAfterGlobalRescale) {
  std::vector<double> activity = {4.0, 8.0, 2.0, 6.0};
  VarOrderHeap heap(activity);
  for (Var v = 0; v < 4; ++v) heap.insert(v);
  // Rescale inverts nothing (monotone), but rebuild must tolerate it.
  for (double& a : activity) a *= 1e-3;
  heap.rebuild();
  EXPECT_EQ(heap.pop(), 1);
  EXPECT_EQ(heap.pop(), 3);
}

TEST(VarOrderHeapTest, RandomizedAgainstSort) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  for (int round = 0; round < 20; ++round) {
    const int n = 50;
    std::vector<double> activity(n);
    for (double& a : activity) a = dist(rng);
    VarOrderHeap heap(activity);
    for (Var v = 0; v < n; ++v) heap.insert(v);
    std::vector<Var> expected(n);
    for (Var v = 0; v < n; ++v) expected[v] = v;
    std::sort(expected.begin(), expected.end(), [&](Var a, Var b) {
      return activity[a] > activity[b];
    });
    for (Var v : expected) EXPECT_EQ(heap.pop(), v);
  }
}

TEST(VarOrderHeapTest, InterleavedInsertPop) {
  std::vector<double> activity(10, 0.0);
  for (Var v = 0; v < 10; ++v) activity[v] = v;
  VarOrderHeap heap(activity);
  heap.insert(3);
  heap.insert(7);
  EXPECT_EQ(heap.pop(), 7);
  heap.insert(9);
  heap.insert(1);
  EXPECT_EQ(heap.pop(), 9);
  EXPECT_EQ(heap.pop(), 3);
  EXPECT_EQ(heap.pop(), 1);
  EXPECT_TRUE(heap.empty());
}

}  // namespace
}  // namespace sateda::sat
