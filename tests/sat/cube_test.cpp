/// \file cube_test.cpp
/// \brief Cube-and-conquer suite: iCNF round-trips, split-tree
///        completeness and closing-clause order, splitter covers,
///        conquer verdicts, stitched-proof certification (including
///        across forced mid-conquer arena GCs), and work-stealing
///        determinism.  Built as its own binary so the CI
///        thread-sanitizer job can hammer the stealing paths alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cnf/generators.hpp"
#include "sat/cube/conquer.hpp"
#include "sat/cube/cube.hpp"
#include "sat/cube/splitter.hpp"
#include "sat/drat_check.hpp"
#include "sat/engine.hpp"
#include "sat/solver.hpp"

namespace {

using namespace sateda;
using sat::SolveResult;
using sat::cube::ConquerOptions;
using sat::cube::ConquerPool;
using sat::cube::ConquerResult;
using sat::cube::Cube;
using sat::cube::CubeTree;
using sat::cube::SplitOptions;
using sat::cube::StealQueue;
using sat::cube::split_formula;

// Complete depth-2 cover over vars 0 and 1: {0,1},{0,-1},{-0}.
std::vector<Cube> depth2_cover() {
  return {{pos(0), pos(1)}, {pos(0), neg(1)}, {neg(0)}};
}

// ---------------------------------------------------------------- iCNF

TEST(CubeIo, WriteReadRoundTrips) {
  const std::vector<Cube> cubes = {
      {pos(0), neg(2), pos(4)}, {neg(0)}, {pos(0), pos(2)}};
  std::stringstream ss;
  sat::cube::write_cubes(ss, cubes);
  EXPECT_EQ(sat::cube::read_cubes(ss), cubes);
}

TEST(CubeIo, EmptyCubeRoundTrips) {
  // The degenerate "one cube covering everything" set.
  const std::vector<Cube> cubes = {{}};
  std::stringstream ss;
  sat::cube::write_cubes(ss, cubes);
  EXPECT_EQ(sat::cube::read_cubes(ss), cubes);
}

TEST(CubeIo, CommentAndProblemLinesIgnored) {
  std::stringstream ss("c generated elsewhere\np inccnf\na 1 -2 0\na -1 0\n");
  const std::vector<Cube> cubes = sat::cube::read_cubes(ss);
  ASSERT_EQ(cubes.size(), 2u);
  EXPECT_EQ(cubes[0], (Cube{pos(0), neg(1)}));
  EXPECT_EQ(cubes[1], (Cube{neg(0)}));
}

TEST(CubeIo, MalformedLinesThrow) {
  {
    std::stringstream ss("a 1 2\n");  // missing 0 terminator
    EXPECT_THROW(sat::cube::read_cubes(ss), std::runtime_error);
  }
  {
    std::stringstream ss("a 1 x 0\n");  // non-integer literal
    EXPECT_THROW(sat::cube::read_cubes(ss), std::runtime_error);
  }
}

// ----------------------------------------------------------- CubeTree

TEST(CubeTreeTest, CompleteCoverIsComplete) {
  const CubeTree t = CubeTree::build(depth2_cover());
  std::string why;
  EXPECT_TRUE(t.complete(&why)) << why;
  EXPECT_EQ(t.num_leaves(), 3u);
  EXPECT_EQ(t.max_depth(), 2);
}

TEST(CubeTreeTest, MissingSiblingIsIncomplete) {
  // {0,1} has no {0,-1} sibling: the corner x0 ∧ ¬x1 is uncovered.
  const CubeTree t = CubeTree::build({{pos(0), pos(1)}, {neg(0)}});
  std::string why;
  EXPECT_FALSE(t.complete(&why));
  EXPECT_FALSE(why.empty());
}

TEST(CubeTreeTest, PrefixCubeIsIncomplete) {
  // {0} is a strict prefix of {0,1}: the "leaf" is also internal.
  const CubeTree t =
      CubeTree::build({{pos(0)}, {pos(0), pos(1)}, {neg(0)}});
  EXPECT_FALSE(t.complete(nullptr));
}

TEST(CubeTreeTest, MismatchedSplitVarIsIncomplete) {
  // Siblings must split one variable: x1 vs ¬x2 is not a split.
  const CubeTree t = CubeTree::build({{pos(0)}, {neg(1)}});
  EXPECT_FALSE(t.complete(nullptr));
}

TEST(CubeTreeTest, ClosingClausesEndWithEmptyClause) {
  const CubeTree t = CubeTree::build(depth2_cover());
  const std::vector<std::vector<Lit>> closing = t.closing_clauses();
  // Internal nodes: root and the node at cube {x0} — two clauses.
  ASSERT_EQ(closing.size(), 2u);
  EXPECT_EQ(closing[0], (std::vector<Lit>{neg(0)}));  // ¬(x0)
  EXPECT_TRUE(closing[1].empty());                    // root: ¬(⊤) = {}
}

TEST(CubeTreeTest, ClosingClausesArePostorder) {
  // Full binary tree over vars 0..2: 8 leaves, 7 internal nodes.
  std::vector<Cube> cubes;
  for (int mask = 0; mask < 8; ++mask) {
    Cube c;
    for (Var v = 0; v < 3; ++v) {
      c.push_back((mask >> v) & 1 ? pos(v) : neg(v));
    }
    cubes.push_back(c);
  }
  const CubeTree t = CubeTree::build(cubes);
  ASSERT_TRUE(t.complete(nullptr));
  const std::vector<std::vector<Lit>> closing = t.closing_clauses();
  ASSERT_EQ(closing.size(), 7u);
  EXPECT_TRUE(closing.back().empty());
  // Postorder: every internal node's clause (= the negated cube, so
  // |clause| = node depth) appears only after both one-longer
  // extensions of it have appeared — children close before parents.
  auto seen_at = [&](const std::vector<Lit>& clause) {
    return std::find(closing.begin(), closing.end(), clause) -
           closing.begin();
  };
  for (const std::vector<Lit>& clause : closing) {
    if (clause.size() >= 2) continue;  // deepest internal layer
    for (bool negate : {false, true}) {
      std::vector<Lit> child = clause;
      const Var v = static_cast<Var>(clause.size());
      child.insert(child.begin(), negate ? pos(v) : neg(v));
      // ¬(cube ∧ l) = ¬cube ∨ ¬l; our trees negate element-wise with
      // the split literal first, matching closing_clauses' layout.
      const auto child_pos = seen_at(child);
      if (child_pos < static_cast<long>(closing.size())) {
        EXPECT_LT(child_pos, seen_at(clause));
      }
    }
  }
}

// ----------------------------------------------------------- splitter

TEST(SplitterTest, EmitsCompleteCoverOnUnsat) {
  const CnfFormula f = pigeonhole(5);
  SplitOptions opts;
  opts.cutoff = 4;
  opts.refute_conflicts = 0;  // pure static cutoff
  const sat::cube::SplitResult sr = split_formula(f, opts);
  ASSERT_EQ(sr.status, SolveResult::kUnknown);
  ASSERT_FALSE(sr.cubes.empty());
  std::string why;
  EXPECT_TRUE(CubeTree::build(sr.cubes).complete(&why)) << why;
  EXPECT_EQ(sr.stats.cubes_generated,
            static_cast<std::int64_t>(sr.cubes.size()));
}

TEST(SplitterTest, DynamicCutoffRetiresRefutedBranches) {
  const CnfFormula f = pigeonhole(4);
  SplitOptions opts;
  opts.cutoff = 8;
  opts.refute_conflicts = 5000;  // php4 branches die well within this
  const sat::cube::SplitResult sr = split_formula(f, opts);
  ASSERT_EQ(sr.status, SolveResult::kUnknown);
  EXPECT_GT(sr.stats.cubes_refuted_split, 0);
  EXPECT_TRUE(CubeTree::build(sr.cubes).complete(nullptr));
}

TEST(SplitterTest, FindsModelOnEasySatInstance) {
  const CnfFormula f = random_3sat(20, 2.0, 7);  // under-constrained
  SplitOptions opts;
  opts.cutoff = 6;
  const sat::cube::SplitResult sr = split_formula(f, opts);
  ASSERT_EQ(sr.status, SolveResult::kSat);
  std::vector<bool> bits(f.num_vars());
  for (Var v = 0; v < f.num_vars(); ++v) {
    bits[v] = static_cast<std::size_t>(v) < sr.model.size() &&
              sr.model[v].is_true();
  }
  EXPECT_TRUE(f.is_satisfied_by(bits));
}

// --------------------------------------------------------- StealQueue

TEST(StealQueueTest, DealsRoundRobinAndPopsOwnFrontFirst) {
  StealQueue q;
  q.deal(3, 9, /*seed=*/0);
  bool stolen = true;
  EXPECT_EQ(q.next(0, &stolen), 0);
  EXPECT_FALSE(stolen);
  EXPECT_EQ(q.next(0, &stolen), 3);
  EXPECT_FALSE(stolen);
  EXPECT_EQ(q.next(1, &stolen), 1);
  EXPECT_FALSE(stolen);
}

TEST(StealQueueTest, DrainedWorkerStealsEveryRemainingItem) {
  StealQueue q;
  q.deal(3, 9, /*seed=*/42);
  std::set<int> got;
  int own = 0;
  int stolen_count = 0;
  bool stolen = false;
  for (int item = q.next(0, &stolen); item >= 0;
       item = q.next(0, &stolen)) {
    EXPECT_TRUE(got.insert(item).second) << "duplicate item " << item;
    if (stolen) {
      ++stolen_count;
    } else {
      ++own;
    }
  }
  EXPECT_EQ(got.size(), 9u);  // nothing lost, nothing duplicated
  EXPECT_EQ(own, 3);          // own deque: 0, 3, 6
  EXPECT_EQ(stolen_count, 6);
  EXPECT_EQ(q.next(1, nullptr), -1);  // queue is empty for everyone
}

TEST(StealQueueTest, SameSeedSameOrder) {
  auto drain = [](std::uint64_t seed) {
    StealQueue q;
    q.deal(4, 16, seed);
    std::vector<int> order;
    for (int item = q.next(2, nullptr); item >= 0;
         item = q.next(2, nullptr)) {
      order.push_back(item);
    }
    return order;
  };
  EXPECT_EQ(drain(7), drain(7));
  // Different seeds are *allowed* to steal in a different order; the
  // determinism contract is on verdicts (ConquerTest below), not on
  // the steal sequence itself.
}

// ------------------------------------------------------------ conquer

ConquerOptions small_pool(int workers) {
  ConquerOptions opts;
  opts.num_workers = workers;
  return opts;
}

TEST(ConquerTest, RefutesAllCubesOfUnsatInstance) {
  const CnfFormula f = pigeonhole(4);
  ConquerPool pool(f, depth2_cover(), small_pool(2));
  const ConquerResult cr = pool.run();
  EXPECT_EQ(cr.result, SolveResult::kUnsat);
  EXPECT_EQ(cr.cube_stats.cubes_solved, 3);
}

TEST(ConquerTest, FindsModelInsideSomeCube) {
  const CnfFormula f = random_3sat(25, 3.0, 123);
  const std::vector<Cube> cubes = depth2_cover();
  ConquerPool pool(f, cubes, small_pool(2));
  const ConquerResult cr = pool.run();
  ASSERT_EQ(cr.result, SolveResult::kSat);
  ASSERT_GE(cr.sat_cube, 0);
  std::vector<bool> bits(f.num_vars());
  for (Var v = 0; v < f.num_vars(); ++v) {
    bits[v] = static_cast<std::size_t>(v) < cr.model.size() &&
              cr.model[v].is_true();
  }
  EXPECT_TRUE(f.is_satisfied_by(bits));
  // The model must sit inside the winning cube.
  for (Lit l : cubes[static_cast<std::size_t>(cr.sat_cube)]) {
    EXPECT_EQ(cr.model[l.var()], l.negative() ? l_false : l_true);
  }
}

TEST(ConquerTest, VerdictInvariantUnderStealSeedsAndWorkerCounts) {
  const CnfFormula unsat = pigeonhole(4);
  const CnfFormula satf = random_3sat(25, 3.0, 123);
  for (const std::uint64_t seed : {0u, 1u, 17u, 12345u}) {
    for (const int workers : {1, 2, 4}) {
      ConquerOptions opts = small_pool(workers);
      opts.steal_seed = seed;
      ConquerPool up(unsat, depth2_cover(), opts);
      EXPECT_EQ(up.run().result, SolveResult::kUnsat)
          << "seed " << seed << " workers " << workers;
      ConquerPool sp(satf, depth2_cover(), opts);
      EXPECT_EQ(sp.run().result, SolveResult::kSat)
          << "seed " << seed << " workers " << workers;
    }
  }
}

// The TSan hammer: many trivial cubes across more workers than cores
// forces a storm of concurrent pops and steals on the one queue while
// workers race stop_ / sharing.  Run by the CI thread-sanitizer job.
TEST(ConquerTest, StealingHammerManyCubesFewMilliseconds) {
  const CnfFormula f = pigeonhole(3);
  std::vector<Cube> cubes;
  for (int mask = 0; mask < 32; ++mask) {
    Cube c;
    for (Var v = 0; v < 5; ++v) {
      c.push_back((mask >> v) & 1 ? pos(v) : neg(v));
    }
    cubes.push_back(c);
  }
  for (std::uint64_t round = 0; round < 4; ++round) {
    ConquerOptions opts = small_pool(8);
    opts.steal_seed = round;
    ConquerPool pool(f, cubes, opts);
    const ConquerResult cr = pool.run();
    EXPECT_EQ(cr.result, SolveResult::kUnsat);
    // A refutation whose conflict core skips the (irrelevant) cube
    // literals refutes F outright and legitimately stops the pool
    // early, so not all 32 cubes need solving — but at least one does.
    EXPECT_GE(cr.cube_stats.cubes_solved, 1);
    EXPECT_LE(cr.cube_stats.cubes_solved, 32);
  }
}

// ------------------------------------------------------------- proofs

/// Splits then conquers \p f with proofs on, returning the stitched
/// refutation already validated for shape (non-empty, ends empty).
sat::Proof conquer_certified(const CnfFormula& f, ConquerOptions opts,
                             int cutoff) {
  SplitOptions sopts;
  sopts.cutoff = cutoff;
  sopts.refute_conflicts = 0;
  const sat::cube::SplitResult sr = split_formula(f, sopts);
  EXPECT_EQ(sr.status, SolveResult::kUnknown);
  opts.proof = true;
  ConquerPool pool(f, sr.cubes, opts);
  EXPECT_EQ(pool.run().result, SolveResult::kUnsat);
  return pool.certified_proof();
}

TEST(CubeProofTest, StitchedProofCertifies) {
  const CnfFormula f = pigeonhole(4);
  const sat::Proof proof =
      conquer_certified(f, small_pool(2), /*cutoff=*/3);
  ASSERT_TRUE(proof.derives_empty_clause());
  const sat::DratCheckResult r = sat::check_drat(f, proof);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(r.refutation);
}

// Concatenation order: per-worker traces draw tickets from one shared
// counter, so any exported clause's derivation precedes its imports in
// the stitched merge.  With 4 workers racing over 8+ cubes the traces
// interleave heavily — if stitching ordered by worker instead of by
// ticket, imported clauses would appear before their derivations and
// the backward check would reject the proof.
TEST(CubeProofTest, InterleavedWorkerTracesStitchInTicketOrder) {
  const CnfFormula f = pigeonhole(5);
  ConquerOptions opts = small_pool(4);
  opts.steal_seed = 3;
  const sat::Proof proof = conquer_certified(f, opts, /*cutoff=*/4);
  const sat::DratCheckResult r = sat::check_drat(f, proof);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(r.refutation);
}

// Forced mid-conquer arena GC: gc_frac = 0 compacts the clause arena
// at every opportunity, so clause addresses churn while the proofs are
// being logged.  The stitched DRAT must certify regardless — proof
// steps are literal sequences, not addresses, and a GC that corrupted
// the trace would fail the backward check here.
TEST(CubeProofTest, CertifiesAcrossForcedArenaGc) {
  const CnfFormula f = pigeonhole(5);
  ConquerOptions opts = small_pool(2);
  opts.base.gc_frac = 0.0;
  // Reduce the learnt DB almost every conflict so deletions create
  // arena waste fast enough for the per-cube solves to trip a GC.
  opts.base.reduce_base = 10;
  opts.base.reduce_inc = 10;
  SplitOptions sopts;
  sopts.cutoff = 4;
  sopts.refute_conflicts = 0;
  const sat::cube::SplitResult sr = split_formula(f, sopts);
  ASSERT_EQ(sr.status, SolveResult::kUnknown);
  opts.proof = true;
  ConquerPool pool(f, sr.cubes, opts);
  const ConquerResult cr = pool.run();
  ASSERT_EQ(cr.result, SolveResult::kUnsat);
  EXPECT_GT(cr.solver_stats.arena_gc_runs, 0)
      << "gc_frac=0 was expected to force compactions mid-conquer";
  const sat::DratCheckResult r = sat::check_drat(f, pool.certified_proof());
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(r.refutation);
}

TEST(CubeProofTest, RootRefutationShortCircuits) {
  // Contradictory units refute F at the root: the certified proof is
  // one worker's linear trace ending in the empty clause, and the
  // closing clauses are (correctly) not appended on top.
  CnfFormula f;
  const Var a = f.new_var();
  f.add_unit(pos(a));
  f.add_unit(neg(a));
  ConquerOptions opts = small_pool(2);
  opts.proof = true;
  ConquerPool pool(f, depth2_cover(), opts);
  ASSERT_EQ(pool.run().result, SolveResult::kUnsat);
  const sat::Proof proof = pool.certified_proof();
  ASSERT_TRUE(proof.derives_empty_clause());
  const sat::DratCheckResult r = sat::check_drat(f, proof);
  EXPECT_TRUE(r.ok) << r.message;
}

// ------------------------------------------------------------- engine

TEST(CubeEngineTest, SurfacesCubeCountersThroughStats) {
  auto e = sat::EngineSpec::parse("cube:2").build();
  ASSERT_TRUE(e->add_formula(pigeonhole(4)));
  EXPECT_EQ(e->solve(), SolveResult::kUnsat);
  const sat::SolverStats s = e->stats();
  EXPECT_GT(s.cubes_generated, 0);
  EXPECT_GT(s.cubes_refuted_split + s.cubes_solved, 0);
}

}  // namespace
