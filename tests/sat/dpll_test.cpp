#include "sat/dpll.hpp"

#include <gtest/gtest.h>

#include "cnf/generators.hpp"
#include "test_util.hpp"

namespace sateda::sat {
namespace {

TEST(DpllTest, EmptyFormulaIsSat) {
  CnfFormula f(0);
  DpllSolver s(f);
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(DpllTest, UnitClausesPropagate) {
  CnfFormula f(3);
  f.add_unit(pos(0));
  f.add_binary(neg(0), pos(1));
  f.add_binary(neg(1), pos(2));
  DpllSolver s(f);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model()[0].is_true());
  EXPECT_TRUE(s.model()[1].is_true());
  EXPECT_TRUE(s.model()[2].is_true());
}

TEST(DpllTest, EmptyClauseIsUnsat) {
  CnfFormula f(1);
  f.add_clause(Clause(std::vector<Lit>{}));
  DpllSolver s(f);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(DpllTest, ContradictingUnitsAreUnsat) {
  CnfFormula f(1);
  f.add_unit(pos(0));
  f.add_unit(neg(0));
  DpllSolver s(f);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(DpllTest, PigeonholeUnsatWithManyBacktracks) {
  CnfFormula f = pigeonhole(4);
  DpllSolver s(f);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_GT(s.dpll_stats().backtracks, 0);
}

TEST(DpllTest, BudgetReturnsUnknown) {
  CnfFormula f = pigeonhole(7);
  DpllSolver s(f);
  EXPECT_EQ(s.solve(/*conflict_budget=*/10), SolveResult::kUnknown);
}

TEST(DpllTest, ModelSatisfiesFormula) {
  CnfFormula f = planted_ksat(20, 60, 3, 99);
  DpllSolver s(f);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(
      f.is_satisfied_by(testing::complete_model(s.model(), f.num_vars())));
}

TEST(DpllTest, HeuristicChoiceDoesNotAffectOutcome) {
  CnfFormula f = random_3sat(16, 4.26, 321);
  DpllSolver with(f, /*use_occurrence_heuristic=*/true);
  DpllSolver without(f, /*use_occurrence_heuristic=*/false);
  EXPECT_EQ(with.solve(), without.solve());
}

}  // namespace
}  // namespace sateda::sat
