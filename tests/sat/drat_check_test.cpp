/// \file drat_check_test.cpp
/// \brief Tests for the independent backward DRAT (RUP/RAT) checker,
///        the DRAT parsers, and the end-to-end solver → proof →
///        checker pipeline (including corrupted-proof rejection).
#include "sat/drat_check.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "cnf/formula.hpp"
#include "cnf/generators.hpp"
#include "sat/preprocess.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace sateda::sat {
namespace {

using testing::verify_unsat;
using testing::verify_unsat_preprocessed;

/// The four binary clauses over {x1, x2}: minimal UNSAT core.
CnfFormula all_binaries() {
  CnfFormula f(2);
  f.add_binary(pos(0), pos(1));
  f.add_binary(pos(0), neg(1));
  f.add_binary(neg(0), pos(1));
  f.add_binary(neg(0), neg(1));
  return f;
}

TEST(DratCheckTest, AcceptsHandWrittenRupRefutation) {
  DratProof proof;
  proof.steps.push_back({false, {pos(0)}});  // RUP: ¬x1 propagates conflict
  proof.steps.push_back({false, {}});
  DratCheckResult r = check_drat(all_binaries(), proof);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(r.refutation);
  EXPECT_EQ(r.steps_checked, 2u);
}

TEST(DratCheckTest, AcceptsRatOnlyAdditionInDerivationMode) {
  // (x1 + x2)(¬x1 + x2) is satisfiable; the unit {x1} is not RUP but
  // is RAT on x1: the sole resolvent {x2} propagates to a conflict.
  CnfFormula f(2);
  f.add_binary(pos(0), pos(1));
  f.add_binary(neg(0), pos(1));
  DratProof proof;
  proof.steps.push_back({false, {pos(0)}});
  DratCheckOptions opts;
  opts.require_refutation = false;
  DratCheckResult r = check_drat(f, proof, opts);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_FALSE(r.refutation);
}

TEST(DratCheckTest, RejectsProofWithoutEmptyClauseByDefault) {
  DratProof proof;
  proof.steps.push_back({false, {pos(0)}});
  DratCheckResult r = check_drat(all_binaries(), proof);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.refutation);
}

TEST(DratCheckTest, RejectsUnjustifiedEmptyClause) {
  // php5 has no unit clauses, so the empty clause alone is not RUP.
  DratProof proof;
  proof.steps.push_back({false, {}});
  DratCheckResult r = check_drat(pigeonhole(5), proof);
  EXPECT_FALSE(r.ok);
}

TEST(DratCheckTest, RejectsProofLeaningOnForeignUnit) {
  // {x3} over fresh variable x3 passes as vacuous RAT (no clause
  // contains ¬x3), but it must not help derive the empty clause.
  CnfFormula f(2);
  f.add_binary(pos(0), pos(1));
  f.add_binary(neg(0), pos(1));
  DratProof proof;
  proof.steps.push_back({false, {pos(2)}});
  proof.steps.push_back({false, {}});
  DratCheckResult r = check_drat(f, proof);
  EXPECT_FALSE(r.ok);
}

TEST(DratCheckTest, HonoursDeletionSteps) {
  DratProof proof;
  proof.steps.push_back({false, {pos(0)}});
  proof.steps.push_back({true, {pos(0), pos(1)}});  // delete (x1 + x2)
  proof.steps.push_back({false, {}});
  DratCheckResult r = check_drat(all_binaries(), proof);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(DratCheckTest, RejectsWhenDeletionRemovesNeededClause) {
  // Deleting a formula clause first makes the remainder satisfiable,
  // so no subsequent refutation can verify.
  Proof proof;
  proof.on_delete({pos(0), pos(1)});
  proof.on_derive({pos(0)});
  proof.on_derive({});
  DratCheckResult r = check_drat(all_binaries(), proof);
  EXPECT_FALSE(r.ok);
}

TEST(DratCheckTest, ChecksProofUnderAssumptions) {
  // x1 → x2 → x3; UNSAT only under assumptions {x1, ¬x3}.  The solver
  // convention logs the negated core; the empty clause follows.
  CnfFormula f(3);
  f.add_binary(neg(0), pos(1));
  f.add_binary(neg(1), pos(2));
  DratProof proof;
  proof.steps.push_back({false, {neg(0), pos(2)}});  // ¬core
  proof.steps.push_back({false, {}});
  DratCheckOptions opts;
  opts.assumptions = {pos(0), neg(2)};
  DratCheckResult r = check_drat(f, proof, opts);
  EXPECT_TRUE(r.ok) << r.message;
  // Without the assumptions the same proof must fail.
  EXPECT_FALSE(check_drat(f, proof).ok);
}

TEST(DratCheckTest, CollectsClausalCoreAndTrimmedProof) {
  // Pad the minimal UNSAT core with satisfiable junk clauses; the
  // collected core must exclude them and the trimmed proof must still
  // refute the extracted core formula.
  CnfFormula f = all_binaries();
  f.add_clause({pos(2), pos(3)});
  f.add_clause({neg(2), pos(4)});
  Solver s;
  Proof proof;
  s.set_proof_tracer(&proof);
  ASSERT_TRUE(s.add_formula(f));
  ASSERT_EQ(s.solve(), SolveResult::kUnsat);

  const DratProof drat = DratProof::from_proof(proof);
  DratCheckOptions opts;
  opts.collect_core = true;
  DratCheckResult r = check_drat(f, drat, opts);
  ASSERT_TRUE(r.ok) << r.message;
  // Core ⊆ the four binaries (indices 0..3), and the junk is out.
  ASSERT_FALSE(r.core_clauses.empty());
  for (std::size_t idx : r.core_clauses) EXPECT_LT(idx, 4u);
  EXPECT_TRUE(r.core_assumptions.empty());
  ASSERT_FALSE(r.trimmed_proof.steps.empty());
  EXPECT_LE(r.trimmed_proof.steps.size(), drat.steps.size());

  // Re-verify: core clauses alone + trimmed proof must still check.
  CnfFormula core(f.num_vars());
  for (std::size_t idx : r.core_clauses) core.add_clause(f.clause(idx));
  DratCheckResult again = check_drat(core, r.trimmed_proof);
  EXPECT_TRUE(again.ok) << again.message;
  EXPECT_TRUE(again.refutation);
}

TEST(DratCheckTest, CollectsAssumptionCore) {
  // x1 → x2 → x3, refuted only under {x1, ¬x3}; an irrelevant third
  // assumption must not enter the core.
  CnfFormula f(4);
  f.add_binary(neg(0), pos(1));
  f.add_binary(neg(1), pos(2));
  DratProof proof;
  proof.steps.push_back({false, {neg(0), pos(2)}});
  proof.steps.push_back({false, {}});
  DratCheckOptions opts;
  opts.assumptions = {pos(0), neg(2), pos(3)};
  opts.collect_core = true;
  DratCheckResult r = check_drat(f, proof, opts);
  ASSERT_TRUE(r.ok) << r.message;
  std::vector<Lit> core = r.core_assumptions;
  std::sort(core.begin(), core.end());
  EXPECT_EQ(core, (std::vector<Lit>{pos(0), neg(2)}));

  // The extracted core is self-contained: formula core clauses plus
  // the core assumptions as units refute with the trimmed proof and
  // no --assume context.
  CnfFormula core_cnf(f.num_vars());
  for (std::size_t idx : r.core_clauses) core_cnf.add_clause(f.clause(idx));
  for (Lit a : r.core_assumptions) core_cnf.add_unit(a);
  DratCheckResult again = check_drat(core_cnf, r.trimmed_proof);
  EXPECT_TRUE(again.ok) << again.message;
}

TEST(DratCheckTest, WriteDratTextRoundTrips) {
  DratProof proof;
  proof.steps.push_back({false, {pos(0), neg(1)}});
  proof.steps.push_back({true, {pos(0), neg(1)}});
  proof.steps.push_back({false, {}});
  std::ostringstream out;
  write_drat_text(out, proof);
  std::istringstream in(out.str());
  DratProof back = parse_drat(in);
  ASSERT_EQ(back.steps.size(), proof.steps.size());
  for (std::size_t i = 0; i < proof.steps.size(); ++i) {
    EXPECT_EQ(back.steps[i].deletion, proof.steps[i].deletion);
    EXPECT_EQ(back.steps[i].lits, proof.steps[i].lits);
  }
}

TEST(DratCheckTest, FormulaWithEmptyClauseIsTriviallyRefuted) {
  CnfFormula f(1);
  f.add_clause(Clause(std::vector<Lit>{}));
  DratProof proof;
  DratCheckResult r = check_drat(f, proof);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(r.refutation);
}

// --- parsers ------------------------------------------------------------

TEST(DratParseTest, ParsesTextWithCommentsAndDeletions) {
  std::istringstream in(
      "c a comment line\n"
      "1 -2 0\n"
      "d 1 -2 0\n"
      "0\n");
  DratProof p = parse_drat(in, DratParseFormat::kText);
  ASSERT_EQ(p.steps.size(), 3u);
  EXPECT_FALSE(p.steps[0].deletion);
  EXPECT_EQ(p.steps[0].lits, (std::vector<Lit>{pos(0), neg(1)}));
  EXPECT_TRUE(p.steps[1].deletion);
  EXPECT_TRUE(p.steps[2].lits.empty());
}

TEST(DratParseTest, RejectsMalformedText) {
  std::istringstream bad_tok("1 x 0\n");
  EXPECT_THROW(parse_drat(bad_tok, DratParseFormat::kText),
               std::runtime_error);
  std::istringstream unterminated("1 -2 0\n3 4\n");
  EXPECT_THROW(parse_drat(unterminated, DratParseFormat::kText),
               std::runtime_error);
  std::istringstream huge("1999999999999 0\n");
  EXPECT_THROW(parse_drat(huge, DratParseFormat::kText), std::runtime_error);
}

TEST(DratParseTest, BinaryRoundTripsAndAutoDetects) {
  Proof proof;
  proof.on_derive({pos(0), neg(1)});
  proof.on_delete({pos(0), neg(1)});
  proof.on_derive({neg(200)});  // exercises multi-byte varints
  proof.on_derive({});
  std::ostringstream out;
  proof.write_drat(out, DratFormat::kBinary);
  {
    std::istringstream in(out.str());
    DratProof p = parse_drat(in, DratParseFormat::kBinary);
    ASSERT_EQ(p.steps.size(), 4u);
    EXPECT_EQ(p.steps[0].lits, (std::vector<Lit>{pos(0), neg(1)}));
    EXPECT_TRUE(p.steps[1].deletion);
    EXPECT_EQ(p.steps[2].lits, (std::vector<Lit>{neg(200)}));
    EXPECT_TRUE(p.steps[3].lits.empty());
  }
  {
    std::istringstream in(out.str());
    DratProof p = parse_drat(in);  // kAuto must sniff binary
    EXPECT_EQ(p.steps.size(), 4u);
  }
  // And the text form round-trips through kAuto as well.
  std::ostringstream text;
  proof.write_drat(text, DratFormat::kText);
  std::istringstream in(text.str());
  DratProof p = parse_drat(in);
  EXPECT_EQ(p.steps.size(), 4u);
}

TEST(DratParseTest, RejectsTruncatedBinary) {
  Proof proof;
  proof.on_derive({pos(0), neg(1)});
  std::ostringstream out;
  proof.write_drat(out, DratFormat::kBinary);
  std::string bytes = out.str();
  bytes.pop_back();  // drop the 0x00 terminator
  std::istringstream in(bytes);
  EXPECT_THROW(parse_drat(in, DratParseFormat::kBinary), std::runtime_error);
}

// --- solver → proof → checker pipeline ----------------------------------

TEST(DratPipelineTest, CertifiesGeneratedUnsatFamilies) {
  EXPECT_TRUE(verify_unsat(pigeonhole(4)));
  EXPECT_TRUE(verify_unsat(dubois(8)));
  EXPECT_TRUE(verify_unsat(equivalence_chain(6, true, 4, /*seed=*/7)));
}

TEST(DratPipelineTest, BinarySerializedSolverProofStillChecks) {
  Solver solver;
  Proof proof;
  solver.set_proof_tracer(&proof);
  ASSERT_TRUE(solver.add_formula(pigeonhole(4)));
  ASSERT_EQ(solver.solve(), SolveResult::kUnsat);
  std::ostringstream out;
  proof.write_drat(out, DratFormat::kBinary);
  std::istringstream in(out.str());
  DratProof parsed = parse_drat(in);
  DratCheckResult r = check_drat(pigeonhole(4), parsed);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(DratPipelineTest, MutatedSolverProofIsRejected) {
  Solver solver;
  Proof proof;
  solver.set_proof_tracer(&proof);
  ASSERT_TRUE(solver.add_formula(pigeonhole(4)));
  ASSERT_EQ(solver.solve(), SolveResult::kUnsat);
  ASSERT_TRUE(check_drat(pigeonhole(4), proof).ok);

  // Mutation 1: drop the final empty clause.
  DratProof truncated = DratProof::from_proof(proof);
  while (!truncated.steps.empty() && !truncated.steps.back().deletion &&
         truncated.steps.back().lits.empty()) {
    truncated.steps.pop_back();
  }
  EXPECT_FALSE(check_drat(pigeonhole(4), truncated).ok);

  // Mutation 2: delete a formula clause up front — the remainder is
  // satisfiable, so the refutation cannot go through.
  DratProof weakened = DratProof::from_proof(proof);
  std::vector<Lit> pigeon0;
  for (int h = 0; h < 4; ++h) pigeon0.push_back(pos(static_cast<Var>(h)));
  weakened.steps.insert(weakened.steps.begin(), DratStep{true, pigeon0});
  EXPECT_FALSE(check_drat(pigeonhole(4), weakened).ok);
}

TEST(DratPipelineTest, PreprocessedPipelineProofChecksAgainstOriginal) {
  EXPECT_TRUE(verify_unsat_preprocessed(pigeonhole(4)));
  EXPECT_TRUE(verify_unsat_preprocessed(dubois(6)));
  EXPECT_TRUE(
      verify_unsat_preprocessed(equivalence_chain(8, true, 0, /*seed=*/1)));
}

}  // namespace
}  // namespace sateda::sat
