/// \file arena_test.cpp
/// \brief Tests for the flat clause arena: header/layout unit tests,
///        compacting-GC stress under search (watcher/reason/trail
///        integrity via SolverAuditor), and DRAT certification with
///        deletions landing on both sides of a compaction.
#include "sat/arena.hpp"

#include <gtest/gtest.h>

#include "cnf/generators.hpp"
#include "sat/audit.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace sateda::sat {
namespace {

std::vector<Lit> lits3(int a, int b, int c) {
  auto mk = [](int x) { return x > 0 ? pos(x - 1) : neg(-x - 1); };
  return {mk(a), mk(b), mk(c)};
}

TEST(ArenaTest, AllocStoresHeaderAndLiterals) {
  ClauseArena arena;
  const std::vector<Lit> lits = lits3(1, -2, 3);
  CRef ref = arena.alloc(lits, /*learnt=*/true);
  ArenaClause c = arena[ref];
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(c.learnt());
  EXPECT_FALSE(c.deleted());
  EXPECT_EQ(c[0], pos(0));
  EXPECT_EQ(c[1], neg(1));
  EXPECT_EQ(c[2], pos(2));
  EXPECT_EQ(c.lbd(), 3);  // defaults to the clause size
  EXPECT_FLOAT_EQ(c.activity(), 0.0f);
  c.set_lbd(2);
  c.set_activity(1.5f);
  c.set_tier(ClauseTier::kTier2);
  c.set_used();
  EXPECT_EQ(c.lbd(), 2);
  EXPECT_FLOAT_EQ(c.activity(), 1.5f);
  EXPECT_EQ(c.tier(), ClauseTier::kTier2);
  EXPECT_TRUE(c.used());
  EXPECT_EQ(c.size(), 3u);  // flag writes must not clobber the size
  EXPECT_TRUE(c.learnt());
}

TEST(ArenaTest, SequentialWalkVisitsEveryClause) {
  ClauseArena arena;
  arena.alloc(lits3(1, 2, 3), false);
  arena.alloc({pos(0), neg(1), pos(2), neg(3)}, true);
  arena.alloc(lits3(-1, -2, -3), false);
  int count = 0;
  for (CRef r = arena.first(); r < arena.end_ref(); r = arena.next(r)) {
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(ArenaTest, FreeTracksWastedWords) {
  ClauseArena arena;
  CRef a = arena.alloc(lits3(1, 2, 3), false);
  arena.alloc(lits3(4, 5, 6), false);
  EXPECT_EQ(arena.wasted_words(), 0u);
  arena.free_clause(a);
  EXPECT_TRUE(arena[a].deleted());
  EXPECT_EQ(arena.wasted_words(), ArenaClause::kHeaderWords + 3);
}

TEST(ArenaTest, RelocForwardsOnceAndPreservesMetadata) {
  ClauseArena from;
  CRef dead = from.alloc(lits3(7, 8, 9), false);
  CRef live = from.alloc(lits3(1, -2, 3), true);
  from[live].set_lbd(2);
  from[live].set_activity(4.25f);
  from[live].set_tier(ClauseTier::kCore);
  from.free_clause(dead);

  ClauseArena to;
  CRef moved = from.reloc(live, to);
  // A second reloc of the same clause must return the same target.
  EXPECT_EQ(from.reloc(live, to), moved);
  ArenaClause c = to[moved];
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(c.learnt());
  EXPECT_EQ(c.lbd(), 2);
  EXPECT_FLOAT_EQ(c.activity(), 4.25f);
  EXPECT_EQ(c.tier(), ClauseTier::kCore);
  EXPECT_EQ(c[1], neg(1));
  // The dead clause was never copied: the target holds one clause.
  EXPECT_EQ(to.size_words(), ArenaClause::kHeaderWords + 3);
}

TEST(ReasonTest, EncodingRoundTrips) {
  EXPECT_TRUE(kNoReason.is_none());
  EXPECT_FALSE(kNoReason.is_binary());
  EXPECT_FALSE(kNoReason.is_clause());
  const Reason rc = Reason::clause(1234);
  EXPECT_TRUE(rc.is_clause());
  EXPECT_EQ(rc.cref(), 1234u);
  const Reason rb = Reason::binary(neg(17));
  EXPECT_TRUE(rb.is_binary());
  EXPECT_EQ(rb.other(), neg(17));
}

/// Options that force constant database churn: reductions every few
/// conflicts and a GC threshold so low that nearly every reduction
/// triggers a compaction.
SolverOptions churn_options() {
  SolverOptions opts;
  opts.deletion = DeletionPolicy::kTiered;
  opts.reduce_base = 20;
  opts.reduce_inc = 5;
  opts.core_lbd_cut = 2;  // keep the core small so clauses actually die
  opts.tier2_lbd_cut = 3;
  opts.gc_frac = 0.01;
  return opts;
}

TEST(ArenaGcTest, RepeatedCompactionMidSearchKeepsInvariants) {
  Solver solver(churn_options());
  AuditOptions aopts;
  aopts.interval = 32;  // audit often, but keep the test quick
  SolverAuditor auditor(aopts);
  solver.set_auditor(&auditor);
  ASSERT_TRUE(solver.add_formula(pigeonhole(5)));
  EXPECT_EQ(solver.solve(), SolveResult::kUnsat);
  const SolverStats stats = solver.stats();
  // The schedule above must compact repeatedly mid-search, and every
  // audited checkpoint between compactions must hold all invariants.
  EXPECT_GE(stats.arena_gc_runs, 2);
  EXPECT_GT(stats.arena_bytes_reclaimed, 0);
  const AuditReport& r = auditor.report();
  EXPECT_TRUE(r.ok()) << r.violations.front();
  EXPECT_GT(r.audits_run, 0u);
}

TEST(ArenaGcTest, SatisfiableSearchSurvivesCompaction) {
  Solver solver(churn_options());
  AuditOptions aopts;
  aopts.interval = 64;
  SolverAuditor auditor(aopts);
  solver.set_auditor(&auditor);
  CnfFormula f = random_3sat(120, 4.1, /*seed=*/5);
  ASSERT_TRUE(solver.add_formula(f));
  const SolveResult r = solver.solve();
  ASSERT_EQ(r, SolveResult::kSat);
  EXPECT_TRUE(
      f.is_satisfied_by(testing::complete_model(solver.model(), f.num_vars())));
  EXPECT_TRUE(auditor.report().ok()) << auditor.report().violations.front();
}

TEST(ArenaGcTest, DratDeletionsStayConsistentAcrossGc) {
  // Learnt-clause deletions are proof-logged when the clause dies;
  // compaction then moves every survivor.  The checker replays the
  // trace by clause *content*, so the certificate must stay valid no
  // matter how often the arena is compacted mid-proof.
  EXPECT_TRUE(testing::verify_unsat(pigeonhole(5), {}, churn_options()));
  EXPECT_TRUE(testing::verify_unsat(dubois(12), {}, churn_options()));
}

TEST(ArenaGcTest, SimplifyDbCompactsRootSatisfiedClauses) {
  Solver solver(churn_options());
  // Three ternary clauses sharing x0 and a binary clause, then a unit
  // that satisfies them all at the root.
  ASSERT_TRUE(solver.add_clause({pos(0), pos(1), pos(2)}));
  ASSERT_TRUE(solver.add_clause({pos(0), neg(1), pos(3)}));
  ASSERT_TRUE(solver.add_clause({pos(0), neg(2), neg(3)}));
  ASSERT_TRUE(solver.add_clause({pos(0), pos(4)}));
  ASSERT_TRUE(solver.add_clause({neg(4), pos(5), neg(0)}));
  EXPECT_EQ(solver.num_problem_clauses(), 5u);
  ASSERT_TRUE(solver.add_clause({pos(0)}));
  solver.simplify_db();
  // Every clause containing x0 positively (three ternaries in the
  // arena, one implicit binary) is root-satisfied and removed; the
  // last clause only contains ¬x0 and survives.
  EXPECT_EQ(solver.num_problem_clauses(), 1u);
  SolverAuditor auditor;
  auditor.audit(solver);
  EXPECT_TRUE(auditor.report().ok()) << auditor.report().violations.front();
  EXPECT_EQ(solver.solve(), SolveResult::kSat);
}

TEST(ArenaGcTest, BinaryPropagationsAreCounted) {
  // An implication chain of binary clauses: one decision floods the
  // chain through the binary watch lists.
  const int n = 50;
  Solver solver;
  for (int i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(solver.add_clause({neg(i), pos(i + 1)}));
  }
  ASSERT_TRUE(solver.add_clause({pos(0)}));
  EXPECT_EQ(solver.solve(), SolveResult::kSat);
  EXPECT_GE(solver.stats().binary_propagations, n - 1);
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(solver.model()[i].is_true());
  }
}

}  // namespace
}  // namespace sateda::sat
