/// \file incremental_test.cpp
/// \brief Incremental solving under assumptions: conflict-core
///        soundness, clause groups via activation literals, and
///        simplify_db() between solve calls — the workload pattern of
///        the incremental ATPG/BMC layers (paper §6).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cnf/generators.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace {

using namespace sateda;
using sat::SolveResult;
using sat::Solver;

bool subset_of(const std::vector<Lit>& inner, const std::vector<Lit>& outer) {
  return std::all_of(inner.begin(), inner.end(), [&](Lit l) {
    return std::find(outer.begin(), outer.end(), l) != outer.end();
  });
}

TEST(IncrementalTest, ConflictCoreIsSoundSubset) {
  // (¬a ∨ ¬b) makes {a, b} jointly inconsistent; c and d are padding
  // assumptions a good core should drop.
  Solver s;
  Var a = s.new_var(), b = s.new_var(), c = s.new_var(), d = s.new_var();
  ASSERT_TRUE(s.add_clause({neg(a), neg(b)}));
  std::vector<Lit> assumptions = {pos(c), pos(a), pos(d), pos(b)};
  ASSERT_EQ(s.solve(assumptions), SolveResult::kUnsat);
  const std::vector<Lit> core = s.conflict_core();
  EXPECT_TRUE(subset_of(core, assumptions));
  EXPECT_FALSE(core.empty());
  // Soundness: the core alone must still be inconsistent.
  ASSERT_EQ(s.solve(core), SolveResult::kUnsat);
  // And the solver recovers fully: no assumption — satisfiable.
  EXPECT_TRUE(s.okay());
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(IncrementalTest, CoresOnRandomInstances) {
  // Assume all variables positive on UNSAT random formulas; whatever
  // core comes back must itself refute.
  for (std::uint64_t seed : {3u, 14u, 15u}) {
    CnfFormula f = random_3sat(30, 5.0, seed);
    Solver s;
    ASSERT_TRUE(s.add_formula(f));
    std::vector<Lit> assumptions;
    for (Var v = 0; v < f.num_vars(); ++v) assumptions.push_back(pos(v));
    SolveResult r = s.solve(assumptions);
    if (r != SolveResult::kUnsat) continue;  // assignment happened to work
    EXPECT_TRUE(subset_of(s.conflict_core(), assumptions));
    std::vector<Lit> core = s.conflict_core();
    EXPECT_EQ(s.solve(core), SolveResult::kUnsat);
  }
}

TEST(IncrementalTest, ActivationLiteralGroupsRetireCleanly) {
  // Clause groups à la incremental ATPG: fault clauses guarded by an
  // activation literal g — (¬g ∨ c) — enabled by assuming g, retired
  // for good by adding the unit ¬g.
  Solver s;
  Var x = s.new_var(), y = s.new_var();
  Var g1 = s.new_var(), g2 = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(x), pos(y)}));
  // Group 1 forces x; group 2 forces ¬x.
  ASSERT_TRUE(s.add_clause({neg(g1), pos(x)}));
  ASSERT_TRUE(s.add_clause({neg(g2), neg(x)}));
  ASSERT_EQ(s.solve({pos(g1)}), SolveResult::kSat);
  EXPECT_EQ(s.model_value(x), l_true);
  ASSERT_EQ(s.solve({pos(g2)}), SolveResult::kSat);
  EXPECT_EQ(s.model_value(x), l_false);
  // Both groups at once: contradiction, core names the guards.
  ASSERT_EQ(s.solve({pos(g1), pos(g2)}), SolveResult::kUnsat);
  EXPECT_TRUE(subset_of(s.conflict_core(), {pos(g1), pos(g2)}));
  // Retire group 2 permanently and simplify: group 1 works again.
  ASSERT_TRUE(s.add_clause({neg(g2)}));
  s.simplify_db();
  ASSERT_EQ(s.solve({pos(g1)}), SolveResult::kSat);
  EXPECT_EQ(s.model_value(x), l_true);
}

TEST(IncrementalTest, SimplifyDbBetweenSolvesPreservesAnswers) {
  CnfFormula f = random_3sat(40, 4.0, 77);
  Solver incremental;
  ASSERT_TRUE(incremental.add_formula(f));
  for (Var v = 0; v < 8; ++v) {
    for (Lit assumption : {pos(v), neg(v)}) {
      SolveResult got = incremental.solve({assumption});
      incremental.simplify_db();  // shrink between queries
      Solver fresh;
      ASSERT_TRUE(fresh.add_formula(f));
      SolveResult want = fresh.solve({assumption});
      EXPECT_EQ(got, want) << "assumption on var " << v;
    }
  }
}

TEST(IncrementalTest, LearntClausesSurviveAcrossCalls) {
  // Re-solving the same UNSAT-under-assumption query must not repeat
  // the work: the second call rides on the first call's learnt
  // clauses.  Guarding every clause keeps the conflict at the
  // assumption (not the root), so the solver stays usable.
  CnfFormula f = pigeonhole(5);
  Solver s;
  const Var g = f.num_vars();
  s.ensure_var(g);
  for (const Clause& c : f) {
    std::vector<Lit> lits(c.begin(), c.end());
    lits.push_back(neg(g));
    ASSERT_TRUE(s.add_clause(std::move(lits)));
  }
  ASSERT_EQ(s.solve({pos(g)}), SolveResult::kUnsat);
  const std::int64_t first = s.stats().conflicts;
  ASSERT_EQ(s.solve({pos(g)}), SolveResult::kUnsat);
  const std::int64_t second = s.stats().conflicts - first;
  EXPECT_LT(second, first);
  EXPECT_TRUE(s.okay());
}

TEST(IncrementalTest, RootConflictUnderAssumptionsKillsSolver) {
  // Regression: a conflict at decision level 0 during an assumption
  // solve refutes the clause set itself; the solver must go !okay()
  // and keep answering kUnsat instead of fabricating a model later.
  Solver s;
  ASSERT_TRUE(s.add_formula(pigeonhole(5)));
  Var guard = s.new_var();
  ASSERT_EQ(s.solve({pos(guard)}), SolveResult::kUnsat);
  EXPECT_FALSE(s.okay());
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_EQ(s.solve({pos(guard)}), SolveResult::kUnsat);
}

TEST(IncrementalTest, GrowingFormulaAcrossSolves) {
  // Alternate adding constraints and solving; verdicts must track the
  // shrinking solution space down to UNSAT.
  Solver s;
  const int n = 6;
  for (int i = 0; i < n; ++i) s.ensure_var(i);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  // At-least-one, pairwise at-most-one over n vars: SAT until we also
  // demand two distinct true variables.
  std::vector<Lit> alo;
  for (Var v = 0; v < n; ++v) alo.push_back(pos(v));
  ASSERT_TRUE(s.add_clause(alo));
  for (Var v = 0; v < n; ++v) {
    for (Var w = v + 1; w < n; ++w) {
      ASSERT_TRUE(s.add_clause({neg(v), neg(w)}));
    }
  }
  ASSERT_EQ(s.solve(), SolveResult::kSat);  // exactly-one is fine
  // Count the true variables in the model: must be exactly one.
  int trues = 0;
  for (Var v = 0; v < n; ++v) trues += s.model_value(v).is_true();
  EXPECT_EQ(trues, 1);
  // Now force two specific variables true: UNSAT by at-most-one.
  ASSERT_EQ(s.solve({pos(0), pos(1)}), SolveResult::kUnsat);
  EXPECT_TRUE(s.okay());
  ASSERT_TRUE(s.add_clause({pos(0)}));
  ASSERT_TRUE(s.add_clause({pos(1)}) == false || s.solve() == SolveResult::kUnsat);
}

// --- DRAT certification of this suite's UNSAT cases -------------------

TEST(IncrementalProofCertificationTest, AssumptionCoresAreCertified) {
  // The ConflictCoreIsSoundSubset scenario, re-run with proof tracing:
  // the refutation of formula ∧ assumptions must check out.
  CnfFormula f(4);
  f.add_binary(neg(0), neg(1));
  EXPECT_TRUE(
      sateda::testing::verify_unsat(f, {pos(2), pos(0), pos(3), pos(1)}));
}

TEST(IncrementalProofCertificationTest, RandomAssumptionCoresAreCertified) {
  for (std::uint64_t seed : {3u, 14u, 15u}) {
    CnfFormula f = random_3sat(30, 5.0, seed);
    Solver probe;
    ASSERT_TRUE(probe.add_formula(f));
    std::vector<Lit> assumptions;
    for (Var v = 0; v < f.num_vars(); ++v) assumptions.push_back(pos(v));
    if (probe.solve(assumptions) != SolveResult::kUnsat) continue;
    EXPECT_TRUE(sateda::testing::verify_unsat(f, assumptions)) << "seed " << seed;
    // The extracted core alone must also certify.
    EXPECT_TRUE(sateda::testing::verify_unsat(f, probe.conflict_core()))
        << "seed " << seed;
  }
}

TEST(IncrementalProofCertificationTest, AtMostOneGroupConflictCertified) {
  // Mirror of GroupsViaActivationLiterals' closing UNSAT: at-most-one
  // constraints with two variables forced true.
  const int n = 5;
  CnfFormula f(n);
  std::vector<Lit> at_least;
  for (Var v = 0; v < n; ++v) at_least.push_back(pos(v));
  f.add_clause(std::move(at_least));
  for (Var v1 = 0; v1 < n; ++v1) {
    for (Var v2 = v1 + 1; v2 < n; ++v2) f.add_binary(neg(v1), neg(v2));
  }
  EXPECT_TRUE(sateda::testing::verify_unsat(f, {pos(0), pos(1)}));
}

}  // namespace
