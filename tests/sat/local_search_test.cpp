#include "sat/local_search.hpp"

#include <gtest/gtest.h>

#include "cnf/generators.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace sateda::sat {
namespace {

TEST(WalkSatTest, SolvesTrivialFormula) {
  CnfFormula f(2);
  f.add_binary(pos(0), pos(1));
  f.add_unit(neg(0));
  WalkSatSolver s(f);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(
      f.is_satisfied_by(testing::complete_model(s.model(), f.num_vars())));
}

TEST(WalkSatTest, SolvesPlantedInstances) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    CnfFormula f = planted_ksat(60, 240, 3, seed);
    WalkSatSolver s(f);
    ASSERT_EQ(s.solve(), SolveResult::kSat) << "seed " << seed;
    EXPECT_TRUE(
        f.is_satisfied_by(testing::complete_model(s.model(), f.num_vars())));
  }
}

TEST(WalkSatTest, CannotRefuteUnsatInstances) {
  // The §4 claim: local search never proves unsatisfiability — it can
  // only time out.
  CnfFormula f = pigeonhole(4);
  WalkSatOptions opts;
  opts.max_flips = 20000;
  opts.max_tries = 3;
  WalkSatSolver s(f);
  EXPECT_EQ(s.solve(), SolveResult::kUnknown);
  EXPECT_GT(s.walksat_stats().flips, 0);
}

TEST(WalkSatTest, EmptyClauseGivesUnsatNotCrash) {
  // An empty clause is trivially unsatisfiable; the engine detects it
  // at load time, so even the incomplete solver may answer kUnsat.
  CnfFormula f(1);
  f.add_clause(Clause(std::vector<Lit>{}));
  WalkSatSolver s(f);
  EXPECT_FALSE(s.okay());
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(WalkSatTest, DeterministicInSeed) {
  CnfFormula f = random_3sat(40, 3.5, 9);
  WalkSatOptions opts;
  opts.seed = 42;
  WalkSatSolver a(f, opts);
  WalkSatSolver b(f, opts);
  SolveResult ra = a.solve();
  SolveResult rb = b.solve();
  EXPECT_EQ(ra, rb);
  EXPECT_EQ(a.walksat_stats().flips, b.walksat_stats().flips);
}

class WalkSatPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WalkSatPropertyTest, NeverClaimsSatOnUnsat) {
  CnfFormula f = random_3sat(14, 5.0, GetParam());
  const bool satisfiable = testing::brute_force_satisfiable(f);
  WalkSatOptions opts;
  opts.max_flips = 30000;
  WalkSatSolver s(f, opts);
  SolveResult r = s.solve();
  if (r == SolveResult::kSat) {
    EXPECT_TRUE(satisfiable);
    EXPECT_TRUE(
        f.is_satisfied_by(testing::complete_model(s.model(), f.num_vars())));
  }
  EXPECT_NE(r, SolveResult::kUnsat);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalkSatPropertyTest,
                         ::testing::Range<std::uint64_t>(6000, 6012));

}  // namespace
}  // namespace sateda::sat
