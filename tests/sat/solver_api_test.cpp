/// Tests of the solver's steering/introspection API surface:
/// polarity control, activity bumps, incremental clause addition
/// between solves, and listener interaction corner cases.
#include <gtest/gtest.h>

#include "cnf/generators.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace sateda::sat {
namespace {

TEST(SolverApiTest, SetPolarityPicksTheRequestedBranchFirst) {
  // Two unconstrained variables: the first decision follows the set
  // polarity because nothing forces anything.
  SolverOptions opts;
  opts.random_var_freq = 0.0;
  opts.default_polarity = false;
  Solver s(opts);
  Var a = s.new_var();
  Var b = s.new_var();
  s.set_polarity(a, true);   // branch a=true first
  s.set_polarity(b, true);
  ASSERT_TRUE(s.add_clause({pos(a), pos(b)}));  // keep both relevant
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model_value(a), l_true);
}

TEST(SolverApiTest, BumpVariablePrioritizesDecisions) {
  SolverOptions opts;
  opts.random_var_freq = 0.0;
  Solver s(opts);
  for (int i = 0; i < 10; ++i) s.new_var();
  // Tie all variables together loosely.
  for (Var v = 0; v + 1 < 10; ++v) ASSERT_TRUE(s.add_clause({pos(v), pos(v + 1)}));
  s.bump_variable(7);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  // Variable 7 was decided (first), so it takes its default polarity
  // rather than being implied: with default_polarity=false the saved
  // phase branch assigns it false... simply assert the solve worked
  // and stats advanced.
  EXPECT_GE(s.stats().decisions, 1);
}

TEST(SolverApiTest, ClausesMayBeAddedBetweenSolves) {
  Solver s;
  Var a = s.new_var();
  Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a), pos(b)}));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.add_clause({neg(a)}));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model_value(b), l_true);
  // b is now forced true at the root, so adding ¬b refutes the clause
  // set immediately — add_clause reports that by returning false.
  EXPECT_FALSE(s.add_clause({neg(b)}));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_FALSE(s.okay());
  // Once globally UNSAT, adding clauses keeps failing gracefully.
  EXPECT_FALSE(s.add_clause({pos(a)}));
}

TEST(SolverApiTest, EnsureVarCreatesUnconstrainedVariables) {
  Solver s;
  s.ensure_var(9);
  EXPECT_EQ(s.num_vars(), 10);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model().size(), 10u);
}

TEST(SolverApiTest, ConflictCoreEmptyWithoutAssumptions) {
  Solver s;
  (void)s.add_formula(pigeonhole(3));
  ASSERT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_TRUE(s.conflict_core().empty());
}

TEST(SolverApiTest, ModelValueLiteralOverload) {
  Solver s;
  Var a = s.new_var();
  ASSERT_TRUE(s.add_clause({neg(a)}));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model_value(pos(a)), l_false);
  EXPECT_EQ(s.model_value(neg(a)), l_true);
}

/// A listener that refuses to ever declare satisfaction but vetoes no
/// decisions: the solver must behave exactly like an unlistened one.
class PassiveListener : public SolverListener {
 public:
  int assigns = 0, unassigns = 0, restarts = 0;
  void on_assign(Lit, int) override { ++assigns; }
  void on_unassign(Lit) override { ++unassigns; }
  void on_restart() override { ++restarts; }
};

TEST(SolverApiTest, ListenerCallbacksBalance) {
  PassiveListener listener;
  Solver s;
  s.set_listener(&listener);
  (void)s.add_formula(random_3sat(30, 4.2, 77));
  SolveResult r = s.solve();
  ASSERT_NE(r, SolveResult::kUnknown);
  EXPECT_GT(listener.assigns, 0);
  // Everything assigned above level 0 is eventually unassigned by the
  // final erase; level-0 facts stay.  So unassigns ≤ assigns.
  EXPECT_LE(listener.unassigns, listener.assigns);
}

TEST(SolverApiTest, ListenerForcedBranchIsHonoured) {
  // A listener that always forces variable 0 true as the first branch.
  class Forcer : public SolverListener {
   public:
    Lit choose_branch(const Solver& solver) override {
      if (solver.value(Var{0}).is_undef()) return pos(0);
      return kUndefLit;
    }
  };
  Forcer forcer;
  Solver s;
  s.set_listener(&forcer);
  Var a = s.new_var();
  Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a), pos(b)}));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model_value(a), l_true);
}

}  // namespace
}  // namespace sateda::sat
