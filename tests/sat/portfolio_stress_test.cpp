/// \file portfolio_stress_test.cpp
/// \brief Portfolio stress coverage for the TSan CI job: deterministic
///        mode reproducibility over a whole incremental *sequence* of
///        queries (not just one solve), and an interrupt hammer where
///        several threads cancel a racing-mode solve concurrently.
///
/// These tests exist to give the sanitizer scheduling diversity: many
/// short solves, cancellations landing at arbitrary points of the
/// search, and clause exchange under contention.  Assertions are
/// deliberately about *contracts* (same verdict, usable after cancel,
/// bit-identical deterministic replay) rather than timing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "cnf/generators.hpp"
#include "sat/portfolio.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace {

using namespace sateda;
namespace testing = ::testing;
using sat::PortfolioOptions;
using sat::PortfolioSolver;
using sat::SolveResult;
using sat::UnknownReason;

/// One deterministic incremental run: a fixed script of queries under
/// varying assumptions, folded into a replayable fingerprint.
std::string run_deterministic_script(std::uint64_t seed) {
  PortfolioOptions popts;
  popts.num_workers = 4;
  popts.deterministic = true;
  popts.round_conflicts = 128;  // several exchange rounds per query
  PortfolioSolver p(sat::SolverOptions{}, popts);

  CnfFormula f = random_3sat(48, 4.1, seed);
  if (!p.add_formula(f)) return "root-unsat";

  std::string fingerprint;
  for (Var v = 0; v < 6; ++v) {
    for (bool sign : {false, true}) {
      const SolveResult r = p.solve({Lit(v, sign)});
      fingerprint += r == SolveResult::kSat     ? 's'
                     : r == SolveResult::kUnsat ? 'u'
                                                : '?';
      fingerprint += std::to_string(p.winner());
      if (r == SolveResult::kSat) {
        for (Var m = 0; m < f.num_vars(); ++m) {
          fingerprint += p.model_value(m).is_true() ? '1' : '0';
        }
      } else if (r == SolveResult::kUnsat) {
        fingerprint += std::to_string(p.conflict_core().size());
      }
    }
  }
  const sat::SolverStats st = p.stats();
  fingerprint += '|';
  fingerprint += std::to_string(st.conflicts) + ',' +
                 std::to_string(st.decisions) + ',' +
                 std::to_string(st.propagations);
  return fingerprint;
}

TEST(PortfolioStressTest, DeterministicIncrementalSequenceReplaysBitIdentically) {
  for (std::uint64_t seed : {7ull, 19ull, 23ull}) {
    const std::string first = run_deterministic_script(seed);
    const std::string second = run_deterministic_script(seed);
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

TEST(PortfolioStressTest, InterruptHammerLeavesSolverUsable) {
  // Hard enough that most rounds are still searching when the
  // interrupts land; small enough that an un-interrupted verdict is
  // quick.  pigeonhole(8) is UNSAT.
  const CnfFormula f = pigeonhole(8);

  PortfolioOptions popts;
  popts.num_workers = 4;
  PortfolioSolver p(sat::SolverOptions{}, popts);
  ASSERT_TRUE(p.add_formula(f));

  constexpr int kRounds = 8;
  constexpr int kHammers = 3;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<bool> done{false};
    std::vector<std::thread> hammers;
    hammers.reserve(kHammers);
    for (int h = 0; h < kHammers; ++h) {
      // Each hammer fires at its own cadence until the solve returns,
      // so cancellations land before, during, and after the search.
      hammers.emplace_back([&p, &done, h, round] {
        std::this_thread::sleep_for(
            std::chrono::microseconds(50 * (h + 1) * (round + 1)));
        while (!done.load(std::memory_order_acquire)) {
          p.interrupt();
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      });
    }
    const SolveResult r = p.solve();
    done.store(true, std::memory_order_release);
    for (std::thread& t : hammers) t.join();

    // Either the race was lost and the verdict stands, or the
    // interrupt won; nothing else.
    if (r == SolveResult::kUnknown) {
      EXPECT_EQ(p.unknown_reason(), UnknownReason::kInterrupted);
    } else {
      EXPECT_EQ(r, SolveResult::kUnsat);
    }
  }

  // The interrupt flag must not leak into the next, clean solve.
  EXPECT_EQ(p.solve(), SolveResult::kUnsat);
}

TEST(PortfolioStressTest, RacingModeSurvivesRapidShortSolves) {
  // Many short incremental queries stress worker spawn/join and pool
  // cursor handling; the sequential solver is the oracle.
  CnfFormula f = random_3sat(30, 4.26, 99);
  sat::Solver oracle;
  const bool oracle_ok = oracle.add_formula(f);

  PortfolioOptions popts;
  popts.num_workers = 3;
  PortfolioSolver p(sat::SolverOptions{}, popts);
  ASSERT_EQ(p.add_formula(f), oracle_ok);

  for (Var v = 0; v < 10; ++v) {
    const std::vector<Lit> assume{Lit(v % f.num_vars(), (v % 2) != 0)};
    const SolveResult want = oracle_ok ? oracle.solve(assume)
                                       : SolveResult::kUnsat;
    EXPECT_EQ(p.solve(assume), want) << "assumption round " << v;
  }
}

}  // namespace
