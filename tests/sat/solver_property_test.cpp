/// Property tests: the CDCL solver must agree with a brute-force
/// oracle on randomly generated small instances, across clause/variable
/// ratios spanning the under-, critically- and over-constrained
/// regimes, and across solver configurations.
#include <gtest/gtest.h>

#include "cnf/generators.hpp"
#include "sat/dpll.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace sateda::sat {
namespace {

struct RandomCase {
  std::uint64_t seed;
  int num_vars;
  double ratio;
};

class SolverOracleTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(SolverOracleTest, AgreesWithBruteForce) {
  const RandomCase& p = GetParam();
  CnfFormula f = random_3sat(p.num_vars, p.ratio, p.seed);
  const bool expected = testing::brute_force_satisfiable(f);
  Solver s;
  (void)s.add_formula(f);
  SolveResult r = s.solve();
  ASSERT_NE(r, SolveResult::kUnknown);
  EXPECT_EQ(r == SolveResult::kSat, expected);
  if (r == SolveResult::kSat) {
    EXPECT_TRUE(
        f.is_satisfied_by(testing::complete_model(s.model(), f.num_vars())));
  }
}

TEST_P(SolverOracleTest, DpllAgreesWithBruteForce) {
  const RandomCase& p = GetParam();
  CnfFormula f = random_3sat(p.num_vars, p.ratio, p.seed);
  const bool expected = testing::brute_force_satisfiable(f);
  DpllSolver s(f);
  SolveResult r = s.solve();
  ASSERT_NE(r, SolveResult::kUnknown);
  EXPECT_EQ(r == SolveResult::kSat, expected);
  if (r == SolveResult::kSat) {
    EXPECT_TRUE(
        f.is_satisfied_by(testing::complete_model(s.model(), f.num_vars())));
  }
}

TEST_P(SolverOracleTest, AgreesUnderRandomAssumptions) {
  const RandomCase& p = GetParam();
  CnfFormula f = random_3sat(p.num_vars, p.ratio, p.seed);
  Rng rng(p.seed ^ 0xabcdef);
  std::uniform_int_distribution<Var> pick(0, p.num_vars - 1);
  std::bernoulli_distribution coin(0.5);
  std::vector<Lit> assumptions;
  for (int i = 0; i < 3; ++i) assumptions.push_back(Lit(pick(rng), coin(rng)));
  CnfFormula g = f;
  for (Lit a : assumptions) g.add_unit(a);
  const bool expected = testing::brute_force_satisfiable(g);
  Solver s;
  (void)s.add_formula(f);
  EXPECT_EQ(s.solve(assumptions) == SolveResult::kSat, expected);
}

std::vector<RandomCase> make_cases() {
  std::vector<RandomCase> cases;
  std::uint64_t seed = 1000;
  for (double ratio : {2.0, 3.5, 4.26, 5.5, 7.0}) {
    for (int rep = 0; rep < 8; ++rep) {
      cases.push_back({seed++, 14, ratio});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, SolverOracleTest,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<RandomCase>& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

// Larger instances, CDCL vs DPLL cross-check (no oracle).
class CrossCheckTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossCheckTest, CdclAndDpllAgree) {
  CnfFormula f = random_3sat(40, 4.26, GetParam());
  Solver cdcl;
  (void)cdcl.add_formula(f);
  DpllSolver dpll(f);
  SolveResult a = cdcl.solve();
  SolveResult b = dpll.solve();
  ASSERT_NE(a, SolveResult::kUnknown);
  ASSERT_NE(b, SolveResult::kUnknown);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossCheckTest,
                         ::testing::Range<std::uint64_t>(2000, 2012));

}  // namespace
}  // namespace sateda::sat
