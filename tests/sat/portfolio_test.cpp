/// \file portfolio_test.cpp
/// \brief PortfolioSolver: agreement with the single-threaded solver
///        on random instances (both modes), reproducibility of the
///        deterministic mode, cooperative interruption, and stats
///        aggregation.  Run under TSan in CI to validate the sharing
///        protocol.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "cnf/generators.hpp"
#include "sat/core/mus.hpp"
#include "sat/drat_check.hpp"
#include "sat/portfolio.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace {

using namespace sateda;
// sateda::testing (test_util.hpp) would otherwise make the bare
// `testing::` gtest references below ambiguous.
namespace testing = ::testing;
using sat::PortfolioOptions;
using sat::PortfolioSolver;
using sat::SolveResult;
using sat::Solver;

SolveResult reference_verdict(const CnfFormula& f) {
  Solver s;
  if (!s.add_formula(f)) return SolveResult::kUnsat;
  return s.solve();
}

void check_model(const sat::SatEngine& e, const CnfFormula& f) {
  std::vector<bool> bits(f.num_vars());
  for (Var v = 0; v < f.num_vars(); ++v) bits[v] = e.model_value(v).is_true();
  EXPECT_TRUE(f.is_satisfied_by(bits));
}

PortfolioSolver make_portfolio(int workers, bool deterministic) {
  PortfolioOptions popts;
  popts.num_workers = workers;
  popts.deterministic = deterministic;
  return PortfolioSolver(sat::SolverOptions{}, popts);
}

class PortfolioModeTest : public testing::TestWithParam<bool> {};

TEST_P(PortfolioModeTest, AgreesWithSingleSolverOnRandomInstances) {
  const bool deterministic = GetParam();
  // Ratios straddling the phase transition give a mix of SAT and
  // UNSAT; every verdict must match the sequential solver's.
  int sat_seen = 0, unsat_seen = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    CnfFormula f = random_3sat(40, 4.26, seed);
    SolveResult want = reference_verdict(f);
    PortfolioSolver p = make_portfolio(2, deterministic);
    ASSERT_TRUE(p.add_formula(f));
    SolveResult got = p.solve();
    EXPECT_EQ(got, want) << "seed " << seed;
    if (got == SolveResult::kSat) {
      ++sat_seen;
      check_model(p, f);
    } else if (got == SolveResult::kUnsat) {
      ++unsat_seen;
    }
  }
  EXPECT_GT(sat_seen, 0) << "seed family too easy/hard: tune ratios";
  EXPECT_GT(unsat_seen, 0) << "seed family too easy/hard: tune ratios";
}

TEST_P(PortfolioModeTest, RefutesPigeonhole) {
  PortfolioSolver p = make_portfolio(3, GetParam());
  ASSERT_TRUE(p.add_formula(pigeonhole(5)));
  EXPECT_EQ(p.solve(), SolveResult::kUnsat);
  EXPECT_GE(p.winner(), -1);
}

TEST_P(PortfolioModeTest, AssumptionsAndCores) {
  PortfolioSolver p = make_portfolio(2, GetParam());
  Var a = p.new_var(), b = p.new_var();
  ASSERT_TRUE(p.add_clause({neg(a), neg(b)}));
  ASSERT_EQ(p.solve({pos(a), pos(b)}), SolveResult::kUnsat);
  for (Lit l : p.conflict_core()) {
    EXPECT_TRUE(l == pos(a) || l == pos(b));
  }
  EXPECT_TRUE(p.okay());
  ASSERT_EQ(p.solve({pos(a)}), SolveResult::kSat);
  EXPECT_EQ(p.model_value(b), l_false);
}

TEST_P(PortfolioModeTest, MinimizedCoreOverPortfolioIsMus) {
  // MUS extraction drives the portfolio through repeated
  // solve-under-assumptions calls; the winning worker's core must stay
  // sound across rounds in both racing and deterministic modes.
  PortfolioSolver p = make_portfolio(2, GetParam());
  Var x = p.new_var();
  Var s1 = p.new_var(), s2 = p.new_var(), s3 = p.new_var();
  ASSERT_TRUE(p.add_clause({neg(s1), pos(x)}));
  ASSERT_TRUE(p.add_clause({neg(s2), neg(x)}));
  ASSERT_TRUE(p.add_clause({neg(s3), pos(x)}));
  sat::core::CoreResult r =
      sat::core::extract_core(p, {pos(s1), pos(s2), pos(s3)});
  ASSERT_TRUE(r.unsat);
  ASSERT_TRUE(r.minimal);
  // Exactly one x-activator plus the ¬x-activator survive.
  EXPECT_EQ(r.core.size(), 2u);
  EXPECT_TRUE(std::find(r.core.begin(), r.core.end(), pos(s2)) !=
              r.core.end());
  // The portfolio stays usable for further queries.
  EXPECT_EQ(p.solve({pos(s1), pos(s3)}), SolveResult::kSat);
}

TEST_P(PortfolioModeTest, StatsAggregateAcrossWorkers) {
  PortfolioSolver p = make_portfolio(4, GetParam());
  ASSERT_TRUE(p.add_formula(pigeonhole(4)));
  ASSERT_EQ(p.solve(), SolveResult::kUnsat);
  // Every worker entered solve at least once.
  EXPECT_GE(p.stats().solve_calls, 4);
}

INSTANTIATE_TEST_SUITE_P(BothModes, PortfolioModeTest, testing::Bool(),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "deterministic" : "racing";
                         });

TEST(PortfolioDeterministicTest, BitIdenticalAcrossRuns) {
  // Two instances with identical configuration must produce identical
  // verdicts, models and search statistics — including on instances
  // where clause exchange happens across several rounds.
  for (std::uint64_t seed : {5u, 8u, 11u}) {
    CnfFormula f = random_3sat(50, 4.3, seed);
    PortfolioSolver p1 = make_portfolio(3, true);
    PortfolioSolver p2 = make_portfolio(3, true);
    ASSERT_TRUE(p1.add_formula(f));
    ASSERT_TRUE(p2.add_formula(f));
    SolveResult r1 = p1.solve();
    SolveResult r2 = p2.solve();
    ASSERT_EQ(r1, r2) << "seed " << seed;
    EXPECT_EQ(p1.winner(), p2.winner()) << "seed " << seed;
    if (r1 == SolveResult::kSat) {
      ASSERT_EQ(p1.model().size(), p2.model().size());
      for (std::size_t v = 0; v < p1.model().size(); ++v) {
        EXPECT_EQ(p1.model()[v], p2.model()[v]) << "seed " << seed << " var " << v;
      }
    }
    const sat::SolverStats s1 = p1.stats();
    const sat::SolverStats s2 = p2.stats();
    EXPECT_EQ(s1.decisions, s2.decisions) << "seed " << seed;
    EXPECT_EQ(s1.conflicts, s2.conflicts) << "seed " << seed;
    EXPECT_EQ(s1.propagations, s2.propagations) << "seed " << seed;
    EXPECT_EQ(s1.imported_clauses, s2.imported_clauses) << "seed " << seed;
  }
}

TEST(PortfolioDeterministicTest, RepeatSolveOnSameInstanceIsUnsatStable) {
  // Deterministic mode on the same *object*: a second solve() call
  // must return the same verdict even though learnt clauses persist.
  PortfolioSolver p = make_portfolio(2, true);
  ASSERT_TRUE(p.add_formula(pigeonhole(4)));
  EXPECT_EQ(p.solve(), SolveResult::kUnsat);
  EXPECT_EQ(p.solve(), SolveResult::kUnsat);
}

TEST(PortfolioTest, InterruptStopsLongSolve) {
  // pigeonhole(10) takes far longer than the interrupt delay, so the
  // verdict must be kUnknown/kInterrupted well before completion.
  PortfolioSolver p = make_portfolio(2, false);
  ASSERT_TRUE(p.add_formula(pigeonhole(10)));
  std::thread killer([&p] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    p.interrupt();
  });
  SolveResult r = p.solve();
  killer.join();
  EXPECT_EQ(r, SolveResult::kUnknown);
  EXPECT_EQ(p.unknown_reason(), sat::UnknownReason::kInterrupted);
}

TEST(PortfolioTest, ConflictBudgetYieldsUnknown) {
  sat::SolverOptions base;
  base.conflict_budget = 20;
  PortfolioOptions popts;
  popts.num_workers = 2;
  PortfolioSolver p(base, popts);
  ASSERT_TRUE(p.add_formula(pigeonhole(8)));
  EXPECT_EQ(p.solve(), SolveResult::kUnknown);
  EXPECT_EQ(p.unknown_reason(), sat::UnknownReason::kConflictBudget);
}

TEST(PortfolioTest, DefaultWorkerCountIsPositive) {
  PortfolioSolver p = make_portfolio(0, false);
  Var a = p.new_var();
  ASSERT_TRUE(p.add_clause({pos(a)}));
  EXPECT_EQ(p.solve(), SolveResult::kSat);
  EXPECT_GE(p.num_workers(), 1);
}

TEST(PortfolioTest, TrivialUnsatViaAddClause) {
  PortfolioSolver p = make_portfolio(2, false);
  Var a = p.new_var();
  ASSERT_TRUE(p.add_clause({pos(a)}));
  EXPECT_FALSE(p.add_clause({neg(a)}));
  EXPECT_FALSE(p.okay());
  EXPECT_EQ(p.solve(), SolveResult::kUnsat);
}

// --- DRAT certification of the portfolio's UNSAT answers --------------

class PortfolioProofTest : public testing::TestWithParam<bool> {};

TEST_P(PortfolioProofTest, StitchedProofCertifiesPigeonhole) {
  PortfolioSolver p = make_portfolio(3, GetParam());
  p.enable_proof();
  EXPECT_TRUE(p.proof_enabled());
  ASSERT_TRUE(p.add_formula(pigeonhole(5)));
  ASSERT_EQ(p.solve(), SolveResult::kUnsat);
  sat::DratCheckResult r = sat::check_drat(pigeonhole(5), p.stitched_proof());
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(r.refutation);
}

TEST_P(PortfolioProofTest, StitchedProofCertifiesUnderAssumptions) {
  PortfolioSolver p = make_portfolio(2, GetParam());
  p.enable_proof();
  Var a = p.new_var(), b = p.new_var();
  ASSERT_TRUE(p.add_clause({neg(a), neg(b)}));
  ASSERT_EQ(p.solve({pos(a), pos(b)}), SolveResult::kUnsat);
  // The winner logged its negated conflict core; with the assumptions
  // as root units the empty clause follows.
  EXPECT_TRUE(sateda::testing::check_proof(
      [&] {
        CnfFormula f(2);
        f.add_binary(neg(a), neg(b));
        return f;
      }(),
      p.stitched_proof(), {pos(a), pos(b)}));
}

TEST_P(PortfolioProofTest, HelperCertifiesAcrossWorkerCounts) {
  sat::PortfolioOptions popts;
  popts.deterministic = GetParam();
  for (int workers : {1, 2, 4}) {
    EXPECT_TRUE(sateda::testing::verify_unsat_portfolio(
        dubois(8), workers, sat::SolverOptions{}, popts))
        << workers << " workers";
  }
}

INSTANTIATE_TEST_SUITE_P(BothModes, PortfolioProofTest, testing::Bool(),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "deterministic" : "racing";
                         });

}  // namespace
