#include "sat/recursive_learning.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "cnf/generators.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace sateda::sat {
namespace {

/// Figure 4 of the paper, verbatim:
///   ω1 = (u + x + ¬w), ω2 = (x + ¬y), ω3 = (w + y + ¬z),
///   context {z = 1, u = 0}.
/// Satisfying ω3 needs w=1 or y=1; both imply x=1 (via ω1 resp. ω2),
/// so x=1 is necessary and the implicate (¬z + u + x) is recorded.
class Figure4Test : public ::testing::Test {
 protected:
  // Variables: 0=u, 1=x, 2=w, 3=y, 4=z.
  static constexpr Var u = 0, x = 1, w = 2, y = 3, z = 4;
  static CnfFormula formula() {
    CnfFormula f(5);
    f.add_ternary(pos(u), pos(x), neg(w));
    f.add_binary(pos(x), neg(y));
    f.add_ternary(pos(w), pos(y), neg(z));
    return f;
  }
};

TEST_F(Figure4Test, DerivesNecessaryAssignmentX) {
  RecursiveLearningResult r =
      recursive_learn(formula(), {pos(z), neg(u)});
  ASSERT_FALSE(r.unsat);
  EXPECT_NE(std::find(r.necessary.begin(), r.necessary.end(), pos(x)),
            r.necessary.end())
      << "x = 1 must be identified as necessary";
}

TEST_F(Figure4Test, RecordsTheExplanationImplicate) {
  RecursiveLearningResult r =
      recursive_learn(formula(), {pos(z), neg(u)});
  ASSERT_FALSE(r.unsat);
  // Expect an implicate equal (as a set) to (¬z + u + x).
  bool found = false;
  for (const Clause& c : r.implicates) {
    if (c.size() == 3 && c.contains(neg(z)) && c.contains(pos(u)) &&
        c.contains(pos(x))) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "the clause (¬z + u + x) from Fig. 4 must be recorded";
}

TEST_F(Figure4Test, ImplicateIsAnImplicateOfTheFormula) {
  // f ∧ z ∧ ¬u ∧ ¬x must be UNSAT (i.e. f ⊨ (¬z + u + x)).
  CnfFormula f = formula();
  f.add_unit(pos(z));
  f.add_unit(neg(u));
  f.add_unit(neg(x));
  EXPECT_FALSE(testing::brute_force_satisfiable(f));
}

TEST(RecursiveLearningTest, EmptyContextFindsForcedLiterals) {
  // (a + b)(a + ¬b): both ways of satisfying the first clause... in
  // fact a is forced: branching b=1 implies a via the second clause,
  // branching a=1 trivially contains a.
  CnfFormula f(2);
  f.add_binary(pos(0), pos(1));
  f.add_binary(pos(0), neg(1));
  RecursiveLearningResult r = recursive_learn(f);
  ASSERT_FALSE(r.unsat);
  EXPECT_NE(std::find(r.necessary.begin(), r.necessary.end(), pos(0)),
            r.necessary.end());
}

TEST(RecursiveLearningTest, RefutesUnsatisfiableClauseBranches) {
  // Clause (a + b) where both a and b immediately conflict.
  CnfFormula f(2);
  f.add_binary(pos(0), pos(1));
  f.add_unit(neg(0));
  f.add_unit(neg(1));
  EXPECT_TRUE(recursive_learn(f).unsat);
}

TEST(RecursiveLearningTest, DepthTwoFindsDeeperImplications) {
  // Crafted so depth 1 finds nothing but depth 2 does:
  //   (a + b1 + b2); a ⇒ (c + d) with c ⇒ e, d ⇒ e; b1 ⇒ e; b2 ⇒ e.
  // Every literal of every clause leaves some sibling disjunction
  // unresolved at depth 1, but at depth 2 the a-branch applies RL to
  // (c + d), infers e, and e becomes common to all branches.
  CnfFormula f(6);  // 0=a 1=b1 2=b2 3=c 4=d 5=e
  f.add_ternary(pos(0), pos(1), pos(2));
  f.add_ternary(neg(0), pos(3), pos(4));
  f.add_binary(neg(3), pos(5));
  f.add_binary(neg(4), pos(5));
  f.add_binary(neg(1), pos(5));
  f.add_binary(neg(2), pos(5));
  RecursiveLearningOptions shallow;
  shallow.depth = 1;
  RecursiveLearningResult r1 = recursive_learn(f, {}, shallow);
  ASSERT_FALSE(r1.unsat);
  EXPECT_EQ(std::find(r1.necessary.begin(), r1.necessary.end(), pos(5)),
            r1.necessary.end())
      << "depth 1 must not see through the nested disjunction";
  RecursiveLearningOptions deep;
  deep.depth = 2;
  RecursiveLearningResult r2 = recursive_learn(f, {}, deep);
  ASSERT_FALSE(r2.unsat);
  EXPECT_NE(std::find(r2.necessary.begin(), r2.necessary.end(), pos(5)),
            r2.necessary.end())
      << "depth 2 must derive e = 1";
}

class RecursiveLearningPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecursiveLearningPropertyTest, NecessaryLiteralsAreImplied) {
  CnfFormula f = random_3sat(12, 4.0, GetParam());
  RecursiveLearningResult r = recursive_learn(f);
  if (r.unsat) {
    EXPECT_FALSE(testing::brute_force_satisfiable(f));
    return;
  }
  for (Lit l : r.necessary) {
    CnfFormula g = f;
    g.add_unit(~l);
    EXPECT_FALSE(testing::brute_force_satisfiable(g))
        << to_string(l) << " reported necessary but its complement is "
        << "consistent with the formula";
  }
}

TEST_P(RecursiveLearningPropertyTest, StrengthenedFormulaEquisatisfiable) {
  CnfFormula f = random_3sat(12, 4.3, GetParam());
  CnfFormula g = strengthen_with_recursive_learning(f);
  EXPECT_EQ(testing::brute_force_satisfiable(f),
            testing::brute_force_satisfiable(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecursiveLearningPropertyTest,
                         ::testing::Range<std::uint64_t>(4000, 4016));

}  // namespace
}  // namespace sateda::sat
