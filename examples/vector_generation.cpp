/// \file vector_generation.cpp
/// \brief Functional vector generation (paper §3, ref. [13]) plus the
///        optimization applications (§3, refs [22, 23]): enumerate
///        stimulus vectors hitting a coverage condition, solve a
///        covering problem, and compute a minimum-size prime implicant.
#include <cstdio>

#include "circuit/generators.hpp"
#include "circuit/simulator.hpp"
#include "cnf/generators.hpp"
#include "opt/covering.hpp"
#include "opt/prime_implicants.hpp"
#include "vectors/vectors.hpp"

int main() {
  using namespace sateda;

  // 1. Functional vectors: stimuli making the 8-bit adder overflow
  //    (cout = 1) — a typical HDL coverage condition.
  circuit::Circuit adder = circuit::ripple_carry_adder(8);
  circuit::NodeId cout = adder.outputs().back();
  vectors::VectorGenResult vg =
      vectors::generate_vectors(adder, cout, true, 8);
  std::printf("coverage condition cout=1: %zu distinct vectors "
              "(%d SAT calls)\n",
              vg.vectors.size(), vg.sat_calls);
  for (std::size_t i = 0; i < vg.vectors.size() && i < 4; ++i) {
    std::printf("  v%zu:", i);
    for (bool b : vg.vectors[i]) std::printf("%d", b ? 1 : 0);
    std::printf(" -> cout=%d\n",
                circuit::simulate(adder, vg.vectors[i])[cout] ? 1 : 0);
  }

  // 2. Covering (refs [9, 23]): SAT-pruned branch and bound vs the
  //    pure-SAT cost search.
  opt::CoveringProblem cover = opt::random_covering(20, 30, 4, 7);
  opt::CoveringOptions pruned;
  pruned.sat_pruning = true;
  opt::CoveringResult bnb = opt::solve_covering_bnb(cover, pruned);
  opt::CoveringResult via_sat = opt::solve_covering_sat(cover);
  std::printf("\ncovering (20 cols, 30 rows): optimum=%d  [B&B+SAT: %s]  "
              "[SAT search: %s]\n",
              bnb.cost, bnb.stats.summary().c_str(),
              via_sat.stats.summary().c_str());

  // 3. Minimum-size prime implicant (ref. [22]).
  CnfFormula f = random_3sat(12, 2.0, 99);
  opt::PrimeImplicantResult pi = opt::minimum_prime_implicant(f);
  if (pi.exists) {
    std::printf("\nminimum prime implicant of a 12-var formula: {");
    for (std::size_t i = 0; i < pi.cube.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", to_string(pi.cube[i]).c_str());
    }
    std::printf("} (%zu literals, %d SAT calls, prime=%s)\n", pi.cube.size(),
                pi.sat_calls,
                opt::is_prime_implicant(f, pi.cube) ? "yes" : "no");
  }
  return 0;
}
