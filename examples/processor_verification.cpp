/// \file processor_verification.cpp
/// \brief Processor verification via EUF→SAT (paper §3, ref. [6]):
///        validate a 2-stage pipelined toy datapath against its ISA
///        for *all* ALU interpretations at once, and catch a missing
///        forwarding path.
#include <cstdio>

#include "euf/euf.hpp"
#include "euf/pipeline.hpp"

int main() {
  using namespace sateda::euf;

  // Warm-up: the EUF decision procedure on congruence facts.
  EufContext ctx;
  TermId x = ctx.term_var("x");
  TermId y = ctx.term_var("y");
  FormulaId claim = ctx.f_implies(
      ctx.eq(x, y),
      ctx.eq(ctx.apply("alu", {ctx.term_var("op"), x}),
             ctx.apply("alu", {ctx.term_var("op2"), y})));
  std::printf("x=y ⇒ alu(op,x)=alu(op2,y)  : %s (as it should be — "
              "different opcodes)\n",
              ctx.is_valid(claim) ? "VALID" : "INVALID");
  FormulaId claim2 = ctx.f_implies(
      ctx.eq(x, y),
      ctx.eq(ctx.apply("f", {x}), ctx.apply("f", {y})));
  std::printf("x=y ⇒ f(x)=f(y)             : %s (functional consistency)\n",
              ctx.is_valid(claim2) ? "VALID" : "INVALID");

  // The headline query: pipeline with forwarding == ISA.
  PipelineVerification good = verify_toy_pipeline(/*with_forwarding=*/true);
  std::printf("\npipeline WITH forwarding    : %s  (%d atoms, %zu CNF "
              "clauses)\n",
              good.valid ? "CORRECT for every ALU interpretation"
                         : "BUG FOUND?!",
              good.query.atoms, good.query.cnf_clauses);

  PipelineVerification bad = verify_toy_pipeline(/*with_forwarding=*/false);
  std::printf("pipeline WITHOUT forwarding : %s\n",
              bad.valid ? "correct?!"
                        : "RAW-HAZARD COUNTEREXAMPLE FOUND");
  return 0;
}
