/// \file quickstart.cpp
/// \brief Five-minute tour of the toolkit, following the paper §2:
///        build the Figure 1 example circuit, derive its CNF formula,
///        state an objective (z = 0) and solve it — first as a plain
///        CNF instance, then with the §5 structural layer to get a
///        de-overspecified (partial) input pattern.
#include <cstdio>

#include "circuit/encoder.hpp"
#include "circuit/generators.hpp"
#include "circuit/simulator.hpp"
#include "csat/circuit_sat.hpp"
#include "sat/solver.hpp"

int main() {
  using namespace sateda;

  // 1. A combinational circuit (reconstruction of the paper's Fig. 1).
  circuit::Circuit c = circuit::example_figure1();
  std::printf("circuit '%s': %zu inputs, %zu gates, %zu outputs\n",
              c.name().c_str(), c.inputs().size(), c.num_gates(),
              c.outputs().size());

  // 2. Its CNF formula (Table 1 gate encodings, conjoined).
  CnfFormula phi = circuit::encode_circuit(c);
  std::printf("CNF: %d variables, %zu clauses\n", phi.num_vars(),
              phi.num_clauses());
  std::printf("phi = %s\n", phi.to_string().c_str());

  // 3. Objective: drive output z to 0 (Figure 1(b)).
  circuit::NodeId z = c.find("z");
  sat::Solver solver;
  (void)solver.add_formula(circuit::encode_objective(c, z, false));
  if (solver.solve() == sat::SolveResult::kSat) {
    std::printf("plain CNF solve: SAT, inputs =");
    for (circuit::NodeId i : c.inputs()) {
      std::printf(" %s=%s", c.node(i).name.c_str(),
                  to_string(solver.model_value(i)).c_str());
    }
    std::printf("   (%s)\n", solver.stats().summary().c_str());
  }

  // 4. Same objective through the §5 circuit-SAT layer: the solver
  //    stops at an empty justification frontier, so don't-care inputs
  //    stay unassigned.
  csat::CircuitSatSolver csolver(c);
  csat::CircuitSatResult r = csolver.solve(z, false);
  if (r.result == sat::SolveResult::kSat) {
    std::printf("with justification layer: SAT, inputs =");
    for (std::size_t i = 0; i < c.inputs().size(); ++i) {
      std::printf(" %s=%s", c.node(c.inputs()[i]).name.c_str(),
                  to_string(r.input_pattern[i]).c_str());
    }
    std::printf("  (%d of %zu inputs specified)\n", r.specified_inputs,
                c.inputs().size());
    // Confirm by 3-valued simulation that the partial pattern already
    // forces z = 0.
    auto vals = circuit::simulate_ternary(c, r.input_pattern);
    std::printf("ternary simulation confirms z = %s\n",
                to_string(vals[z]).c_str());
  }
  return 0;
}
