/// \file bmc_flow.cpp
/// \brief Bounded model checking (paper §3, ref. [5]): check safety
///        monitors on three small machines, print counterexample
///        traces and replay them on the simulator as a sanity check.
#include <cstdio>

#include "bmc/bmc.hpp"

namespace {

void report(const char* name, const sateda::bmc::SequentialCircuit& m,
            const sateda::bmc::BmcResult& r) {
  using sateda::bmc::BmcVerdict;
  std::printf("%-12s verdict=%s", name, to_string(r.verdict).c_str());
  if (r.verdict == BmcVerdict::kCounterexample) {
    std::printf(" depth=%d trace:", r.depth);
    for (const auto& frame : r.trace) {
      std::printf(" [");
      for (bool b : frame) std::printf("%d", b ? 1 : 0);
      std::printf("]");
    }
    std::printf(" replay=%s",
                replay_reaches_bad(m, r.trace) ? "confirmed" : "BOGUS!");
  }
  std::printf("  (%lld conflicts)\n", static_cast<long long>(r.conflicts));
}

}  // namespace

int main() {
  using namespace sateda::bmc;

  // 1. A 6-bit counter must not reach 37.
  SequentialCircuit counter = counter_machine(6, 37);
  report("counter", counter, bounded_model_check(counter));

  // 2. A 5-stage shift register raises `bad` after five straight 1s.
  SequentialCircuit shift = shift_register_machine(5);
  report("shift", shift, bounded_model_check(shift));

  // 3. Handshake FSM protocol monitor.
  SequentialCircuit hs = handshake_machine();
  report("handshake", hs, bounded_model_check(hs));

  // 4. Autonomous LFSR: does the trajectory pass through a state?
  SequentialCircuit lfsr = lfsr_machine(8, 0b10111000, 1, 0x5a);
  BmcOptions deep;
  deep.max_depth = 300;
  report("lfsr", lfsr, bounded_model_check(lfsr, deep));

  // 5. Safety holds: bad value outside the counter range.
  SequentialCircuit safe = counter_machine(4, 999);
  BmcOptions opts;
  opts.max_depth = 32;
  report("safe", safe, bounded_model_check(safe, opts));
  return 0;
}
