/// \file equivalence_flow.cpp
/// \brief Combinational equivalence checking (paper §3, refs [16, 26]):
///        verify a ripple-carry adder against a re-synthesized
///        (NOR-logic) implementation, then catch an injected bug and
///        print the distinguishing input vector.
#include <cstdio>

#include "circuit/generators.hpp"
#include "circuit/miter.hpp"
#include "circuit/simulator.hpp"
#include "equiv/cec.hpp"

namespace {

using namespace sateda;
using circuit::Circuit;
using circuit::NodeId;

/// Same adder function, synthesized with De Morgan'd carry logic.
Circuit resynthesized_adder(int n) {
  Circuit c("adder_nor");
  std::vector<NodeId> a(n), b(n);
  for (int i = 0; i < n; ++i) a[i] = c.add_input("a" + std::to_string(i));
  for (int i = 0; i < n; ++i) b[i] = c.add_input("b" + std::to_string(i));
  NodeId carry = c.add_input("cin");
  for (int i = 0; i < n; ++i) {
    NodeId p = c.add_xor(a[i], b[i]);
    c.mark_output(c.add_xor(p, carry), "s" + std::to_string(i));
    NodeId g = c.add_and(a[i], b[i]);
    NodeId pc = c.add_and(p, carry);
    carry = c.add_nor(c.add_nor(g, pc), c.add_nor(g, pc));  // OR via NOR
  }
  c.mark_output(carry, "cout");
  return c;
}

}  // namespace

int main() {
  const int n = 8;
  Circuit golden = circuit::ripple_carry_adder(n);
  Circuit revised = resynthesized_adder(n);
  std::printf("golden: %zu gates | revised: %zu gates\n", golden.num_gates(),
              revised.num_gates());

  equiv::CecResult ok = equiv::check_equivalence(golden, revised);
  std::printf("CEC verdict: %s (%s, %lld conflicts)\n",
              to_string(ok.verdict).c_str(),
              ok.settled_structurally ? "settled by strashing" : "via SAT",
              static_cast<long long>(ok.conflicts));

  // Inject a bug: drop the carry chain at bit 5 by rebuilding with a
  // stuck connection, then re-check.
  Circuit buggy("adder_bug");
  {
    std::vector<NodeId> in;
    for (std::size_t i = 0; i < revised.inputs().size(); ++i) {
      in.push_back(buggy.add_input());
    }
    auto map = circuit::append_copy(buggy, revised, in);
    for (std::size_t i = 0; i < revised.outputs().size(); ++i) {
      NodeId o = map[revised.outputs()[i]];
      if (i == 5) o = buggy.add_not(o);  // inverted sum bit 5
      buggy.mark_output(o, "o" + std::to_string(i));
    }
  }
  equiv::CecResult bad = equiv::check_equivalence(golden, buggy);
  std::printf("buggy CEC verdict: %s\n", to_string(bad.verdict).c_str());
  if (bad.verdict == equiv::CecVerdict::kNotEquivalent) {
    std::printf("counterexample inputs:");
    for (bool bit : bad.counterexample) std::printf(" %d", bit ? 1 : 0);
    auto g_out = circuit::simulate_outputs(golden, bad.counterexample);
    auto b_out = circuit::simulate_outputs(buggy, bad.counterexample);
    std::printf("\ngolden outputs: ");
    for (bool bit : g_out) std::printf("%d", bit ? 1 : 0);
    std::printf("\nbuggy  outputs: ");
    for (bool bit : b_out) std::printf("%d", bit ? 1 : 0);
    std::printf("\n");
  }
  return 0;
}
