/// \file delay_flow.cpp
/// \brief SAT-based circuit delay computation (paper §3, refs
///        [28, 36]) and path-delay test generation (ref. [7]): compare
///        the topological delay bound against the true sensitizable
///        delay, and generate sensitization vectors for the longest
///        structural paths.
#include <cstdio>

#include "circuit/generators.hpp"
#include "delay/delay.hpp"

int main() {
  using namespace sateda;

  struct Case {
    const char* name;
    circuit::Circuit circuit;
  };
  Case cases[] = {
      {"c17", circuit::c17()},
      {"rca8", circuit::ripple_carry_adder(8)},
      {"alu4", circuit::alu(4)},
      {"mux16", circuit::mux_tree(4)},
      {"rand", circuit::random_circuit(12, 80, 42)},
  };

  std::printf("%-8s %12s %14s %10s\n", "circuit", "topological",
              "sensitizable", "queries");
  for (Case& tc : cases) {
    delay::DelayResult r = delay::compute_delay(tc.circuit);
    std::printf("%-8s %12d %14d %10d%s\n", tc.name, r.topological,
                r.sensitizable, r.sat_queries,
                r.sensitizable < r.topological ? "   <- false paths!" : "");
  }

  // Path-delay testing on the ALU: enumerate the longest structural
  // paths and try to sensitize each (untestable paths are reported).
  circuit::Circuit alu = circuit::alu(4);
  std::vector<delay::Path> paths = delay::longest_paths(alu, 8);
  std::printf("\nALU longest paths (%d levels): %zu enumerated\n",
              delay::topological_delay(alu), paths.size());
  int testable = 0;
  for (const delay::Path& p : paths) {
    if (delay::sensitize_path(alu, p).has_value()) ++testable;
  }
  std::printf("single-vector sensitizable: %d / %zu\n", testable,
              paths.size());
  return 0;
}
