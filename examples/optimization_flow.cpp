/// \file optimization_flow.cpp
/// \brief SAT in logic optimization and signal integrity (paper §3,
///        refs [12, 17, 8]): strip provably redundant logic from a
///        circuit, then compute the functional worst-case crosstalk on
///        a correlated bus.
#include <cstdio>

#include "circuit/generators.hpp"
#include "circuit/netlist.hpp"
#include "noise/crosstalk.hpp"
#include "synth/rar.hpp"

int main() {
  using namespace sateda;
  using circuit::NodeId;

  // 1. Redundancy removal: a multiplexer with a lazily-written
  //    "safety" term y = sel?a:b + a·b (the a·b term is the consensus
  //    of the mux — pure redundancy).
  circuit::Circuit c;
  NodeId sel = c.add_input("sel");
  NodeId a = c.add_input("a");
  NodeId b = c.add_input("b");
  NodeId nsel = c.add_not(sel);
  NodeId ta = c.add_and(sel, a);
  NodeId tb = c.add_and(nsel, b);
  NodeId mux = c.add_or(ta, tb);
  NodeId consensus = c.add_and(a, b);  // redundant consensus term
  NodeId y = c.add_or(mux, consensus);
  c.mark_output(y, "y");

  synth::RarStats stats;
  circuit::Circuit optimized = synth::remove_redundancies(c, {}, &stats);
  std::printf("redundancy removal: %s\n", stats.summary().c_str());

  // 2. Crosstalk: ALU result bus — how many bits can really rise at
  //    once while bit 0 stays quiet?
  circuit::Circuit alu = circuit::alu(6);
  NodeId victim = alu.outputs()[0];
  std::vector<NodeId> aggressors(alu.outputs().begin() + 1,
                                 alu.outputs().end());
  noise::CrosstalkResult xt =
      noise::worst_case_aggressors(alu, victim, aggressors);
  std::printf("crosstalk on alu6 bus: topological bound %d, functional "
              "worst case %d\n",
              xt.topological_bound, xt.functional_worst);

  // 3. The same question on logic with heavy correlation: a one-hot
  //    decoder — only ONE output can ever rise.
  circuit::Circuit dec;
  NodeId s0 = dec.add_input("s0");
  NodeId s1 = dec.add_input("s1");
  NodeId q = dec.add_input("q");
  NodeId n0 = dec.add_not(s0);
  NodeId n1 = dec.add_not(s1);
  std::vector<NodeId> hot = {
      dec.add_and(n1, n0), dec.add_and(n1, s0),
      dec.add_and(s1, n0), dec.add_and(s1, s0)};
  for (NodeId h : hot) dec.mark_output(h);
  NodeId vq = dec.add_buf(q);
  dec.mark_output(vq, "victim");
  noise::CrosstalkResult oh = noise::worst_case_aggressors(dec, vq, hot);
  std::printf("crosstalk on one-hot decoder: topological %d, functional %d "
              "(logic allows a single aligned aggressor)\n",
              oh.topological_bound, oh.functional_worst);
  return 0;
}
