/// \file atpg_flow.cpp
/// \brief Complete test-generation flow for a small ALU (paper §3,
///        refs [20, 25, 17]): fault enumeration and collapsing, a
///        random-pattern phase, SAT-based deterministic ATPG for the
///        hard faults, redundancy identification, and a final
///        fault-simulation audit of the produced test set.
#include <cstdio>

#include "atpg/engine.hpp"
#include "circuit/generators.hpp"

int main() {
  using namespace sateda;

  circuit::Circuit c = circuit::alu(4);
  std::printf("design: %s (%zu gates)\n", c.name().c_str(), c.num_gates());

  std::vector<atpg::Fault> all = atpg::enumerate_faults(c);
  std::vector<atpg::Fault> collapsed = atpg::collapse_faults(c, all);
  std::printf("faults: %zu total, %zu after structural collapsing\n",
              all.size(), collapsed.size());

  atpg::AtpgOptions opts;
  opts.random_patterns = 64;
  atpg::AtpgResult r = atpg::run_atpg(c, opts);
  std::printf("ATPG: %s\n", r.stats.summary().c_str());
  std::printf("  test set size: %zu patterns\n", r.tests.size());
  std::printf("  fault coverage: %.2f%%, test efficiency: %.2f%%\n",
              100.0 * r.stats.fault_coverage(),
              100.0 * r.stats.test_efficiency());

  // Show a couple of deterministic patterns.
  int shown = 0;
  for (std::size_t i = 0; i < r.faults.size() && shown < 3; ++i) {
    if (r.status[i] != atpg::FaultStatus::kDetected) continue;
    std::vector<lbool> partial;
    if (atpg::generate_test(c, r.faults[i], partial) ==
        atpg::FaultStatus::kDetected) {
      std::printf("  test for %s:", to_string(r.faults[i]).c_str());
      for (lbool v : partial) std::printf(" %s", to_string(v).c_str());
      std::printf("\n");
      ++shown;
    }
  }

  // Redundancy identification (ref. [17]) on a circuit that has one.
  circuit::Circuit red;
  circuit::NodeId a = red.add_input("a");
  circuit::NodeId b = red.add_input("b");
  circuit::NodeId g = red.add_and(a, b);
  circuit::NodeId y = red.add_or(a, g, "y");  // absorption: g redundant
  red.mark_output(y, "out");
  std::vector<lbool> unused;
  atpg::FaultStatus st =
      atpg::generate_test(red, atpg::Fault{g, atpg::Fault::kOutputPin, false},
                          unused);
  std::printf("redundancy check: AND output sa0 in y=a+(a·b) is %s\n",
              st == atpg::FaultStatus::kRedundant ? "REDUNDANT (proved UNSAT)"
                                                  : "testable?!");
  return 0;
}
