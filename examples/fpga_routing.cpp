/// \file fpga_routing.cpp
/// \brief SAT-based detailed routing (paper §3, refs [29, 30]): route
///        a channel with vertical constraints, find the minimum track
///        count and print the layout.
#include <cstdio>

#include "fpga/routing.hpp"

int main() {
  using namespace sateda::fpga;

  ChannelProblem p = random_channel(14, 16, 0.12, 21);
  std::printf("channel: %zu nets, %d columns, %zu vertical constraints\n",
              p.nets.size(), p.num_columns(), p.verticals.size());
  std::printf("density lower bound: %d   left-edge greedy (no verticals): %d\n",
              channel_density(p), left_edge_tracks(p));

  int t = minimum_tracks(p, 14);
  std::printf("SAT minimum tracks (with verticals): %d\n", t);
  RouteResult r = route_channel(p, t);
  if (!r.routable) return 1;
  std::printf("routing valid: %s\n\n",
              validate_routing(p, r.track, t) ? "yes" : "NO");

  // ASCII layout: one row per track.
  const int cols = p.num_columns();
  for (int track = 0; track < t; ++track) {
    std::printf("track %2d |", track);
    std::string row(cols, '.');
    for (std::size_t n = 0; n < p.nets.size(); ++n) {
      if (r.track[n] != track) continue;
      for (int cidx = p.nets[n].left; cidx <= p.nets[n].right; ++cidx) {
        row[cidx] = static_cast<char>('A' + (n % 26));
      }
    }
    std::printf("%s|\n", row.c_str());
  }
  return 0;
}
