/// \file bench_bdd_cec.cpp
/// \brief Experiment E15 (paper §1's SAT-vs-BDD framing; ref. [16]):
///        BDD-based vs SAT-based vs hybrid equivalence checking.
///        BDDs win when a good variable order keeps them small
///        (adders, interleaved) and hit the exponential wall where SAT
///        keeps going (multipliers, bad orders); the [16] hybrid takes
///        the best of both.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "circuit/generators.hpp"
#include "equiv/bdd_cec.hpp"

namespace {

using namespace sateda;

void Adder_Bdd_Interleaved(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  circuit::Circuit a = circuit::ripple_carry_adder(n);
  circuit::Circuit b = benchutil::resynthesized_adder(n);
  equiv::BddCecResult r;
  for (auto _ : state) {
    equiv::BddCecOptions opts;
    opts.interleave_inputs = true;
    r = equiv::check_equivalence_bdd(a, b, opts);
    if (r.verdict != equiv::CecVerdict::kEquivalent) {
      state.SkipWithError("unexpected verdict");
    }
  }
  state.counters["bdd_nodes"] = static_cast<double>(r.bdd_nodes);
}
BENCHMARK(Adder_Bdd_Interleaved)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void Adder_Bdd_NaturalOrder(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  circuit::Circuit a = circuit::ripple_carry_adder(n);
  circuit::Circuit b = benchutil::resynthesized_adder(n);
  equiv::BddCecResult r;
  for (auto _ : state) {
    equiv::BddCecOptions opts;
    opts.interleave_inputs = false;
    opts.node_limit = 1u << 18;  // the bad order hits this wall fast
    r = equiv::check_equivalence_bdd(a, b, opts);
  }
  state.counters["bdd_nodes"] = static_cast<double>(r.bdd_nodes);
  state.counters["blew_up"] = r.verdict == equiv::CecVerdict::kUnknown ? 1 : 0;
}
BENCHMARK(Adder_Bdd_NaturalOrder)->Arg(8)->Arg(12)->Arg(16)->Unit(benchmark::kMillisecond);

void Adder_Sat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  circuit::Circuit a = circuit::ripple_carry_adder(n);
  circuit::Circuit b = benchutil::resynthesized_adder(n);
  equiv::CecResult r;
  for (auto _ : state) {
    r = equiv::check_equivalence(a, b);
    if (r.verdict != equiv::CecVerdict::kEquivalent) {
      state.SkipWithError("unexpected verdict");
    }
  }
  state.counters["conflicts"] = static_cast<double>(r.conflicts);
}
BENCHMARK(Adder_Sat)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

// Multipliers: exponential for BDDs under every order; SAT (with
// structural hashing on the identical pair) stays feasible.
void Multiplier_Bdd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  circuit::Circuit a = circuit::array_multiplier(n);
  equiv::BddCecResult r;
  for (auto _ : state) {
    equiv::BddCecOptions opts;
    opts.node_limit = 1u << 20;
    opts.interleave_inputs = true;
    r = equiv::check_equivalence_bdd(a, circuit::array_multiplier(n), opts);
  }
  state.counters["bdd_nodes"] = static_cast<double>(r.bdd_nodes);
  state.counters["blew_up"] = r.verdict == equiv::CecVerdict::kUnknown ? 1 : 0;
}
BENCHMARK(Multiplier_Bdd)->Arg(6)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

void Multiplier_Sat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  circuit::Circuit a = circuit::array_multiplier(n);
  equiv::CecResult r;
  for (auto _ : state) {
    r = equiv::check_equivalence(a, circuit::array_multiplier(n));
    if (r.verdict != equiv::CecVerdict::kEquivalent) {
      state.SkipWithError("unexpected verdict");
    }
  }
  state.counters["structural"] = r.settled_structurally ? 1 : 0;
}
BENCHMARK(Multiplier_Sat)->Arg(6)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

// The hybrid flow across a mixed workload: small/easy settled by BDD,
// blowups falling back to SAT.
void Hybrid_Mixed(benchmark::State& state) {
  struct Pair {
    circuit::Circuit a, b;
  };
  std::vector<Pair> workload;
  workload.push_back({circuit::ripple_carry_adder(16),
                      benchutil::resynthesized_adder(16)});
  workload.push_back({circuit::alu(6), circuit::alu(6)});
  workload.push_back(
      {circuit::array_multiplier(7), circuit::array_multiplier(7)});
  int bdd_settled = 0;
  for (auto _ : state) {
    bdd_settled = 0;
    for (const Pair& p : workload) {
      equiv::BddCecOptions opts;
      opts.node_limit = 50000;
      opts.interleave_inputs = true;
      equiv::HybridCecResult r =
          equiv::check_equivalence_hybrid(p.a, p.b, opts);
      if (r.result.verdict != equiv::CecVerdict::kEquivalent) {
        state.SkipWithError("unexpected verdict");
      }
      if (r.used_bdd) ++bdd_settled;
    }
  }
  state.counters["pairs"] = static_cast<double>(workload.size());
  state.counters["bdd_settled"] = static_cast<double>(bdd_settled);
}
BENCHMARK(Hybrid_Mixed)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
