/// \file bench_fpga.cpp
/// \brief Experiment E11 (paper §3, refs [29, 30]): SAT-based detailed
///        routing.  Routability decisions vs track count, minimum
///        channel height vs the density bound, and scaling in net
///        count and vertical-constraint pressure.
#include <benchmark/benchmark.h>

#include "fpga/routing.hpp"

namespace {

using namespace sateda;

void MinTracks_NetSweep(benchmark::State& state) {
  const int nets = static_cast<int>(state.range(0));
  fpga::ChannelProblem p = fpga::random_channel(nets, nets + 6, 0.1, 3);
  int tracks = -1;
  for (auto _ : state) {
    tracks = fpga::minimum_tracks(p, nets);
  }
  state.counters["tracks"] = static_cast<double>(tracks);
  state.counters["density"] = static_cast<double>(fpga::channel_density(p));
  state.counters["left_edge"] = static_cast<double>(fpga::left_edge_tracks(p));
}
BENCHMARK(MinTracks_NetSweep)->Arg(10)->Arg(16)->Arg(24)->Arg(32)->Unit(benchmark::kMillisecond);

void MinTracks_VerticalPressure(benchmark::State& state) {
  const double prob = static_cast<double>(state.range(0)) / 100.0;
  fpga::ChannelProblem p = fpga::random_channel(18, 22, prob, 9);
  int tracks = -1;
  for (auto _ : state) {
    tracks = fpga::minimum_tracks(p, 18);
  }
  state.counters["tracks"] = static_cast<double>(tracks);
  state.counters["density"] = static_cast<double>(fpga::channel_density(p));
  state.counters["verticals"] = static_cast<double>(p.verticals.size());
}
BENCHMARK(MinTracks_VerticalPressure)->Arg(0)->Arg(10)->Arg(25)->Arg(50)->Unit(benchmark::kMillisecond);

// Single routability decision at exactly the minimum (SAT) and one
// below it (UNSAT) — decision cost on both sides of the boundary.
void Routable_AtMinimum(benchmark::State& state) {
  fpga::ChannelProblem p = fpga::random_channel(24, 28, 0.15, 17);
  const int t = fpga::minimum_tracks(p, 24);
  fpga::RouteResult r;
  for (auto _ : state) {
    r = fpga::route_channel(p, t);
    if (!r.routable) state.SkipWithError("must be routable at minimum");
  }
  state.counters["tracks"] = static_cast<double>(t);
  state.counters["conflicts"] = static_cast<double>(r.conflicts);
}
BENCHMARK(Routable_AtMinimum)->Unit(benchmark::kMillisecond);

void Unroutable_BelowMinimum(benchmark::State& state) {
  // Deterministic instance whose vertical chain forces the height two
  // above the density bound: nets 0-4 are horizontally disjoint but
  // chained by verticals, interleaved with overlapping filler nets.
  fpga::ChannelProblem p;
  p.nets = {{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9},
            {1, 4}, {3, 8}, {0, 9}};
  p.verticals = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  const int t = fpga::minimum_tracks(p, 12);
  if (t <= fpga::channel_density(p)) {
    state.SkipWithError("instance unexpectedly easy");
    return;
  }
  fpga::RouteResult r;
  for (auto _ : state) {
    r = fpga::route_channel(p, t - 1);
    if (r.routable) state.SkipWithError("must be unroutable below minimum");
  }
  state.counters["tracks"] = static_cast<double>(t - 1);
  state.counters["conflicts"] = static_cast<double>(r.conflicts);
}
BENCHMARK(Unroutable_BelowMinimum)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
