/// \file bench_local_search.cpp
/// \brief Experiment E14 (paper §4, ref. [32]): "Of these, only
///        backtrack search has proven useful for solving instances of
///        SAT from EDA applications, in particular for applications
///        where the objective is to prove unsatisfiability."
///        WalkSAT vs CDCL across the regimes: satisfiable random
///        (local search shines), UNSAT combinatorial and
///        circuit-structured EDA instances (local search cannot even
///        answer).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "cnf/generators.hpp"
#include "sat/local_search.hpp"
#include "sat/solver.hpp"

namespace {

using namespace sateda;

void run_walksat(benchmark::State& state, const CnfFormula& f,
                 sat::SolveResult acceptable) {
  sat::WalkSatStats stats;
  int solved = 0, runs = 0;
  for (auto _ : state) {
    sat::WalkSatOptions opts;
    opts.seed = 1000 + static_cast<std::uint64_t>(runs);
    sat::WalkSatSolver s(f, opts);
    sat::SolveResult r = s.solve();
    ++runs;
    if (r == sat::SolveResult::kSat) ++solved;
    if (r != acceptable && r != sat::SolveResult::kUnknown) {
      state.SkipWithError("unexpected verdict");
    }
    stats = s.walksat_stats();
  }
  state.counters["flips"] = static_cast<double>(stats.flips);
  state.counters["solved_pct"] =
      runs ? 100.0 * solved / static_cast<double>(runs) : 0.0;
}

void run_cdcl(benchmark::State& state, const CnfFormula& f,
              sat::SolveResult expect) {
  std::int64_t conflicts = 0;
  for (auto _ : state) {
    sat::Solver s;
    (void)s.add_formula(f);
    if (s.solve() != expect) state.SkipWithError("unexpected verdict");
    conflicts = s.stats().conflicts;
  }
  state.counters["conflicts"] = static_cast<double>(conflicts);
  state.counters["solved_pct"] = 100.0;
}

// Regime 1: satisfiable random 3-SAT — local search's home turf.
void SatRandom_WalkSat(benchmark::State& state) {
  CnfFormula f = planted_ksat(static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(0) * 4.1), 3, 5);
  run_walksat(state, f, sat::SolveResult::kSat);
}
BENCHMARK(SatRandom_WalkSat)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

void SatRandom_CDCL(benchmark::State& state) {
  CnfFormula f = planted_ksat(static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(0) * 4.1), 3, 5);
  run_cdcl(state, f, sat::SolveResult::kSat);
}
BENCHMARK(SatRandom_CDCL)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

// Regime 2: UNSAT pigeonhole — local search burns its whole budget
// and answers nothing (solved_pct = 0); CDCL refutes.
void UnsatPhp_WalkSat(benchmark::State& state) {
  CnfFormula f = pigeonhole(static_cast<int>(state.range(0)));
  run_walksat(state, f, sat::SolveResult::kUnsat);
}
BENCHMARK(UnsatPhp_WalkSat)->Arg(5)->Arg(6)->Unit(benchmark::kMillisecond);

void UnsatPhp_CDCL(benchmark::State& state) {
  CnfFormula f = pigeonhole(static_cast<int>(state.range(0)));
  run_cdcl(state, f, sat::SolveResult::kUnsat);
}
BENCHMARK(UnsatPhp_CDCL)->Arg(5)->Arg(6)->Unit(benchmark::kMillisecond);

// Regime 3: circuit-structured CEC miters (UNSAT) — the EDA case.
void UnsatMiter_WalkSat(benchmark::State& state) {
  CnfFormula f = benchutil::adder_miter_cnf(static_cast<int>(state.range(0)));
  run_walksat(state, f, sat::SolveResult::kUnsat);
}
BENCHMARK(UnsatMiter_WalkSat)->Arg(8)->Unit(benchmark::kMillisecond);

void UnsatMiter_CDCL(benchmark::State& state) {
  CnfFormula f = benchutil::adder_miter_cnf(static_cast<int>(state.range(0)));
  run_cdcl(state, f, sat::SolveResult::kUnsat);
}
BENCHMARK(UnsatMiter_CDCL)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

// Regime 4: satisfiable *structured* instances (circuit objective) —
// even here the structure trips local search's plateau behaviour.
void SatCircuit_WalkSat(benchmark::State& state) {
  circuit::Circuit c =
      circuit::random_circuit(24, static_cast<int>(state.range(0)), 3);
  CnfFormula f = circuit::encode_circuit(c);
  f.add_unit(pos(c.outputs()[0]));
  sat::Solver probe;
  (void)probe.add_formula(f);
  if (probe.solve() != sat::SolveResult::kSat) {
    state.SkipWithError("objective unexpectedly UNSAT");
    return;
  }
  run_walksat(state, f, sat::SolveResult::kSat);
}
BENCHMARK(SatCircuit_WalkSat)->Arg(200)->Arg(500)->Unit(benchmark::kMillisecond);

void SatCircuit_CDCL(benchmark::State& state) {
  circuit::Circuit c =
      circuit::random_circuit(24, static_cast<int>(state.range(0)), 3);
  CnfFormula f = circuit::encode_circuit(c);
  f.add_unit(pos(c.outputs()[0]));
  run_cdcl(state, f, sat::SolveResult::kSat);
}
BENCHMARK(SatCircuit_CDCL)->Arg(200)->Arg(500)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
