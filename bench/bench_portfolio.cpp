/// \file bench_portfolio.cpp
/// \brief Parallel portfolio scaling study: single-threaded CDCL vs
///        PortfolioSolver at 1/2/4 workers on provably-UNSAT families
///        (pigeonhole, over-constrained random 3-SAT) and on hard
///        satisfiable random instances near the phase transition.
///
/// The racing configurations measure wall-clock speedup from config
/// diversity plus learnt-clause sharing; speedup therefore requires
/// real cores — on a single-core host the 2- and 4-worker rows time-
/// slice one CPU and show overhead instead.  The deterministic rows
/// quantify the price of reproducibility (barrier-synchronized
/// rounds).
#include <benchmark/benchmark.h>

#include "cnf/generators.hpp"
#include "sat/portfolio.hpp"
#include "sat/solver.hpp"

namespace {

using namespace sateda;

void run_single(benchmark::State& state, const CnfFormula& f,
                sat::SolveResult expect) {
  for (auto _ : state) {
    sat::Solver s;
    bool ok = s.add_formula(f);
    sat::SolveResult r = ok ? s.solve() : sat::SolveResult::kUnsat;
    if (r != expect) state.SkipWithError("unexpected verdict");
  }
}

void run_portfolio(benchmark::State& state, const CnfFormula& f,
                   sat::SolveResult expect, int workers, bool deterministic) {
  std::int64_t imported = 0;
  for (auto _ : state) {
    sat::PortfolioOptions popts;
    popts.num_workers = workers;
    popts.deterministic = deterministic;
    sat::PortfolioSolver s(sat::SolverOptions{}, popts);
    bool ok = s.add_formula(f);
    sat::SolveResult r = ok ? s.solve() : sat::SolveResult::kUnsat;
    if (r != expect) state.SkipWithError("unexpected verdict");
    imported = s.stats().imported_clauses;
  }
  state.counters["workers"] = workers;
  state.counters["imported"] = static_cast<double>(imported);
}

// --- UNSAT family 1: pigeonhole ---------------------------------------

CnfFormula php(benchmark::State& state) {
  return pigeonhole(static_cast<int>(state.range(0)));
}

void UnsatPhp_Single(benchmark::State& state) {
  run_single(state, php(state), sat::SolveResult::kUnsat);
}
BENCHMARK(UnsatPhp_Single)->Arg(7)->Arg(8)->Unit(benchmark::kMillisecond);

void UnsatPhp_Portfolio(benchmark::State& state) {
  run_portfolio(state, php(state), sat::SolveResult::kUnsat,
                static_cast<int>(state.range(1)), false);
}
BENCHMARK(UnsatPhp_Portfolio)
    ->Args({7, 1})
    ->Args({7, 2})
    ->Args({7, 4})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- UNSAT family 2: over-constrained random 3-SAT (ratio 5.0) --------

CnfFormula unsat_random(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  return random_3sat(n, 5.0, /*seed=*/91);
}

void UnsatRandom_Single(benchmark::State& state) {
  run_single(state, unsat_random(state), sat::SolveResult::kUnsat);
}
BENCHMARK(UnsatRandom_Single)->Arg(120)->Arg(160)->Unit(benchmark::kMillisecond);

void UnsatRandom_Portfolio(benchmark::State& state) {
  run_portfolio(state, unsat_random(state), sat::SolveResult::kUnsat,
                static_cast<int>(state.range(1)), false);
}
BENCHMARK(UnsatRandom_Portfolio)
    ->Args({120, 2})
    ->Args({120, 4})
    ->Args({160, 2})
    ->Args({160, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- SAT family: hard satisfiable random 3-SAT (planted, ratio 4.1) ---

CnfFormula sat_random(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  return planted_ksat(n, static_cast<int>(n * 4.1), 3, /*seed=*/17);
}

void SatRandom_Single(benchmark::State& state) {
  run_single(state, sat_random(state), sat::SolveResult::kSat);
}
BENCHMARK(SatRandom_Single)->Arg(250)->Unit(benchmark::kMillisecond);

void SatRandom_Portfolio(benchmark::State& state) {
  run_portfolio(state, sat_random(state), sat::SolveResult::kSat,
                static_cast<int>(state.range(1)), false);
}
BENCHMARK(SatRandom_Portfolio)
    ->Args({250, 2})
    ->Args({250, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Deterministic mode: the price of reproducibility -----------------

void UnsatPhp_Deterministic(benchmark::State& state) {
  run_portfolio(state, php(state), sat::SolveResult::kUnsat,
                static_cast<int>(state.range(1)), true);
}
BENCHMARK(UnsatPhp_Deterministic)
    ->Args({7, 2})
    ->Args({7, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
