/// \file bench_encoding.cpp
/// \brief Experiment T1 (paper §2, Table 1, Figure 1): circuit → CNF
///        translation.  Reports the clause/variable counts Table 1
///        predicts and the throughput of the encoder — the paper's §5
///        point that "mapping a given problem description into SAT can
///        represent a significant percentage of the overall running
///        time" makes encoder speed a first-class metric.
#include <benchmark/benchmark.h>

#include "circuit/encoder.hpp"
#include "circuit/generators.hpp"

namespace {

using namespace sateda;

void EncodeCircuit(benchmark::State& state, const circuit::Circuit& c) {
  std::size_t clauses = 0, vars = 0, literals = 0;
  for (auto _ : state) {
    CnfFormula f = circuit::encode_circuit(c);
    benchmark::DoNotOptimize(f);
    clauses = f.num_clauses();
    vars = static_cast<std::size_t>(f.num_vars());
    literals = f.num_literals();
  }
  state.counters["gates"] = static_cast<double>(c.num_gates());
  state.counters["vars"] = static_cast<double>(vars);
  state.counters["clauses"] = static_cast<double>(clauses);
  state.counters["literals"] = static_cast<double>(literals);
  state.counters["gates_per_sec"] = benchmark::Counter(
      static_cast<double>(c.num_gates()), benchmark::Counter::kIsRate);
  // Table 1 invariant: total equals the per-gate formula sum.
  std::size_t expected = 0;
  for (circuit::NodeId n = 0; n < static_cast<circuit::NodeId>(c.num_nodes());
       ++n) {
    expected += circuit::gate_clause_count(c.node(n).type,
                                           c.node(n).fanins.size());
  }
  if (expected != clauses) state.SkipWithError("Table 1 count mismatch");
}

void Encode_Adder(benchmark::State& state) {
  EncodeCircuit(state, circuit::ripple_carry_adder(
                           static_cast<int>(state.range(0))));
}
BENCHMARK(Encode_Adder)->Arg(16)->Arg(64)->Arg(256);

void Encode_Multiplier(benchmark::State& state) {
  EncodeCircuit(state,
                circuit::array_multiplier(static_cast<int>(state.range(0))));
}
BENCHMARK(Encode_Multiplier)->Arg(8)->Arg(16)->Arg(32);

void Encode_Alu(benchmark::State& state) {
  EncodeCircuit(state, circuit::alu(static_cast<int>(state.range(0))));
}
BENCHMARK(Encode_Alu)->Arg(8)->Arg(32);

void Encode_Random(benchmark::State& state) {
  EncodeCircuit(state, circuit::random_circuit(
                           64, static_cast<int>(state.range(0)), 9));
}
BENCHMARK(Encode_Random)->Arg(1000)->Arg(10000)->Arg(50000);

void Encode_C17(benchmark::State& state) { EncodeCircuit(state, circuit::c17()); }
BENCHMARK(Encode_C17);

// Cone-of-influence reduction (§5 instance shrinking).
void Encode_Cone_VsFull(benchmark::State& state) {
  circuit::Circuit c = circuit::array_multiplier(16);
  circuit::NodeId root = c.outputs()[static_cast<std::size_t>(state.range(0))];
  std::size_t cone_clauses = 0;
  std::size_t cone_vars = 0;
  for (auto _ : state) {
    circuit::ConeEncoding enc = circuit::encode_cones(c, {root});
    benchmark::DoNotOptimize(enc);
    cone_clauses = enc.formula.num_clauses();
    cone_vars = enc.var_to_node.size();
  }
  state.counters["cone_clauses"] = static_cast<double>(cone_clauses);
  state.counters["cone_vars"] = static_cast<double>(cone_vars);
  state.counters["full_clauses"] =
      static_cast<double>(circuit::encode_circuit(c).num_clauses());
}
BENCHMARK(Encode_Cone_VsFull)->Arg(0)->Arg(15)->Arg(31);

}  // namespace

BENCHMARK_MAIN();
