/// \file bench_equiv.cpp
/// \brief Experiment E7 (paper §3, refs [16, 26]): combinational
///        equivalence checking.  Equivalent pairs (ripple vs
///        resynthesized adders, strash-identical logic) and mutated
///        non-equivalent pairs; structural hashing and the §5 layer as
///        ablations.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "circuit/generators.hpp"
#include "circuit/structural_hash.hpp"
#include "equiv/cec.hpp"

namespace {

using namespace sateda;

void run_cec(benchmark::State& state, const circuit::Circuit& a,
             const circuit::Circuit& b, equiv::CecOptions opts,
             equiv::CecVerdict expect) {
  equiv::CecResult r;
  for (auto _ : state) {
    r = equiv::check_equivalence(a, b, opts);
    if (r.verdict != expect) state.SkipWithError("unexpected verdict");
  }
  state.counters["conflicts"] = static_cast<double>(r.conflicts);
  state.counters["decisions"] = static_cast<double>(r.decisions);
  state.counters["structural"] = r.settled_structurally ? 1 : 0;
}

void Equivalent_Adders(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  run_cec(state, circuit::ripple_carry_adder(n),
          benchutil::resynthesized_adder(n), {},
          equiv::CecVerdict::kEquivalent);
}
BENCHMARK(Equivalent_Adders)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void Equivalent_Adders_NoStrash(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  equiv::CecOptions opts;
  opts.structural_hashing = false;
  run_cec(state, circuit::ripple_carry_adder(n),
          benchutil::resynthesized_adder(n), opts,
          equiv::CecVerdict::kEquivalent);
}
BENCHMARK(Equivalent_Adders_NoStrash)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void Equivalent_Adders_WithLayer(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  equiv::CecOptions opts;
  opts.use_structural_layer = true;
  run_cec(state, circuit::ripple_carry_adder(n),
          benchutil::resynthesized_adder(n), opts,
          equiv::CecVerdict::kEquivalent);
}
// Note: the §5 layer's input-oriented backtracing is counterproductive
// on large UNSAT miters (the conflict-driven VSIDS order wins there) —
// 32-bit adders already take >10^5 conflicts, so the sweep stops at 16.
BENCHMARK(Equivalent_Adders_WithLayer)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void Equivalent_Multipliers(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  circuit::Circuit a = circuit::array_multiplier(n);
  circuit::Circuit b = circuit::strash(a);
  run_cec(state, a, b, {}, equiv::CecVerdict::kEquivalent);
}
BENCHMARK(Equivalent_Multipliers)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void Mutated_Adders(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  circuit::Circuit a = circuit::ripple_carry_adder(n);
  circuit::Circuit b =
      benchutil::with_inverted_output(benchutil::resynthesized_adder(n),
                                      static_cast<std::size_t>(n / 2));
  run_cec(state, a, b, {}, equiv::CecVerdict::kNotEquivalent);
}
BENCHMARK(Mutated_Adders)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void Identical_Strash_Settles(benchmark::State& state) {
  circuit::Circuit a = circuit::alu(8);
  circuit::Circuit b = circuit::alu(8);
  run_cec(state, a, b, {}, equiv::CecVerdict::kEquivalent);
}
BENCHMARK(Identical_Strash_Settles)->Unit(benchmark::kMillisecond);

void RandomLogic_VsStrashed(benchmark::State& state) {
  circuit::Circuit a =
      circuit::random_circuit(24, static_cast<int>(state.range(0)), 3);
  circuit::Circuit b = circuit::strash(a);
  equiv::CecOptions opts;
  opts.structural_hashing = false;  // force the SAT engine to work
  run_cec(state, a, b, opts, equiv::CecVerdict::kEquivalent);
}
BENCHMARK(RandomLogic_VsStrashed)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
