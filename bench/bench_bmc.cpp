/// \file bench_bmc.cpp
/// \brief Experiment E8 (paper §3, ref. [5]): bounded model checking.
///        Counterexample-depth sweeps on counters/shift registers (the
///        cost of unrolling grows with depth), autonomous LFSRs, and a
///        safe-property control that runs to the bound.
#include <benchmark/benchmark.h>

#include "bmc/bmc.hpp"

namespace {

using namespace sateda;

void run_bmc(benchmark::State& state, const bmc::SequentialCircuit& m,
             bmc::BmcOptions opts, bmc::BmcVerdict expect, int expect_depth) {
  bmc::BmcResult r;
  for (auto _ : state) {
    r = bmc::bounded_model_check(m, opts);
    if (r.verdict != expect) state.SkipWithError("unexpected verdict");
    if (expect_depth >= 0 && r.depth != expect_depth) {
      state.SkipWithError("unexpected counterexample depth");
    }
  }
  state.counters["depth"] = static_cast<double>(r.depth);
  state.counters["conflicts"] = static_cast<double>(r.conflicts);
  state.counters["decisions"] = static_cast<double>(r.decisions);
}

void Counter_DepthSweep(benchmark::State& state) {
  const int bad = static_cast<int>(state.range(0));
  bmc::SequentialCircuit m = bmc::counter_machine(8, bad);
  bmc::BmcOptions opts;
  opts.max_depth = bad + 4;
  run_bmc(state, m, opts, bmc::BmcVerdict::kCounterexample, bad);
}
BENCHMARK(Counter_DepthSweep)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void ShiftRegister_WidthSweep(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  bmc::SequentialCircuit m = bmc::shift_register_machine(bits);
  bmc::BmcOptions opts;
  opts.max_depth = bits + 4;
  run_bmc(state, m, opts, bmc::BmcVerdict::kCounterexample, bits);
}
BENCHMARK(ShiftRegister_WidthSweep)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void Lfsr_Autonomous(benchmark::State& state) {
  bmc::SequentialCircuit m =
      bmc::lfsr_machine(static_cast<int>(state.range(0)), 0b1011011, 1, 0x19);
  bmc::BmcOptions opts;
  opts.max_depth = 130;
  bmc::BmcResult r;
  for (auto _ : state) {
    r = bmc::bounded_model_check(m, opts);
    benchmark::DoNotOptimize(r);
  }
  state.counters["depth"] = static_cast<double>(r.depth);
  state.counters["found"] =
      r.verdict == bmc::BmcVerdict::kCounterexample ? 1 : 0;
}
BENCHMARK(Lfsr_Autonomous)->Arg(7)->Arg(8)->Unit(benchmark::kMillisecond);

// Safe property: the cost of running every depth to UNSAT.
void SafeProperty_BoundSweep(benchmark::State& state) {
  bmc::SequentialCircuit m = bmc::counter_machine(6, 1u << 20);  // never
  bmc::BmcOptions opts;
  opts.max_depth = static_cast<int>(state.range(0));
  run_bmc(state, m, opts, bmc::BmcVerdict::kNoCounterexample, -1);
}
BENCHMARK(SafeProperty_BoundSweep)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

// Incremental vs from-scratch frames: the §6 claim applied to BMC.
void Incremental_Engine(benchmark::State& state) {
  bmc::SequentialCircuit m = bmc::counter_machine(8, 48);
  std::int64_t conflicts = 0;
  for (auto _ : state) {
    bmc::BmcEngine engine(m);
    for (int k = 0; k <= 48; ++k) {
      sat::SolveResult r = engine.check_depth(k);
      if (k < 48 && r != sat::SolveResult::kUnsat) {
        state.SkipWithError("unexpected early counterexample");
      }
    }
    conflicts = engine.solver().stats().conflicts;
  }
  state.counters["conflicts"] = static_cast<double>(conflicts);
}
BENCHMARK(Incremental_Engine)->Unit(benchmark::kMillisecond);

void FromScratch_PerDepth(benchmark::State& state) {
  bmc::SequentialCircuit m = bmc::counter_machine(8, 48);
  std::int64_t conflicts = 0;
  for (auto _ : state) {
    conflicts = 0;
    for (int k = 0; k <= 48; ++k) {
      bmc::BmcEngine engine(m);  // new solver per depth: no reuse
      sat::SolveResult r = engine.check_depth(k);
      if (k < 48 && r != sat::SolveResult::kUnsat) {
        state.SkipWithError("unexpected early counterexample");
      }
      conflicts += engine.solver().stats().conflicts;
    }
  }
  state.counters["conflicts"] = static_cast<double>(conflicts);
}
BENCHMARK(FromScratch_PerDepth)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
