/// \file bench_preprocess.cpp
/// \brief Experiment E3 (paper §4.1 Preprocess(), §6 equivalency
///        reasoning): preprocessing on/off.  Equivalency reasoning
///        collapses x ≡ y chains — dominant on equivalence-rich
///        formulas (CEC miters of identical logic, explicit chains);
///        subsumption/self-subsumption trims redundant clauses.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "cnf/generators.hpp"
#include "sat/preprocess.hpp"
#include "sat/solver.hpp"

namespace {

using namespace sateda;

void solve_raw(benchmark::State& state, const CnfFormula& f,
               sat::SolveResult expect) {
  std::int64_t conflicts = 0;
  for (auto _ : state) {
    sat::Solver s;
    (void)s.add_formula(f);
    if (s.solve() != expect) state.SkipWithError("unexpected verdict");
    conflicts = s.stats().conflicts;
  }
  state.counters["conflicts"] = static_cast<double>(conflicts);
  state.counters["vars"] = static_cast<double>(f.num_vars());
  state.counters["clauses"] = static_cast<double>(f.num_clauses());
}

void solve_preprocessed(benchmark::State& state, const CnfFormula& f,
                        sat::SolveResult expect) {
  std::int64_t conflicts = 0;
  sat::PreprocessStats pstats;
  std::size_t out_clauses = 0;
  for (auto _ : state) {
    sat::PreprocessResult pre = sat::preprocess(f);
    pstats = pre.stats;
    if (pre.unsat) {
      if (expect != sat::SolveResult::kUnsat) {
        state.SkipWithError("unexpected preprocessing refutation");
      }
      out_clauses = 0;
      conflicts = 0;
      continue;
    }
    out_clauses = pre.simplified.num_clauses();
    sat::Solver s;
    (void)s.add_formula(pre.simplified);
    sat::SolveResult r = s.solve();
    if (r != expect) state.SkipWithError("unexpected verdict");
    conflicts = s.stats().conflicts;
  }
  state.counters["conflicts"] = static_cast<double>(conflicts);
  state.counters["equiv_elim"] =
      static_cast<double>(pstats.equivalent_vars_eliminated);
  state.counters["subsumed"] = static_cast<double>(pstats.clauses_subsumed);
  state.counters["out_clauses"] = static_cast<double>(out_clauses);
}

// Equivalence-rich UNSAT chain + random clauses.  The preprocessor's
// SCC pass refutes these outright (x ≡ … ≡ ¬x), demonstrating the §6
// point that equivalency reasoning can settle instances "before the
// search".
CnfFormula chain_instance(int n) {
  return equivalence_chain(n, /*inconsistent=*/true, n / 2, 5);
}

void EquivChain_Raw(benchmark::State& state) {
  solve_raw(state, chain_instance(static_cast<int>(state.range(0))),
            sat::SolveResult::kUnsat);
}
BENCHMARK(EquivChain_Raw)->Arg(200)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void EquivChain_Preprocessed(benchmark::State& state) {
  solve_preprocessed(state, chain_instance(static_cast<int>(state.range(0))),
                     sat::SolveResult::kUnsat);
}
BENCHMARK(EquivChain_Preprocessed)->Arg(200)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

// Identical-adder miter.  Note a known limitation this bench makes
// visible: SCC-based equivalency reasoning only sees *binary* clauses,
// so it collapses BUF/NOT chains but cannot merge the AND/XOR gate
// pairs of the two copies (their encodings are ternary).  The
// resynthesized-adder miter below contains inverter chains and shows
// nonzero eliminations.
CnfFormula identical_miter(int n) {
  circuit::Circuit m = circuit::build_miter(circuit::ripple_carry_adder(n),
                                            circuit::ripple_carry_adder(n));
  CnfFormula f = circuit::encode_circuit(m);
  f.add_unit(pos(m.outputs()[0]));
  return f;
}

void IdenticalMiter_Raw(benchmark::State& state) {
  solve_raw(state, identical_miter(static_cast<int>(state.range(0))),
            sat::SolveResult::kUnsat);
}
BENCHMARK(IdenticalMiter_Raw)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void IdenticalMiter_Preprocessed(benchmark::State& state) {
  solve_preprocessed(state, identical_miter(static_cast<int>(state.range(0))),
                     sat::SolveResult::kUnsat);
}
BENCHMARK(IdenticalMiter_Preprocessed)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

// Resynthesized-adder miter (structurally different, still UNSAT).
void AdderMiter_Raw(benchmark::State& state) {
  solve_raw(state, benchutil::adder_miter_cnf(static_cast<int>(state.range(0))),
            sat::SolveResult::kUnsat);
}
BENCHMARK(AdderMiter_Raw)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void AdderMiter_Preprocessed(benchmark::State& state) {
  solve_preprocessed(state,
                     benchutil::adder_miter_cnf(static_cast<int>(state.range(0))),
                     sat::SolveResult::kUnsat);
}
BENCHMARK(AdderMiter_Preprocessed)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

// Preprocessing passes in isolation: what does each remove?
void Passes_Breakdown(benchmark::State& state) {
  CnfFormula f = identical_miter(16);
  sat::PreprocessOptions opts;
  opts.pure_literals = state.range(0) & 1;
  opts.equivalency_reasoning = state.range(0) & 2;
  opts.subsumption = state.range(0) & 4;
  opts.self_subsumption = state.range(0) & 4;
  sat::PreprocessStats stats;
  std::size_t out = 0;
  for (auto _ : state) {
    sat::PreprocessResult pre = sat::preprocess(f, opts);
    stats = pre.stats;
    out = pre.unsat ? 0 : pre.simplified.num_clauses();
  }
  state.counters["in_clauses"] = static_cast<double>(f.num_clauses());
  state.counters["out_clauses"] = static_cast<double>(out);
  state.counters["equiv_elim"] =
      static_cast<double>(stats.equivalent_vars_eliminated);
  state.counters["subsumed"] = static_cast<double>(stats.clauses_subsumed);
}
BENCHMARK(Passes_Breakdown)->Arg(1)->Arg(2)->Arg(4)->Arg(7)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
