/// \file bench_covering.cpp
/// \brief Experiment E10 (paper §3, refs [9, 22, 23]): SAT in
///        optimization.  Plain branch-and-bound vs SAT-pruned B&B vs
///        pure SAT cost search on unate covering, and minimum-size
///        prime implicant extraction.
#include <benchmark/benchmark.h>

#include "cnf/generators.hpp"
#include "opt/covering.hpp"
#include "opt/prime_implicants.hpp"

namespace {

using namespace sateda;

void run_bnb(benchmark::State& state, const opt::CoveringProblem& p,
             bool sat_pruning) {
  opt::CoveringResult r;
  for (auto _ : state) {
    opt::CoveringOptions opts;
    opts.sat_pruning = sat_pruning;
    r = opt::solve_covering_bnb(p, opts);
    if (!r.feasible) state.SkipWithError("infeasible?");
  }
  state.counters["cost"] = static_cast<double>(r.cost);
  state.counters["nodes"] = static_cast<double>(r.stats.branch_nodes);
  state.counters["sat_prunes"] = static_cast<double>(r.stats.sat_prunes);
}

opt::CoveringProblem instance(int cols, std::uint64_t seed) {
  return opt::random_covering(cols, cols + cols / 2, 4, seed);
}

void Covering_PlainBnb(benchmark::State& state) {
  run_bnb(state, instance(static_cast<int>(state.range(0)), 31), false);
}
BENCHMARK(Covering_PlainBnb)->Arg(15)->Arg(20)->Arg(25)->Arg(30)->Unit(benchmark::kMillisecond);

void Covering_SatPrunedBnb(benchmark::State& state) {
  run_bnb(state, instance(static_cast<int>(state.range(0)), 31), true);
}
BENCHMARK(Covering_SatPrunedBnb)->Arg(15)->Arg(20)->Arg(25)->Arg(30)->Unit(benchmark::kMillisecond);

void Covering_SatSearch(benchmark::State& state) {
  opt::CoveringProblem p = instance(static_cast<int>(state.range(0)), 31);
  opt::CoveringResult r;
  for (auto _ : state) {
    r = opt::solve_covering_sat(p);
    if (!r.feasible) state.SkipWithError("infeasible?");
  }
  state.counters["cost"] = static_cast<double>(r.cost);
  state.counters["sat_calls"] = static_cast<double>(r.stats.sat_calls);
}
BENCHMARK(Covering_SatSearch)->Arg(15)->Arg(20)->Arg(25)->Arg(30)->Unit(benchmark::kMillisecond);

// Binate covering: only the SAT formulation applies.
void BinateCovering_Sat(benchmark::State& state) {
  const int cols = static_cast<int>(state.range(0));
  opt::CoveringProblem p = instance(cols, 77);
  // Make it binate: choosing column i forbids column i+1 for even i.
  for (int i = 0; i + 1 < cols; i += 2) {
    p.rows.push_back({neg(i), neg(i + 1)});
  }
  opt::CoveringResult r;
  for (auto _ : state) {
    r = opt::solve_covering_sat(p);
    benchmark::DoNotOptimize(r);
  }
  state.counters["cost"] = static_cast<double>(r.feasible ? r.cost : -1);
}
BENCHMARK(BinateCovering_Sat)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

// Minimum-size prime implicants (ref. [22]).
void PrimeImplicant_Random(benchmark::State& state) {
  CnfFormula f =
      random_3sat(static_cast<int>(state.range(0)), 2.0, 5);
  opt::PrimeImplicantResult r;
  for (auto _ : state) {
    r = opt::minimum_prime_implicant(f);
    if (!r.exists) state.SkipWithError("unexpectedly UNSAT");
  }
  state.counters["cube_size"] = static_cast<double>(r.cube.size());
  state.counters["sat_calls"] = static_cast<double>(r.sat_calls);
}
BENCHMARK(PrimeImplicant_Random)->Arg(15)->Arg(25)->Arg(40)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
