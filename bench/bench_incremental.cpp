/// \file bench_incremental.cpp
/// \brief Experiment E12 (paper §6, refs [18, 25]): iterative and
///        incremental use of SAT in EDA.  Compares per-fault ATPG
///        queries answered by one persistent solver (activation
///        literals + assumptions, learnt clauses retained) against a
///        fresh solver per fault.
#include <benchmark/benchmark.h>

#include "atpg/engine.hpp"
#include "atpg/incremental.hpp"
#include "circuit/generators.hpp"

namespace {

using namespace sateda;

circuit::Circuit bench_circuit(int which) {
  switch (which) {
    case 0: return circuit::alu(6);
    case 1: return circuit::ripple_carry_adder(16);
    default: return circuit::array_multiplier(6);
  }
}

void Incremental_AllFaults(benchmark::State& state) {
  circuit::Circuit c = bench_circuit(static_cast<int>(state.range(0)));
  std::vector<atpg::Fault> faults =
      atpg::collapse_faults(c, atpg::enumerate_faults(c));
  std::int64_t conflicts = 0;
  int detected = 0;
  for (auto _ : state) {
    atpg::IncrementalAtpg engine(c);
    detected = 0;
    std::vector<lbool> pattern;
    for (const atpg::Fault& f : faults) {
      if (engine.test_fault(f, pattern) == atpg::FaultStatus::kDetected) {
        ++detected;
      }
    }
    conflicts = engine.solver().stats().conflicts;
  }
  state.counters["faults"] = static_cast<double>(faults.size());
  state.counters["detected"] = static_cast<double>(detected);
  state.counters["conflicts"] = static_cast<double>(conflicts);
}
BENCHMARK(Incremental_AllFaults)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

void FromScratch_AllFaults(benchmark::State& state) {
  circuit::Circuit c = bench_circuit(static_cast<int>(state.range(0)));
  std::vector<atpg::Fault> faults =
      atpg::collapse_faults(c, atpg::enumerate_faults(c));
  std::int64_t conflicts = 0;
  int detected = 0;
  atpg::AtpgOptions opts;
  opts.use_structural_layer = false;  // same query structure as incremental
  for (auto _ : state) {
    detected = 0;
    conflicts = 0;
    std::vector<lbool> pattern;
    for (const atpg::Fault& f : faults) {
      sat::SolverStats stats;
      if (atpg::generate_test(c, f, pattern, opts, &stats) ==
          atpg::FaultStatus::kDetected) {
        ++detected;
      }
      conflicts += stats.conflicts;
    }
  }
  state.counters["faults"] = static_cast<double>(faults.size());
  state.counters["detected"] = static_cast<double>(detected);
  state.counters["conflicts"] = static_cast<double>(conflicts);
}
BENCHMARK(FromScratch_AllFaults)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
