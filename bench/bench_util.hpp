/// \file bench_util.hpp
/// \brief Shared instance builders for the reproduction benches.
#pragma once

#include <string>
#include <vector>

#include "circuit/encoder.hpp"
#include "circuit/generators.hpp"
#include "circuit/miter.hpp"
#include "circuit/netlist.hpp"
#include "cnf/generators.hpp"

namespace sateda::benchutil {

/// Same function as ripple_carry_adder but synthesized with De
/// Morgan'd NOR carry logic — the standard "two implementations" CEC
/// workload.
inline circuit::Circuit resynthesized_adder(int n) {
  using circuit::Circuit;
  using circuit::NodeId;
  Circuit c("adder_nor" + std::to_string(n));
  std::vector<NodeId> a(n), b(n);
  for (int i = 0; i < n; ++i) a[i] = c.add_input("a" + std::to_string(i));
  for (int i = 0; i < n; ++i) b[i] = c.add_input("b" + std::to_string(i));
  NodeId carry = c.add_input("cin");
  for (int i = 0; i < n; ++i) {
    NodeId p = c.add_xor(a[i], b[i]);
    c.mark_output(c.add_xor(p, carry), "s" + std::to_string(i));
    NodeId g = c.add_and(a[i], b[i]);
    NodeId pc = c.add_and(p, carry);
    NodeId ng = c.add_not(g);
    NodeId npc = c.add_not(pc);
    carry = c.add_nand(ng, npc);
  }
  c.mark_output(carry, "cout");
  return c;
}

/// A copy of \p src with output \p which inverted (injected bug).
inline circuit::Circuit with_inverted_output(const circuit::Circuit& src,
                                             std::size_t which) {
  circuit::Circuit out(src.name() + "_bug");
  std::vector<circuit::NodeId> in;
  for (std::size_t i = 0; i < src.inputs().size(); ++i) {
    in.push_back(out.add_input());
  }
  auto map = circuit::append_copy(out, src, in);
  for (std::size_t i = 0; i < src.outputs().size(); ++i) {
    circuit::NodeId o = map[src.outputs()[i]];
    if (i == which) o = out.add_not(o);
    out.mark_output(o, "o" + std::to_string(i));
  }
  return out;
}

/// CNF of the miter "rca(n) vs resynthesized(n), outputs differ" —
/// an UNSAT circuit-structured instance family for solver benches.
inline CnfFormula adder_miter_cnf(int n) {
  circuit::Circuit m =
      circuit::build_miter(circuit::ripple_carry_adder(n),
                           resynthesized_adder(n));
  CnfFormula f = circuit::encode_circuit(m);
  f.add_unit(pos(m.outputs()[0]));
  return f;
}

/// The n x n array multiplier with its operand halves swapped (so it
/// computes b*a): functionally equal to array_multiplier(n) but
/// structurally disjoint — the classic hard CEC counterpart.
inline circuit::Circuit swapped_multiplier(int n) {
  using circuit::Circuit;
  using circuit::NodeId;
  Circuit swapped("mulswap" + std::to_string(n));
  std::vector<NodeId> in;
  for (int i = 0; i < 2 * n; ++i) {
    in.push_back(swapped.add_input("i" + std::to_string(i)));
  }
  const Circuit inner = circuit::array_multiplier(n);
  // The inner multiplier's inputs are a[0..n) then b[0..n); wire its
  // a-half from our b-half and vice versa.
  std::vector<NodeId> wired(static_cast<std::size_t>(2 * n));
  for (int i = 0; i < n; ++i) {
    wired[static_cast<std::size_t>(i)] = in[static_cast<std::size_t>(n + i)];
    wired[static_cast<std::size_t>(n + i)] = in[static_cast<std::size_t>(i)];
  }
  const auto map = circuit::append_copy(swapped, inner, wired);
  for (std::size_t i = 0; i < inner.outputs().size(); ++i) {
    swapped.mark_output(map[inner.outputs()[i]], "p" + std::to_string(i));
  }
  return swapped;
}

/// Commutativity miter for the n x n array multiplier: copy A computes
/// a*b, copy B computes b*a.  Functionally equal, structurally
/// disjoint — the classic hard UNSAT CEC family whose difficulty grows
/// steeply with n (multiplier equivalence has no short resolution
/// proofs), which is exactly the headroom the cube bench needs.
inline CnfFormula multiplier_comm_miter_cnf(int n) {
  circuit::Circuit m =
      circuit::build_miter(circuit::array_multiplier(n), swapped_multiplier(n));
  CnfFormula f = circuit::encode_circuit(m);
  f.add_unit(pos(m.outputs()[0]));
  return f;
}

}  // namespace sateda::benchutil
