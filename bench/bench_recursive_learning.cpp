/// \file bench_recursive_learning.cpp
/// \brief Experiment E4 (paper §4.2, Figure 4): recursive learning on
///        CNF formulas as a preprocessing step.  The recorded
///        implicates "prevent repeated derivation of the same
///        assignments during the subsequent search" — measured as the
///        conflict/decision reduction of CDCL on the strengthened
///        formula, and the standalone cost/yield of the RL pass at
///        depths 1 and 2.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "circuit/encoder.hpp"
#include "circuit/generators.hpp"
#include "sat/recursive_learning.hpp"
#include "sat/solver.hpp"

namespace {

using namespace sateda;

CnfFormula atpg_like_instance(int seed) {
  // Circuit CNF + output objective: the EDA-shaped instances recursive
  // learning was designed for.
  circuit::Circuit c = circuit::random_circuit(20, 240, seed);
  CnfFormula f = circuit::encode_circuit(c);
  f.add_unit(pos(c.outputs()[0]));
  return f;
}

void solve_counting(benchmark::State& state, const CnfFormula& f) {
  std::int64_t conflicts = 0, decisions = 0;
  for (auto _ : state) {
    sat::Solver s;
    (void)s.add_formula(f);
    sat::SolveResult r = s.solve();
    benchmark::DoNotOptimize(r);
    conflicts = s.stats().conflicts;
    decisions = s.stats().decisions;
  }
  state.counters["conflicts"] = static_cast<double>(conflicts);
  state.counters["decisions"] = static_cast<double>(decisions);
}

void Raw_CircuitObjective(benchmark::State& state) {
  solve_counting(state, atpg_like_instance(static_cast<int>(state.range(0))));
}
BENCHMARK(Raw_CircuitObjective)->Arg(3)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

void Strengthened_CircuitObjective(benchmark::State& state) {
  CnfFormula f = atpg_like_instance(static_cast<int>(state.range(0)));
  sat::RecursiveLearningOptions opts;
  opts.depth = 1;
  CnfFormula g = sat::strengthen_with_recursive_learning(f, opts);
  state.counters["implicates"] =
      static_cast<double>(g.num_clauses() - f.num_clauses());
  solve_counting(state, g);
}
BENCHMARK(Strengthened_CircuitObjective)->Arg(3)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

// The RL pass itself: yield (necessary assignments found) and cost as
// depth grows — the paper notes the procedure generalizes "to any
// recursion depth" with rapidly growing cost.
void RlPass_Depth(benchmark::State& state) {
  CnfFormula f = atpg_like_instance(7);
  sat::RecursiveLearningOptions opts;
  opts.depth = static_cast<int>(state.range(0));
  sat::RecursiveLearningStats stats;
  for (auto _ : state) {
    sat::RecursiveLearningResult r = sat::recursive_learn(f, {}, opts);
    benchmark::DoNotOptimize(r);
    stats = r.stats;
  }
  state.counters["necessary"] = static_cast<double>(stats.necessary_assignments);
  state.counters["branches"] = static_cast<double>(stats.branches);
}
BENCHMARK(RlPass_Depth)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

// Figure 4's context-style queries: per-call cost of recursive
// learning under an assumption context (the in-search usage).
void RlPass_UnderContext(benchmark::State& state) {
  circuit::Circuit c = circuit::random_circuit(20, 200, 11);
  CnfFormula f = circuit::encode_circuit(c);
  std::vector<Lit> context = {pos(c.inputs()[0]), neg(c.inputs()[1]),
                              pos(c.inputs()[2])};
  std::int64_t necessary = 0;
  for (auto _ : state) {
    sat::RecursiveLearningResult r = sat::recursive_learn(f, context);
    benchmark::DoNotOptimize(r);
    necessary = r.stats.necessary_assignments;
  }
  state.counters["necessary"] = static_cast<double>(necessary);
}
BENCHMARK(RlPass_UnderContext)->Unit(benchmark::kMillisecond);

// Pigeonhole: RL finds nothing (no forced literals) — the honest
// negative control showing where the technique does not help.
void Strengthened_PHP(benchmark::State& state) {
  CnfFormula f = pigeonhole(7);
  CnfFormula g = sat::strengthen_with_recursive_learning(f);
  state.counters["implicates"] =
      static_cast<double>(g.num_clauses() - f.num_clauses());
  solve_counting(state, g);
}
BENCHMARK(Strengthened_PHP)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
