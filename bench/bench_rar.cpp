/// \file bench_rar.cpp
/// \brief Experiment E16 (paper §3, refs [12, 17]): logic optimization
///        by SAT-proven redundancy removal.  Measures gate-count
///        reduction and the cost of the untestability proofs on
///        redundancy-salted circuits and on already-irredundant ones.
#include <benchmark/benchmark.h>

#include "circuit/generators.hpp"
#include "circuit/miter.hpp"
#include "circuit/structural_hash.hpp"
#include "synth/rar.hpp"

namespace {

using namespace sateda;
using circuit::Circuit;
using circuit::NodeId;

/// Salts every output of \p base with an absorption-redundant OR/AND
/// pair (functionally a no-op).
Circuit salt(const Circuit& base, int layers) {
  Circuit salted("salted_" + base.name());
  std::vector<NodeId> in;
  for (std::size_t i = 0; i < base.inputs().size(); ++i) {
    in.push_back(salted.add_input());
  }
  auto map = circuit::append_copy(salted, base, in);
  for (std::size_t i = 0; i < base.outputs().size(); ++i) {
    NodeId o = map[base.outputs()[i]];
    for (int l = 0; l < layers; ++l) {
      NodeId junk = salted.add_and(o, in[(i + l) % in.size()]);
      o = salted.add_or(o, junk);
    }
    salted.mark_output(o, "y" + std::to_string(i));
  }
  return salted;
}

void run_rar(benchmark::State& state, const Circuit& c) {
  synth::RarStats stats;
  for (auto _ : state) {
    Circuit out = synth::remove_redundancies(c, {}, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.counters["gates_before"] = static_cast<double>(stats.gates_before);
  state.counters["gates_after"] = static_cast<double>(stats.gates_after);
  state.counters["removed"] = static_cast<double>(stats.redundancies_removed);
  state.counters["pins_checked"] = static_cast<double>(stats.pins_examined);
}

void Rar_SaltedC17(benchmark::State& state) {
  run_rar(state, salt(circuit::c17(), static_cast<int>(state.range(0))));
}
BENCHMARK(Rar_SaltedC17)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void Rar_SaltedAdder(benchmark::State& state) {
  run_rar(state,
          salt(circuit::ripple_carry_adder(static_cast<int>(state.range(0))),
               1));
}
BENCHMARK(Rar_SaltedAdder)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void Rar_IrredundantControl(benchmark::State& state) {
  // c17 is irredundant: the pass must verify that and change nothing.
  run_rar(state, circuit::c17());
}
BENCHMARK(Rar_IrredundantControl)->Unit(benchmark::kMillisecond);

void Rar_RandomLogic(benchmark::State& state) {
  run_rar(state, circuit::random_circuit(
                     10, static_cast<int>(state.range(0)), 21));
}
BENCHMARK(Rar_RandomLogic)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
