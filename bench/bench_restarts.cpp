/// \file bench_restarts.cpp
/// \brief Experiment E2 (paper §6): "Restarts with randomization allow
///        searching different regions of the search space and have
///        been shown to yield dramatic improvements on satisfiable
///        instances."  Sweep restarts × randomization on planted
///        (satisfiable) instances and on UNSAT pigeonhole controls.
#include <benchmark/benchmark.h>

#include "cnf/generators.hpp"
#include "sat/solver.hpp"

namespace {

using namespace sateda;

sat::SolverOptions variant(bool restarts, double random_freq,
                           std::uint64_t seed) {
  sat::SolverOptions o;
  o.restarts = restarts;
  o.random_var_freq = random_freq;
  o.seed = seed;
  return o;
}

/// Median-ish aggregate over several seeds of the solver RNG so a
/// single lucky/unlucky run does not dominate.
void run_variant(benchmark::State& state, const CnfFormula& f,
                 bool restarts, double random_freq,
                 sat::SolveResult expect) {
  std::int64_t conflicts = 0, restart_count = 0;
  for (auto _ : state) {
    std::int64_t total_conflicts = 0, total_restarts = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      sat::Solver s(variant(restarts, random_freq, seed * 7919));
      (void)s.add_formula(f);
      if (s.solve() != expect) state.SkipWithError("unexpected verdict");
      total_conflicts += s.stats().conflicts;
      total_restarts += s.stats().restarts;
    }
    conflicts = total_conflicts / 5;
    restart_count = total_restarts / 5;
  }
  state.counters["avg_conflicts"] = static_cast<double>(conflicts);
  state.counters["avg_restarts"] = static_cast<double>(restart_count);
}

// Satisfiable planted instances near the threshold: the paper's
// "dramatic improvements" regime.
CnfFormula sat_instance(int n, std::uint64_t seed) {
  return planted_ksat(n, static_cast<int>(n * 4.1), 3, seed);
}

void Sat_RestartsOn_RandOn(benchmark::State& state) {
  CnfFormula f = sat_instance(static_cast<int>(state.range(0)), 1234);
  run_variant(state, f, true, 0.05, sat::SolveResult::kSat);
}
BENCHMARK(Sat_RestartsOn_RandOn)->Arg(100)->Arg(150)->Arg(200)->Unit(benchmark::kMillisecond);

void Sat_RestartsOn_RandOff(benchmark::State& state) {
  CnfFormula f = sat_instance(static_cast<int>(state.range(0)), 1234);
  run_variant(state, f, true, 0.0, sat::SolveResult::kSat);
}
BENCHMARK(Sat_RestartsOn_RandOff)->Arg(100)->Arg(150)->Arg(200)->Unit(benchmark::kMillisecond);

void Sat_RestartsOff_RandOn(benchmark::State& state) {
  CnfFormula f = sat_instance(static_cast<int>(state.range(0)), 1234);
  run_variant(state, f, false, 0.05, sat::SolveResult::kSat);
}
BENCHMARK(Sat_RestartsOff_RandOn)->Arg(100)->Arg(150)->Arg(200)->Unit(benchmark::kMillisecond);

void Sat_RestartsOff_RandOff(benchmark::State& state) {
  CnfFormula f = sat_instance(static_cast<int>(state.range(0)), 1234);
  run_variant(state, f, false, 0.0, sat::SolveResult::kSat);
}
BENCHMARK(Sat_RestartsOff_RandOff)->Arg(100)->Arg(150)->Arg(200)->Unit(benchmark::kMillisecond);

// UNSAT control: restarts should not pay off (the whole space must be
// refuted anyway).
void Unsat_RestartsOn(benchmark::State& state) {
  CnfFormula f = pigeonhole(static_cast<int>(state.range(0)));
  run_variant(state, f, true, 0.05, sat::SolveResult::kUnsat);
}
BENCHMARK(Unsat_RestartsOn)->Arg(7)->Unit(benchmark::kMillisecond);

void Unsat_RestartsOff(benchmark::State& state) {
  CnfFormula f = pigeonhole(static_cast<int>(state.range(0)));
  run_variant(state, f, false, 0.0, sat::SolveResult::kUnsat);
}
BENCHMARK(Unsat_RestartsOff)->Arg(7)->Unit(benchmark::kMillisecond);

// Luby base sweep: restart aggressiveness.
void Sat_RestartBase(benchmark::State& state) {
  CnfFormula f = sat_instance(150, 1234);
  sat::SolverOptions o;
  o.restart_base = static_cast<int>(state.range(0));
  std::int64_t conflicts = 0;
  for (auto _ : state) {
    std::int64_t total = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      sat::SolverOptions so = o;
      so.seed = seed * 104729;
      sat::Solver s(so);
      (void)s.add_formula(f);
      if (s.solve() != sat::SolveResult::kSat) {
        state.SkipWithError("unexpected verdict");
      }
      total += s.stats().conflicts;
    }
    conflicts = total / 5;
  }
  state.counters["avg_conflicts"] = static_cast<double>(conflicts);
}
BENCHMARK(Sat_RestartBase)->Arg(16)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
