/// \file bench_csat.cpp
/// \brief Experiment E5 (paper §5, Tables 2-3): the circuit-SAT layer.
///        Measures (a) overspecification — how many primary inputs a
///        solution pins down with the justification frontier vs plain
///        CNF satisfaction — and (b) the runtime effect of frontier
///        termination and fanin backtracing.
#include <benchmark/benchmark.h>

#include "circuit/generators.hpp"
#include "csat/circuit_sat.hpp"

namespace {

using namespace sateda;

csat::CircuitSatOptions layered(bool frontier, bool backtrace) {
  csat::CircuitSatOptions o;
  o.layer.frontier_termination = frontier;
  o.layer.backtrace_decisions = backtrace;
  return o;
}

csat::CircuitSatOptions multiple_layered() {
  csat::CircuitSatOptions o = layered(true, true);
  o.layer.backtrace_mode = csat::BacktraceMode::kMultiple;
  return o;
}

void objective_sweep(benchmark::State& state, const circuit::Circuit& c,
                     csat::CircuitSatOptions opts) {
  std::int64_t total_specified = 0, objectives = 0, sat_count = 0;
  std::int64_t decisions = 0;
  for (auto _ : state) {
    total_specified = objectives = sat_count = 0;
    csat::CircuitSatSolver solver(c, opts);
    for (circuit::NodeId out : c.outputs()) {
      for (bool v : {false, true}) {
        ++objectives;
        csat::CircuitSatResult r = solver.solve(out, v);
        if (r.result == sat::SolveResult::kSat) {
          ++sat_count;
          total_specified += r.specified_inputs;
        }
      }
    }
    decisions = solver.solver().stats().decisions;
  }
  state.counters["objectives"] = static_cast<double>(objectives);
  state.counters["num_inputs"] = static_cast<double>(c.inputs().size());
  state.counters["avg_specified_inputs"] =
      sat_count ? static_cast<double>(total_specified) /
                      static_cast<double>(sat_count)
                : 0.0;
  state.counters["decisions"] = static_cast<double>(decisions);
}

#define CSAT_BENCH(NAME, CIRCUIT)                                           \
  void NAME##_FullLayer(benchmark::State& state) {                          \
    objective_sweep(state, CIRCUIT, layered(true, true));                   \
  }                                                                         \
  BENCHMARK(NAME##_FullLayer)->Unit(benchmark::kMillisecond);               \
  void NAME##_MultipleBacktrace(benchmark::State& state) {                  \
    objective_sweep(state, CIRCUIT, multiple_layered());                    \
  }                                                                         \
  BENCHMARK(NAME##_MultipleBacktrace)->Unit(benchmark::kMillisecond);       \
  void NAME##_FrontierOnly(benchmark::State& state) {                       \
    objective_sweep(state, CIRCUIT, layered(true, false));                  \
  }                                                                         \
  BENCHMARK(NAME##_FrontierOnly)->Unit(benchmark::kMillisecond);            \
  void NAME##_PlainCnf(benchmark::State& state) {                           \
    objective_sweep(state, CIRCUIT, layered(false, false));                 \
  }                                                                         \
  BENCHMARK(NAME##_PlainCnf)->Unit(benchmark::kMillisecond)

CSAT_BENCH(WideOr, [] {
  circuit::Circuit c;
  std::vector<circuit::NodeId> ins;
  for (int i = 0; i < 64; ++i) ins.push_back(c.add_input());
  circuit::NodeId acc = ins[0];
  for (int i = 1; i < 64; ++i) acc = c.add_or(acc, ins[i]);
  c.mark_output(acc, "o");
  return c;
}());

CSAT_BENCH(Mux5, circuit::mux_tree(5));
CSAT_BENCH(Alu8, circuit::alu(8));
CSAT_BENCH(Rand300, circuit::random_circuit(48, 300, 13));
CSAT_BENCH(Mul8, circuit::array_multiplier(8));

}  // namespace

BENCHMARK_MAIN();
