/// \file bench_delay.cpp
/// \brief Experiment E9 (paper §3, refs [28, 36]): SAT-based circuit
///        delay computation.  Topological bound vs exact sensitizable
///        delay (gap = false paths), query counts, and path-delay test
///        generation (ref. [7]) on the longest structural paths.
#include <benchmark/benchmark.h>

#include "circuit/generators.hpp"
#include "delay/delay.hpp"

namespace {

using namespace sateda;

void run_delay(benchmark::State& state, const circuit::Circuit& c) {
  delay::DelayResult r;
  for (auto _ : state) {
    r = delay::compute_delay(c);
    benchmark::DoNotOptimize(r);
  }
  state.counters["topological"] = static_cast<double>(r.topological);
  state.counters["sensitizable"] = static_cast<double>(r.sensitizable);
  state.counters["false_path_gap"] =
      static_cast<double>(r.topological - r.sensitizable);
  state.counters["sat_queries"] = static_cast<double>(r.sat_queries);
}

void Delay_Adder(benchmark::State& state) {
  run_delay(state,
            circuit::ripple_carry_adder(static_cast<int>(state.range(0))));
}
BENCHMARK(Delay_Adder)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void Delay_Alu(benchmark::State& state) {
  run_delay(state, circuit::alu(static_cast<int>(state.range(0))));
}
BENCHMARK(Delay_Alu)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void Delay_Multiplier(benchmark::State& state) {
  run_delay(state,
            circuit::array_multiplier(static_cast<int>(state.range(0))));
}
BENCHMARK(Delay_Multiplier)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

void Delay_Random(benchmark::State& state) {
  run_delay(state, circuit::random_circuit(
                       16, static_cast<int>(state.range(0)), 42));
}
BENCHMARK(Delay_Random)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);

void Delay_MuxTree(benchmark::State& state) {
  run_delay(state, circuit::mux_tree(static_cast<int>(state.range(0))));
}
BENCHMARK(Delay_MuxTree)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

// Path-delay test generation throughput (ref. [7]).
void PathDelay_TestGeneration(benchmark::State& state) {
  circuit::Circuit c = circuit::alu(static_cast<int>(state.range(0)));
  std::vector<delay::Path> paths = delay::longest_paths(c, 32);
  int testable = 0;
  for (auto _ : state) {
    testable = 0;
    for (const delay::Path& p : paths) {
      if (delay::sensitize_path(c, p).has_value()) ++testable;
    }
  }
  state.counters["paths"] = static_cast<double>(paths.size());
  state.counters["testable"] = static_cast<double>(testable);
}
BENCHMARK(PathDelay_TestGeneration)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Single threshold query (the building block): cost vs threshold d.
void Delay_ThresholdQuery(benchmark::State& state) {
  circuit::Circuit c = circuit::alu(8);
  const int topo = delay::topological_delay(c);
  const int d = topo - static_cast<int>(state.range(0));
  bool feasible = false;
  for (auto _ : state) {
    feasible = delay::sensitize_delay(c, d).has_value();
  }
  state.counters["d"] = static_cast<double>(d);
  state.counters["feasible"] = feasible ? 1 : 0;
}
BENCHMARK(Delay_ThresholdQuery)->Arg(0)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
