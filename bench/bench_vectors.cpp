/// \file bench_vectors.cpp
/// \brief Experiment E13 (paper §3, ref. [13]): functional vector
///        generation throughput.  Cube blocking (partial patterns from
///        the §5 layer) vs full-vector blocking, across constraint
///        tightness.
#include <benchmark/benchmark.h>

#include "circuit/generators.hpp"
#include "vectors/vectors.hpp"

namespace {

using namespace sateda;

void run_gen(benchmark::State& state, const circuit::Circuit& c,
             circuit::NodeId node, bool value, int count,
             bool block_cubes) {
  vectors::VectorGenResult r;
  for (auto _ : state) {
    vectors::VectorGenOptions opts;
    opts.block_cubes = block_cubes;
    opts.use_structural_layer = block_cubes;
    r = vectors::generate_vectors(c, node, value, count, opts);
    benchmark::DoNotOptimize(r);
  }
  state.counters["vectors"] = static_cast<double>(r.vectors.size());
  state.counters["sat_calls"] = static_cast<double>(r.sat_calls);
  state.counters["vectors_per_sec"] = benchmark::Counter(
      static_cast<double>(r.vectors.size()), benchmark::Counter::kIsRate);
}

void AdderOverflow_Cubes(benchmark::State& state) {
  circuit::Circuit c =
      circuit::ripple_carry_adder(static_cast<int>(state.range(0)));
  run_gen(state, c, c.outputs().back(), true, 64, true);
}
BENCHMARK(AdderOverflow_Cubes)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void AdderOverflow_FullVectors(benchmark::State& state) {
  circuit::Circuit c =
      circuit::ripple_carry_adder(static_cast<int>(state.range(0)));
  run_gen(state, c, c.outputs().back(), true, 64, false);
}
BENCHMARK(AdderOverflow_FullVectors)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

// Tight constraint: comparator equality (1 in 2^n inputs pairs).
void ComparatorEq_Cubes(benchmark::State& state) {
  circuit::Circuit c =
      circuit::equality_comparator(static_cast<int>(state.range(0)));
  run_gen(state, c, c.outputs()[0], true, 64, true);
}
BENCHMARK(ComparatorEq_Cubes)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

void ComparatorEq_FullVectors(benchmark::State& state) {
  circuit::Circuit c =
      circuit::equality_comparator(static_cast<int>(state.range(0)));
  run_gen(state, c, c.outputs()[0], true, 64, false);
}
BENCHMARK(ComparatorEq_FullVectors)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

// Exhaustive enumeration of a bounded solution space.
void ParityExhaustive(benchmark::State& state) {
  circuit::Circuit c = circuit::parity_tree(static_cast<int>(state.range(0)));
  vectors::VectorGenResult r;
  for (auto _ : state) {
    vectors::VectorGenOptions opts;
    opts.block_cubes = false;
    opts.use_structural_layer = false;
    r = vectors::generate_vectors(c, c.outputs()[0], true, 1 << 14, opts);
    if (!r.exhausted) state.SkipWithError("expected exhaustion");
  }
  state.counters["vectors"] = static_cast<double>(r.vectors.size());
}
BENCHMARK(ParityExhaustive)->Arg(6)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
