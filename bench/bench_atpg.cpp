/// \file bench_atpg.cpp
/// \brief Experiment E6 (paper §3, refs [20, 25, 17]): the ATPG flow.
///        SAT-based deterministic generation vs a random-pattern-only
///        baseline (coverage + abort behaviour), plus the §5 layer
///        ablation inside the per-fault queries and redundancy
///        identification throughput.
#include <benchmark/benchmark.h>

#include "atpg/engine.hpp"
#include "circuit/generators.hpp"

namespace {

using namespace sateda;

void report(benchmark::State& state, const atpg::AtpgStats& stats,
            std::size_t tests) {
  state.counters["faults"] = static_cast<double>(stats.total_faults);
  state.counters["coverage_pct"] = 100.0 * stats.fault_coverage();
  state.counters["efficiency_pct"] = 100.0 * stats.test_efficiency();
  state.counters["redundant"] = static_cast<double>(stats.redundant);
  state.counters["aborted"] = static_cast<double>(stats.aborted);
  state.counters["patterns"] = static_cast<double>(tests);
  state.counters["sat_calls"] = static_cast<double>(stats.sat_calls);
}

void run_flow(benchmark::State& state, const circuit::Circuit& c,
              atpg::AtpgOptions opts) {
  atpg::AtpgResult r;
  for (auto _ : state) {
    r = atpg::run_atpg(c, opts);
    benchmark::DoNotOptimize(r);
  }
  report(state, r.stats, r.tests.size());
}

circuit::Circuit bench_circuit(int which) {
  switch (which) {
    case 0: return circuit::alu(6);
    case 1: return circuit::ripple_carry_adder(16);
    case 2: return circuit::array_multiplier(6);
    case 3: return circuit::mux_tree(5);
    default: return circuit::random_circuit(32, 300, 77);
  }
}

void SatAtpg_Full(benchmark::State& state) {
  run_flow(state, bench_circuit(static_cast<int>(state.range(0))), {});
}
BENCHMARK(SatAtpg_Full)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void SatAtpg_NoRandomPhase(benchmark::State& state) {
  atpg::AtpgOptions opts;
  opts.random_phase = false;
  run_flow(state, bench_circuit(static_cast<int>(state.range(0))), opts);
}
BENCHMARK(SatAtpg_NoRandomPhase)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void SatAtpg_NoStructuralLayer(benchmark::State& state) {
  atpg::AtpgOptions opts;
  opts.use_structural_layer = false;
  run_flow(state, bench_circuit(static_cast<int>(state.range(0))), opts);
}
BENCHMARK(SatAtpg_NoStructuralLayer)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void SatAtpg_NoSimulationDropping(benchmark::State& state) {
  atpg::AtpgOptions opts;
  opts.drop_by_simulation = false;
  run_flow(state, bench_circuit(static_cast<int>(state.range(0))), opts);
}
BENCHMARK(SatAtpg_NoSimulationDropping)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

// Random-pattern baseline: coverage saturates below 100% and proves
// nothing redundant — the "who wins" contrast of the table.
void RandomAtpg_Baseline(benchmark::State& state) {
  circuit::Circuit c = bench_circuit(static_cast<int>(state.range(0)));
  atpg::AtpgResult r;
  for (auto _ : state) {
    r = atpg::run_random_atpg(c, 1024, 99);
    benchmark::DoNotOptimize(r);
  }
  report(state, r.stats, r.tests.size());
}
BENCHMARK(RandomAtpg_Baseline)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

// Redundancy identification (ref. [17]): a circuit salted with
// absorption-redundant gates; counts proved-redundant lines.
void RedundancyIdentification(benchmark::State& state) {
  circuit::Circuit c("redundant_soup");
  std::vector<circuit::NodeId> ins;
  for (int i = 0; i < 12; ++i) ins.push_back(c.add_input());
  for (int i = 0; i + 1 < 12; i += 2) {
    circuit::NodeId g = c.add_and(ins[i], ins[i + 1]);
    circuit::NodeId y = c.add_or(ins[i], g);  // absorption: g redundant
    c.mark_output(y, "y" + std::to_string(i));
  }
  atpg::AtpgResult r;
  for (auto _ : state) {
    atpg::AtpgOptions opts;
    opts.random_phase = false;
    r = atpg::run_atpg(c, opts);
    benchmark::DoNotOptimize(r);
  }
  report(state, r.stats, r.tests.size());
}
BENCHMARK(RedundancyIdentification)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
