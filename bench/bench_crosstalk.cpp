/// \file bench_crosstalk.cpp
/// \brief Experiment E17 (paper §3, ref. [8]): "true" crosstalk noise
///        analysis.  The functional worst case (max simultaneously
///        rising aggressors with the victim quiet) vs the topological
///        bound; the gap is the pessimism SAT removes.
#include <benchmark/benchmark.h>

#include "circuit/generators.hpp"
#include "noise/crosstalk.hpp"

namespace {

using namespace sateda;
using circuit::Circuit;
using circuit::NodeId;

void run_crosstalk(benchmark::State& state, const Circuit& c, NodeId victim,
                   const std::vector<NodeId>& aggressors) {
  noise::CrosstalkResult r;
  for (auto _ : state) {
    r = noise::worst_case_aggressors(c, victim, aggressors);
    benchmark::DoNotOptimize(r);
  }
  state.counters["topological"] = static_cast<double>(r.topological_bound);
  state.counters["functional"] = static_cast<double>(r.functional_worst);
  state.counters["pessimism"] =
      static_cast<double>(r.topological_bound - r.functional_worst);
}

void Crosstalk_RandomLogic(benchmark::State& state) {
  Circuit c =
      circuit::random_circuit(12, static_cast<int>(state.range(0)), 33);
  NodeId victim = c.outputs()[0];
  std::vector<NodeId> aggressors;
  for (NodeId n = static_cast<NodeId>(c.inputs().size());
       n < static_cast<NodeId>(c.num_nodes()) && aggressors.size() < 8; ++n) {
    if (n != victim) aggressors.push_back(n);
  }
  run_crosstalk(state, c, victim, aggressors);
}
BENCHMARK(Crosstalk_RandomLogic)->Arg(60)->Arg(120)->Arg(240)->Unit(benchmark::kMillisecond);

void Crosstalk_AluBus(benchmark::State& state) {
  // Victim: one result bit; aggressors: the other result bits — a bus
  // whose bits are logically correlated through the shared opcode.
  Circuit c = circuit::alu(static_cast<int>(state.range(0)));
  NodeId victim = c.outputs()[0];
  std::vector<NodeId> aggressors(c.outputs().begin() + 1, c.outputs().end());
  run_crosstalk(state, c, victim, aggressors);
}
BENCHMARK(Crosstalk_AluBus)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void Crosstalk_AdderCarries(benchmark::State& state) {
  // Victim: the low sum bit; aggressors: all other sums + carry — the
  // carry chain correlates them.
  Circuit c = circuit::ripple_carry_adder(static_cast<int>(state.range(0)));
  NodeId victim = c.outputs()[0];
  std::vector<NodeId> aggressors(c.outputs().begin() + 1, c.outputs().end());
  run_crosstalk(state, c, victim, aggressors);
}
BENCHMARK(Crosstalk_AdderCarries)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
