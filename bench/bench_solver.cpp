/// \file bench_solver.cpp
/// \brief Experiment E1 (paper §4.1, Figure 2): the techniques that
///        characterize modern backtrack-search SAT — clause recording
///        and non-chronological backtracking — against the 1962 DPLL
///        baseline, on UNSAT combinatorial instances, random 3-SAT at
///        the phase transition, and circuit-structured (CEC miter)
///        instances.  Expected shape: CDCL ≫ DPLL on structured/UNSAT
///        families, modest differences on small random instances.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "cnf/generators.hpp"
#include "sat/dpll.hpp"
#include "sat/solver.hpp"

namespace {

using namespace sateda;

sat::SolverOptions configured(bool learning, bool nonchron) {
  sat::SolverOptions o;
  o.clause_learning = learning;
  o.backtrack = nonchron ? sat::BacktrackMode::kNonChronological
                         : sat::BacktrackMode::kChronological;
  return o;
}

void run_cdcl(benchmark::State& state, const CnfFormula& f,
              sat::SolverOptions opts, sat::SolveResult expect) {
  std::int64_t conflicts = 0, decisions = 0;
  for (auto _ : state) {
    sat::Solver s(opts);
    (void)s.add_formula(f);
    sat::SolveResult r = s.solve();
    if (r != expect) state.SkipWithError("unexpected verdict");
    conflicts = s.stats().conflicts;
    decisions = s.stats().decisions;
  }
  state.counters["conflicts"] = static_cast<double>(conflicts);
  state.counters["decisions"] = static_cast<double>(decisions);
  state.counters["vars"] = static_cast<double>(f.num_vars());
  state.counters["clauses"] = static_cast<double>(f.num_clauses());
}

void run_dpll(benchmark::State& state, const CnfFormula& f,
              sat::SolveResult expect) {
  std::int64_t backtracks = 0, decisions = 0;
  for (auto _ : state) {
    sat::DpllSolver s(f);
    sat::SolveResult r = s.solve();
    if (r != expect) state.SkipWithError("unexpected verdict");
    backtracks = s.dpll_stats().backtracks;
    decisions = s.stats().decisions;
  }
  state.counters["conflicts"] = static_cast<double>(backtracks);
  state.counters["decisions"] = static_cast<double>(decisions);
}

// --- pigeonhole (UNSAT, resolution-hard) -----------------------------

void PHP_CDCL(benchmark::State& state) {
  CnfFormula f = pigeonhole(static_cast<int>(state.range(0)));
  run_cdcl(state, f, configured(true, true), sat::SolveResult::kUnsat);
}
BENCHMARK(PHP_CDCL)->Arg(5)->Arg(6)->Arg(7)->Arg(8)->Unit(benchmark::kMillisecond);

void PHP_CDCL_Chronological(benchmark::State& state) {
  CnfFormula f = pigeonhole(static_cast<int>(state.range(0)));
  run_cdcl(state, f, configured(true, false), sat::SolveResult::kUnsat);
}
BENCHMARK(PHP_CDCL_Chronological)->Arg(5)->Arg(6)->Arg(7)->Unit(benchmark::kMillisecond);

void PHP_CDCL_NoLearning(benchmark::State& state) {
  CnfFormula f = pigeonhole(static_cast<int>(state.range(0)));
  run_cdcl(state, f, configured(false, true), sat::SolveResult::kUnsat);
}
BENCHMARK(PHP_CDCL_NoLearning)->Arg(5)->Arg(6)->Unit(benchmark::kMillisecond);

void PHP_DPLL(benchmark::State& state) {
  CnfFormula f = pigeonhole(static_cast<int>(state.range(0)));
  run_dpll(state, f, sat::SolveResult::kUnsat);
}
BENCHMARK(PHP_DPLL)->Arg(5)->Arg(6)->Unit(benchmark::kMillisecond);

// --- random 3-SAT at the phase transition -----------------------------

CnfFormula phase_transition_instance(int n, std::uint64_t seed) {
  return random_3sat(n, 4.26, seed);
}

void Random3Sat_CDCL(benchmark::State& state) {
  CnfFormula f = phase_transition_instance(static_cast<int>(state.range(0)), 42);
  sat::Solver probe;
  (void)probe.add_formula(f);
  sat::SolveResult expect = probe.solve();
  run_cdcl(state, f, configured(true, true), expect);
}
BENCHMARK(Random3Sat_CDCL)->Arg(75)->Arg(125)->Arg(175)->Unit(benchmark::kMillisecond);

void Random3Sat_DPLL(benchmark::State& state) {
  CnfFormula f = phase_transition_instance(static_cast<int>(state.range(0)), 42);
  sat::Solver probe;
  (void)probe.add_formula(f);
  sat::SolveResult expect = probe.solve();
  run_dpll(state, f, expect);
}
BENCHMARK(Random3Sat_DPLL)->Arg(50)->Arg(75)->Unit(benchmark::kMillisecond);

// --- circuit-structured UNSAT (CEC miter) -----------------------------

void Miter_CDCL(benchmark::State& state) {
  CnfFormula f = benchutil::adder_miter_cnf(static_cast<int>(state.range(0)));
  run_cdcl(state, f, configured(true, true), sat::SolveResult::kUnsat);
}
BENCHMARK(Miter_CDCL)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void Miter_CDCL_Chronological(benchmark::State& state) {
  CnfFormula f = benchutil::adder_miter_cnf(static_cast<int>(state.range(0)));
  run_cdcl(state, f, configured(true, false), sat::SolveResult::kUnsat);
}
BENCHMARK(Miter_CDCL_Chronological)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void Miter_CDCL_NoLearning(benchmark::State& state) {
  CnfFormula f = benchutil::adder_miter_cnf(static_cast<int>(state.range(0)));
  run_cdcl(state, f, configured(false, true), sat::SolveResult::kUnsat);
}
BENCHMARK(Miter_CDCL_NoLearning)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void Miter_DPLL(benchmark::State& state) {
  CnfFormula f = benchutil::adder_miter_cnf(static_cast<int>(state.range(0)));
  run_dpll(state, f, sat::SolveResult::kUnsat);
}
BENCHMARK(Miter_DPLL)->Arg(8)->Unit(benchmark::kMillisecond);

// --- parity chains (hard without learning) -----------------------------

void Parity_CDCL(benchmark::State& state) {
  CnfFormula f = parity_chain(static_cast<int>(state.range(0)), true);
  run_cdcl(state, f, configured(true, true), sat::SolveResult::kSat);
}
BENCHMARK(Parity_CDCL)->Arg(24)->Arg(48)->Unit(benchmark::kMillisecond);

void Parity_DPLL(benchmark::State& state) {
  CnfFormula f = parity_chain(static_cast<int>(state.range(0)), true);
  run_dpll(state, f, sat::SolveResult::kSat);
}
BENCHMARK(Parity_DPLL)->Arg(24)->Unit(benchmark::kMillisecond);

// --- clause deletion policies (§4.1 properties 2-3) -------------------

void DeletionPolicy_Bench(benchmark::State& state) {
  CnfFormula f = pigeonhole(7);
  sat::SolverOptions o;
  o.deletion = static_cast<sat::DeletionPolicy>(state.range(0));
  run_cdcl(state, f, o, sat::SolveResult::kUnsat);
}
BENCHMARK(DeletionPolicy_Bench)
    ->Arg(static_cast<int>(sateda::sat::DeletionPolicy::kNever))
    ->Arg(static_cast<int>(sateda::sat::DeletionPolicy::kActivity))
    ->Arg(static_cast<int>(sateda::sat::DeletionPolicy::kRelevance))
    ->Arg(static_cast<int>(sateda::sat::DeletionPolicy::kSizeBounded))
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
