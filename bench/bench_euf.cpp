/// \file bench_euf.cpp
/// \brief Experiment E18 (paper §3, ref. [6]): processor verification
///        by reducing equality-with-uninterpreted-functions to SAT.
///        Pipeline-vs-ISA queries plus scaling of the e_ij/transitivity
///        reduction on congruence-chain instances.
#include <benchmark/benchmark.h>

#include "euf/euf.hpp"
#include "euf/pipeline.hpp"

namespace {

using namespace sateda;
using namespace sateda::euf;

void Pipeline_WithForwarding(benchmark::State& state) {
  PipelineVerification v;
  for (auto _ : state) {
    v = verify_toy_pipeline(true);
    if (!v.valid) state.SkipWithError("pipeline must verify");
  }
  state.counters["atoms"] = static_cast<double>(v.query.atoms);
  state.counters["cnf_clauses"] = static_cast<double>(v.query.cnf_clauses);
}
BENCHMARK(Pipeline_WithForwarding)->Unit(benchmark::kMillisecond);

void Pipeline_MissingForwarding(benchmark::State& state) {
  PipelineVerification v;
  for (auto _ : state) {
    v = verify_toy_pipeline(false);
    if (v.valid) state.SkipWithError("hazard must be found");
  }
  state.counters["atoms"] = static_cast<double>(v.query.atoms);
}
BENCHMARK(Pipeline_MissingForwarding)->Unit(benchmark::kMillisecond);

// Congruence chains: x=y ⊢ f^n(x) = f^n(y).  Atom count grows with n;
// the transitivity encoding is cubic, which is the known cost of the
// e_ij reduction.
void CongruenceChain_Valid(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  EufResult r;
  for (auto _ : state) {
    EufContext ctx;
    TermId x = ctx.term_var("x");
    TermId y = ctx.term_var("y");
    TermId fx = x, fy = y;
    for (int i = 0; i < n; ++i) {
      fx = ctx.apply("f", {fx});
      fy = ctx.apply("f", {fy});
    }
    FormulaId claim = ctx.f_implies(ctx.eq(x, y), ctx.eq(fx, fy));
    r = ctx.check_sat(ctx.f_not(claim));
    if (r.result != sat::SolveResult::kUnsat) {
      state.SkipWithError("congruence chain must be valid");
    }
  }
  state.counters["atoms"] = static_cast<double>(r.atoms);
  state.counters["cnf_clauses"] = static_cast<double>(r.cnf_clauses);
}
BENCHMARK(CongruenceChain_Valid)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

// Diamond equalities: classic EUF stress — 2^n propositional cases
// share one congruence skeleton.
void Diamonds(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  EufResult r;
  for (auto _ : state) {
    EufContext ctx;
    // Two copies of the same diamond chain from one seed: equal at
    // every depth, but the prover must thread ITE links and congruence
    // through 2^n propositional branch combinations.
    TermId a = ctx.term_var("seed");
    TermId b = a;
    for (int i = 0; i < n; ++i) {
      FormulaId c = ctx.prop_var("c" + std::to_string(i));
      a = ctx.term_ite(c, ctx.apply("l" + std::to_string(i), {a}),
                       ctx.apply("r" + std::to_string(i), {a}));
      b = ctx.term_ite(c, ctx.apply("l" + std::to_string(i), {b}),
                       ctx.apply("r" + std::to_string(i), {b}));
    }
    r = ctx.check_sat(ctx.f_not(ctx.eq(a, b)));
    if (r.result != sat::SolveResult::kUnsat) {
      state.SkipWithError("diamond chains must be provably equal");
    }
  }
  state.counters["atoms"] = static_cast<double>(r.atoms);
}
BENCHMARK(Diamonds)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
