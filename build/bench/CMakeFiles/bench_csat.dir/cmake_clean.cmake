file(REMOVE_RECURSE
  "CMakeFiles/bench_csat.dir/bench_csat.cpp.o"
  "CMakeFiles/bench_csat.dir/bench_csat.cpp.o.d"
  "bench_csat"
  "bench_csat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_csat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
