# Empty dependencies file for bench_csat.
# This may be replaced when dependencies are built.
