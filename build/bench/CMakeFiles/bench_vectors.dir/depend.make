# Empty dependencies file for bench_vectors.
# This may be replaced when dependencies are built.
