file(REMOVE_RECURSE
  "CMakeFiles/bench_vectors.dir/bench_vectors.cpp.o"
  "CMakeFiles/bench_vectors.dir/bench_vectors.cpp.o.d"
  "bench_vectors"
  "bench_vectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
