# Empty dependencies file for bench_restarts.
# This may be replaced when dependencies are built.
