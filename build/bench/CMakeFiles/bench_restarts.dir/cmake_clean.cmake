file(REMOVE_RECURSE
  "CMakeFiles/bench_restarts.dir/bench_restarts.cpp.o"
  "CMakeFiles/bench_restarts.dir/bench_restarts.cpp.o.d"
  "bench_restarts"
  "bench_restarts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_restarts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
