file(REMOVE_RECURSE
  "CMakeFiles/bench_bdd_cec.dir/bench_bdd_cec.cpp.o"
  "CMakeFiles/bench_bdd_cec.dir/bench_bdd_cec.cpp.o.d"
  "bench_bdd_cec"
  "bench_bdd_cec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bdd_cec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
