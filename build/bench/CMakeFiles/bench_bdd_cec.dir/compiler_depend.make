# Empty compiler generated dependencies file for bench_bdd_cec.
# This may be replaced when dependencies are built.
