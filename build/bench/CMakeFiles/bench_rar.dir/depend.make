# Empty dependencies file for bench_rar.
# This may be replaced when dependencies are built.
