file(REMOVE_RECURSE
  "CMakeFiles/bench_rar.dir/bench_rar.cpp.o"
  "CMakeFiles/bench_rar.dir/bench_rar.cpp.o.d"
  "bench_rar"
  "bench_rar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
