file(REMOVE_RECURSE
  "CMakeFiles/bench_equiv.dir/bench_equiv.cpp.o"
  "CMakeFiles/bench_equiv.dir/bench_equiv.cpp.o.d"
  "bench_equiv"
  "bench_equiv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_equiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
