file(REMOVE_RECURSE
  "CMakeFiles/bench_euf.dir/bench_euf.cpp.o"
  "CMakeFiles/bench_euf.dir/bench_euf.cpp.o.d"
  "bench_euf"
  "bench_euf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_euf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
