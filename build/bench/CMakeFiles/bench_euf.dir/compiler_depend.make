# Empty compiler generated dependencies file for bench_euf.
# This may be replaced when dependencies are built.
