# Empty compiler generated dependencies file for bench_covering.
# This may be replaced when dependencies are built.
