file(REMOVE_RECURSE
  "CMakeFiles/bench_covering.dir/bench_covering.cpp.o"
  "CMakeFiles/bench_covering.dir/bench_covering.cpp.o.d"
  "bench_covering"
  "bench_covering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_covering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
