file(REMOVE_RECURSE
  "CMakeFiles/bench_crosstalk.dir/bench_crosstalk.cpp.o"
  "CMakeFiles/bench_crosstalk.dir/bench_crosstalk.cpp.o.d"
  "bench_crosstalk"
  "bench_crosstalk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crosstalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
