file(REMOVE_RECURSE
  "CMakeFiles/bench_fpga.dir/bench_fpga.cpp.o"
  "CMakeFiles/bench_fpga.dir/bench_fpga.cpp.o.d"
  "bench_fpga"
  "bench_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
