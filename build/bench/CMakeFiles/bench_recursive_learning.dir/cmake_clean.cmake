file(REMOVE_RECURSE
  "CMakeFiles/bench_recursive_learning.dir/bench_recursive_learning.cpp.o"
  "CMakeFiles/bench_recursive_learning.dir/bench_recursive_learning.cpp.o.d"
  "bench_recursive_learning"
  "bench_recursive_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recursive_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
