file(REMOVE_RECURSE
  "CMakeFiles/bench_bmc.dir/bench_bmc.cpp.o"
  "CMakeFiles/bench_bmc.dir/bench_bmc.cpp.o.d"
  "bench_bmc"
  "bench_bmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
