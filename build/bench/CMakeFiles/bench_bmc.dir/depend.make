# Empty dependencies file for bench_bmc.
# This may be replaced when dependencies are built.
