file(REMOVE_RECURSE
  "CMakeFiles/sateda_equiv.dir/bdd_cec.cpp.o"
  "CMakeFiles/sateda_equiv.dir/bdd_cec.cpp.o.d"
  "CMakeFiles/sateda_equiv.dir/cec.cpp.o"
  "CMakeFiles/sateda_equiv.dir/cec.cpp.o.d"
  "CMakeFiles/sateda_equiv.dir/sec.cpp.o"
  "CMakeFiles/sateda_equiv.dir/sec.cpp.o.d"
  "libsateda_equiv.a"
  "libsateda_equiv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda_equiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
