file(REMOVE_RECURSE
  "libsateda_equiv.a"
)
