# Empty compiler generated dependencies file for sateda_equiv.
# This may be replaced when dependencies are built.
