file(REMOVE_RECURSE
  "CMakeFiles/sateda_bdd.dir/bdd.cpp.o"
  "CMakeFiles/sateda_bdd.dir/bdd.cpp.o.d"
  "CMakeFiles/sateda_bdd.dir/circuit_bdd.cpp.o"
  "CMakeFiles/sateda_bdd.dir/circuit_bdd.cpp.o.d"
  "libsateda_bdd.a"
  "libsateda_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
