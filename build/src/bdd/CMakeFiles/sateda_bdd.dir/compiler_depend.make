# Empty compiler generated dependencies file for sateda_bdd.
# This may be replaced when dependencies are built.
