file(REMOVE_RECURSE
  "libsateda_bdd.a"
)
