file(REMOVE_RECURSE
  "libsateda_circuit.a"
)
