# Empty dependencies file for sateda_circuit.
# This may be replaced when dependencies are built.
