file(REMOVE_RECURSE
  "CMakeFiles/sateda_circuit.dir/bench_io.cpp.o"
  "CMakeFiles/sateda_circuit.dir/bench_io.cpp.o.d"
  "CMakeFiles/sateda_circuit.dir/dot.cpp.o"
  "CMakeFiles/sateda_circuit.dir/dot.cpp.o.d"
  "CMakeFiles/sateda_circuit.dir/encoder.cpp.o"
  "CMakeFiles/sateda_circuit.dir/encoder.cpp.o.d"
  "CMakeFiles/sateda_circuit.dir/generators.cpp.o"
  "CMakeFiles/sateda_circuit.dir/generators.cpp.o.d"
  "CMakeFiles/sateda_circuit.dir/miter.cpp.o"
  "CMakeFiles/sateda_circuit.dir/miter.cpp.o.d"
  "CMakeFiles/sateda_circuit.dir/netlist.cpp.o"
  "CMakeFiles/sateda_circuit.dir/netlist.cpp.o.d"
  "CMakeFiles/sateda_circuit.dir/simulator.cpp.o"
  "CMakeFiles/sateda_circuit.dir/simulator.cpp.o.d"
  "CMakeFiles/sateda_circuit.dir/structural_hash.cpp.o"
  "CMakeFiles/sateda_circuit.dir/structural_hash.cpp.o.d"
  "libsateda_circuit.a"
  "libsateda_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
