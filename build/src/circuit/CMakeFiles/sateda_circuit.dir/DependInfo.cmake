
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/bench_io.cpp" "src/circuit/CMakeFiles/sateda_circuit.dir/bench_io.cpp.o" "gcc" "src/circuit/CMakeFiles/sateda_circuit.dir/bench_io.cpp.o.d"
  "/root/repo/src/circuit/dot.cpp" "src/circuit/CMakeFiles/sateda_circuit.dir/dot.cpp.o" "gcc" "src/circuit/CMakeFiles/sateda_circuit.dir/dot.cpp.o.d"
  "/root/repo/src/circuit/encoder.cpp" "src/circuit/CMakeFiles/sateda_circuit.dir/encoder.cpp.o" "gcc" "src/circuit/CMakeFiles/sateda_circuit.dir/encoder.cpp.o.d"
  "/root/repo/src/circuit/generators.cpp" "src/circuit/CMakeFiles/sateda_circuit.dir/generators.cpp.o" "gcc" "src/circuit/CMakeFiles/sateda_circuit.dir/generators.cpp.o.d"
  "/root/repo/src/circuit/miter.cpp" "src/circuit/CMakeFiles/sateda_circuit.dir/miter.cpp.o" "gcc" "src/circuit/CMakeFiles/sateda_circuit.dir/miter.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/circuit/CMakeFiles/sateda_circuit.dir/netlist.cpp.o" "gcc" "src/circuit/CMakeFiles/sateda_circuit.dir/netlist.cpp.o.d"
  "/root/repo/src/circuit/simulator.cpp" "src/circuit/CMakeFiles/sateda_circuit.dir/simulator.cpp.o" "gcc" "src/circuit/CMakeFiles/sateda_circuit.dir/simulator.cpp.o.d"
  "/root/repo/src/circuit/structural_hash.cpp" "src/circuit/CMakeFiles/sateda_circuit.dir/structural_hash.cpp.o" "gcc" "src/circuit/CMakeFiles/sateda_circuit.dir/structural_hash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cnf/CMakeFiles/sateda_cnf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
