file(REMOVE_RECURSE
  "CMakeFiles/sateda_cnf.dir/dimacs.cpp.o"
  "CMakeFiles/sateda_cnf.dir/dimacs.cpp.o.d"
  "CMakeFiles/sateda_cnf.dir/formula.cpp.o"
  "CMakeFiles/sateda_cnf.dir/formula.cpp.o.d"
  "CMakeFiles/sateda_cnf.dir/generators.cpp.o"
  "CMakeFiles/sateda_cnf.dir/generators.cpp.o.d"
  "libsateda_cnf.a"
  "libsateda_cnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda_cnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
