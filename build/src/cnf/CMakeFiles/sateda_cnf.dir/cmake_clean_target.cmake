file(REMOVE_RECURSE
  "libsateda_cnf.a"
)
