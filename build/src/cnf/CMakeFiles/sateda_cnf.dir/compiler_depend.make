# Empty compiler generated dependencies file for sateda_cnf.
# This may be replaced when dependencies are built.
