file(REMOVE_RECURSE
  "CMakeFiles/sateda_noise.dir/crosstalk.cpp.o"
  "CMakeFiles/sateda_noise.dir/crosstalk.cpp.o.d"
  "libsateda_noise.a"
  "libsateda_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
