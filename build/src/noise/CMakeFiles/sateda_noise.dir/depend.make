# Empty dependencies file for sateda_noise.
# This may be replaced when dependencies are built.
