file(REMOVE_RECURSE
  "libsateda_noise.a"
)
