# Empty compiler generated dependencies file for sateda_synth.
# This may be replaced when dependencies are built.
