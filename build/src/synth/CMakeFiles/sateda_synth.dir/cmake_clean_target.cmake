file(REMOVE_RECURSE
  "libsateda_synth.a"
)
