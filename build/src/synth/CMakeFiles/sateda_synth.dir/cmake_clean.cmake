file(REMOVE_RECURSE
  "CMakeFiles/sateda_synth.dir/rar.cpp.o"
  "CMakeFiles/sateda_synth.dir/rar.cpp.o.d"
  "libsateda_synth.a"
  "libsateda_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
