# Empty dependencies file for sateda_vectors.
# This may be replaced when dependencies are built.
