file(REMOVE_RECURSE
  "libsateda_vectors.a"
)
