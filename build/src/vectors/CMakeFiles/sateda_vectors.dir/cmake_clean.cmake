file(REMOVE_RECURSE
  "CMakeFiles/sateda_vectors.dir/vectors.cpp.o"
  "CMakeFiles/sateda_vectors.dir/vectors.cpp.o.d"
  "libsateda_vectors.a"
  "libsateda_vectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda_vectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
