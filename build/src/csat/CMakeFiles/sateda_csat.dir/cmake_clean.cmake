file(REMOVE_RECURSE
  "CMakeFiles/sateda_csat.dir/circuit_layer.cpp.o"
  "CMakeFiles/sateda_csat.dir/circuit_layer.cpp.o.d"
  "CMakeFiles/sateda_csat.dir/circuit_sat.cpp.o"
  "CMakeFiles/sateda_csat.dir/circuit_sat.cpp.o.d"
  "libsateda_csat.a"
  "libsateda_csat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda_csat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
