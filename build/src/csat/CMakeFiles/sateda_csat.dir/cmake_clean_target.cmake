file(REMOVE_RECURSE
  "libsateda_csat.a"
)
