# Empty dependencies file for sateda_csat.
# This may be replaced when dependencies are built.
