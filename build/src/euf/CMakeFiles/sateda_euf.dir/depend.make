# Empty dependencies file for sateda_euf.
# This may be replaced when dependencies are built.
