file(REMOVE_RECURSE
  "libsateda_euf.a"
)
