file(REMOVE_RECURSE
  "CMakeFiles/sateda_euf.dir/euf.cpp.o"
  "CMakeFiles/sateda_euf.dir/euf.cpp.o.d"
  "CMakeFiles/sateda_euf.dir/pipeline.cpp.o"
  "CMakeFiles/sateda_euf.dir/pipeline.cpp.o.d"
  "libsateda_euf.a"
  "libsateda_euf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda_euf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
