file(REMOVE_RECURSE
  "libsateda_opt.a"
)
