file(REMOVE_RECURSE
  "CMakeFiles/sateda_opt.dir/cardinality.cpp.o"
  "CMakeFiles/sateda_opt.dir/cardinality.cpp.o.d"
  "CMakeFiles/sateda_opt.dir/covering.cpp.o"
  "CMakeFiles/sateda_opt.dir/covering.cpp.o.d"
  "CMakeFiles/sateda_opt.dir/prime_implicants.cpp.o"
  "CMakeFiles/sateda_opt.dir/prime_implicants.cpp.o.d"
  "libsateda_opt.a"
  "libsateda_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
