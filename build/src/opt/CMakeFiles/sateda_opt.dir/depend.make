# Empty dependencies file for sateda_opt.
# This may be replaced when dependencies are built.
