
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sat/dpll.cpp" "src/sat/CMakeFiles/sateda_sat.dir/dpll.cpp.o" "gcc" "src/sat/CMakeFiles/sateda_sat.dir/dpll.cpp.o.d"
  "/root/repo/src/sat/local_search.cpp" "src/sat/CMakeFiles/sateda_sat.dir/local_search.cpp.o" "gcc" "src/sat/CMakeFiles/sateda_sat.dir/local_search.cpp.o.d"
  "/root/repo/src/sat/preprocess.cpp" "src/sat/CMakeFiles/sateda_sat.dir/preprocess.cpp.o" "gcc" "src/sat/CMakeFiles/sateda_sat.dir/preprocess.cpp.o.d"
  "/root/repo/src/sat/proof.cpp" "src/sat/CMakeFiles/sateda_sat.dir/proof.cpp.o" "gcc" "src/sat/CMakeFiles/sateda_sat.dir/proof.cpp.o.d"
  "/root/repo/src/sat/recursive_learning.cpp" "src/sat/CMakeFiles/sateda_sat.dir/recursive_learning.cpp.o" "gcc" "src/sat/CMakeFiles/sateda_sat.dir/recursive_learning.cpp.o.d"
  "/root/repo/src/sat/solver.cpp" "src/sat/CMakeFiles/sateda_sat.dir/solver.cpp.o" "gcc" "src/sat/CMakeFiles/sateda_sat.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cnf/CMakeFiles/sateda_cnf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
