file(REMOVE_RECURSE
  "libsateda_sat.a"
)
