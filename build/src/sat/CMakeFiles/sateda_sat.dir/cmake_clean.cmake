file(REMOVE_RECURSE
  "CMakeFiles/sateda_sat.dir/dpll.cpp.o"
  "CMakeFiles/sateda_sat.dir/dpll.cpp.o.d"
  "CMakeFiles/sateda_sat.dir/local_search.cpp.o"
  "CMakeFiles/sateda_sat.dir/local_search.cpp.o.d"
  "CMakeFiles/sateda_sat.dir/preprocess.cpp.o"
  "CMakeFiles/sateda_sat.dir/preprocess.cpp.o.d"
  "CMakeFiles/sateda_sat.dir/proof.cpp.o"
  "CMakeFiles/sateda_sat.dir/proof.cpp.o.d"
  "CMakeFiles/sateda_sat.dir/recursive_learning.cpp.o"
  "CMakeFiles/sateda_sat.dir/recursive_learning.cpp.o.d"
  "CMakeFiles/sateda_sat.dir/solver.cpp.o"
  "CMakeFiles/sateda_sat.dir/solver.cpp.o.d"
  "libsateda_sat.a"
  "libsateda_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
