# Empty compiler generated dependencies file for sateda_sat.
# This may be replaced when dependencies are built.
