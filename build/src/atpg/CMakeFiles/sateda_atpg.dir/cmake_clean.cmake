file(REMOVE_RECURSE
  "CMakeFiles/sateda_atpg.dir/detection.cpp.o"
  "CMakeFiles/sateda_atpg.dir/detection.cpp.o.d"
  "CMakeFiles/sateda_atpg.dir/engine.cpp.o"
  "CMakeFiles/sateda_atpg.dir/engine.cpp.o.d"
  "CMakeFiles/sateda_atpg.dir/fault.cpp.o"
  "CMakeFiles/sateda_atpg.dir/fault.cpp.o.d"
  "CMakeFiles/sateda_atpg.dir/fault_sim.cpp.o"
  "CMakeFiles/sateda_atpg.dir/fault_sim.cpp.o.d"
  "CMakeFiles/sateda_atpg.dir/incremental.cpp.o"
  "CMakeFiles/sateda_atpg.dir/incremental.cpp.o.d"
  "CMakeFiles/sateda_atpg.dir/transition.cpp.o"
  "CMakeFiles/sateda_atpg.dir/transition.cpp.o.d"
  "libsateda_atpg.a"
  "libsateda_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
