
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atpg/detection.cpp" "src/atpg/CMakeFiles/sateda_atpg.dir/detection.cpp.o" "gcc" "src/atpg/CMakeFiles/sateda_atpg.dir/detection.cpp.o.d"
  "/root/repo/src/atpg/engine.cpp" "src/atpg/CMakeFiles/sateda_atpg.dir/engine.cpp.o" "gcc" "src/atpg/CMakeFiles/sateda_atpg.dir/engine.cpp.o.d"
  "/root/repo/src/atpg/fault.cpp" "src/atpg/CMakeFiles/sateda_atpg.dir/fault.cpp.o" "gcc" "src/atpg/CMakeFiles/sateda_atpg.dir/fault.cpp.o.d"
  "/root/repo/src/atpg/fault_sim.cpp" "src/atpg/CMakeFiles/sateda_atpg.dir/fault_sim.cpp.o" "gcc" "src/atpg/CMakeFiles/sateda_atpg.dir/fault_sim.cpp.o.d"
  "/root/repo/src/atpg/incremental.cpp" "src/atpg/CMakeFiles/sateda_atpg.dir/incremental.cpp.o" "gcc" "src/atpg/CMakeFiles/sateda_atpg.dir/incremental.cpp.o.d"
  "/root/repo/src/atpg/transition.cpp" "src/atpg/CMakeFiles/sateda_atpg.dir/transition.cpp.o" "gcc" "src/atpg/CMakeFiles/sateda_atpg.dir/transition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/csat/CMakeFiles/sateda_csat.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/sateda_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/sateda_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/sateda_cnf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
