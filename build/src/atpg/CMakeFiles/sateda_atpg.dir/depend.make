# Empty dependencies file for sateda_atpg.
# This may be replaced when dependencies are built.
