file(REMOVE_RECURSE
  "libsateda_atpg.a"
)
