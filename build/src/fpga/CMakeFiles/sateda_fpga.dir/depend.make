# Empty dependencies file for sateda_fpga.
# This may be replaced when dependencies are built.
