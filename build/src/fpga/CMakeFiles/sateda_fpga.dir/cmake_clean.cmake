file(REMOVE_RECURSE
  "CMakeFiles/sateda_fpga.dir/routing.cpp.o"
  "CMakeFiles/sateda_fpga.dir/routing.cpp.o.d"
  "libsateda_fpga.a"
  "libsateda_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
