file(REMOVE_RECURSE
  "libsateda_fpga.a"
)
