file(REMOVE_RECURSE
  "libsateda_delay.a"
)
