# Empty dependencies file for sateda_delay.
# This may be replaced when dependencies are built.
