file(REMOVE_RECURSE
  "CMakeFiles/sateda_delay.dir/delay.cpp.o"
  "CMakeFiles/sateda_delay.dir/delay.cpp.o.d"
  "libsateda_delay.a"
  "libsateda_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
