# Empty compiler generated dependencies file for sateda_bmc.
# This may be replaced when dependencies are built.
