file(REMOVE_RECURSE
  "libsateda_bmc.a"
)
