file(REMOVE_RECURSE
  "CMakeFiles/sateda_bmc.dir/bmc.cpp.o"
  "CMakeFiles/sateda_bmc.dir/bmc.cpp.o.d"
  "CMakeFiles/sateda_bmc.dir/induction.cpp.o"
  "CMakeFiles/sateda_bmc.dir/induction.cpp.o.d"
  "CMakeFiles/sateda_bmc.dir/sequential.cpp.o"
  "CMakeFiles/sateda_bmc.dir/sequential.cpp.o.d"
  "libsateda_bmc.a"
  "libsateda_bmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda_bmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
