
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cnf/dimacs_file_test.cpp" "tests/CMakeFiles/cnf_test.dir/cnf/dimacs_file_test.cpp.o" "gcc" "tests/CMakeFiles/cnf_test.dir/cnf/dimacs_file_test.cpp.o.d"
  "/root/repo/tests/cnf/formula_test.cpp" "tests/CMakeFiles/cnf_test.dir/cnf/formula_test.cpp.o" "gcc" "tests/CMakeFiles/cnf_test.dir/cnf/formula_test.cpp.o.d"
  "/root/repo/tests/cnf/generators_test.cpp" "tests/CMakeFiles/cnf_test.dir/cnf/generators_test.cpp.o" "gcc" "tests/CMakeFiles/cnf_test.dir/cnf/generators_test.cpp.o.d"
  "/root/repo/tests/cnf/literal_test.cpp" "tests/CMakeFiles/cnf_test.dir/cnf/literal_test.cpp.o" "gcc" "tests/CMakeFiles/cnf_test.dir/cnf/literal_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cnf/CMakeFiles/sateda_cnf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
