file(REMOVE_RECURSE
  "CMakeFiles/sat_test.dir/sat/dpll_test.cpp.o"
  "CMakeFiles/sat_test.dir/sat/dpll_test.cpp.o.d"
  "CMakeFiles/sat_test.dir/sat/heap_test.cpp.o"
  "CMakeFiles/sat_test.dir/sat/heap_test.cpp.o.d"
  "CMakeFiles/sat_test.dir/sat/local_search_test.cpp.o"
  "CMakeFiles/sat_test.dir/sat/local_search_test.cpp.o.d"
  "CMakeFiles/sat_test.dir/sat/preprocess_test.cpp.o"
  "CMakeFiles/sat_test.dir/sat/preprocess_test.cpp.o.d"
  "CMakeFiles/sat_test.dir/sat/proof_test.cpp.o"
  "CMakeFiles/sat_test.dir/sat/proof_test.cpp.o.d"
  "CMakeFiles/sat_test.dir/sat/recursive_learning_test.cpp.o"
  "CMakeFiles/sat_test.dir/sat/recursive_learning_test.cpp.o.d"
  "CMakeFiles/sat_test.dir/sat/solver_api_test.cpp.o"
  "CMakeFiles/sat_test.dir/sat/solver_api_test.cpp.o.d"
  "CMakeFiles/sat_test.dir/sat/solver_property_test.cpp.o"
  "CMakeFiles/sat_test.dir/sat/solver_property_test.cpp.o.d"
  "CMakeFiles/sat_test.dir/sat/solver_test.cpp.o"
  "CMakeFiles/sat_test.dir/sat/solver_test.cpp.o.d"
  "sat_test"
  "sat_test.pdb"
  "sat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
