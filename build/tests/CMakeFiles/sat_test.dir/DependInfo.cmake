
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sat/dpll_test.cpp" "tests/CMakeFiles/sat_test.dir/sat/dpll_test.cpp.o" "gcc" "tests/CMakeFiles/sat_test.dir/sat/dpll_test.cpp.o.d"
  "/root/repo/tests/sat/heap_test.cpp" "tests/CMakeFiles/sat_test.dir/sat/heap_test.cpp.o" "gcc" "tests/CMakeFiles/sat_test.dir/sat/heap_test.cpp.o.d"
  "/root/repo/tests/sat/local_search_test.cpp" "tests/CMakeFiles/sat_test.dir/sat/local_search_test.cpp.o" "gcc" "tests/CMakeFiles/sat_test.dir/sat/local_search_test.cpp.o.d"
  "/root/repo/tests/sat/preprocess_test.cpp" "tests/CMakeFiles/sat_test.dir/sat/preprocess_test.cpp.o" "gcc" "tests/CMakeFiles/sat_test.dir/sat/preprocess_test.cpp.o.d"
  "/root/repo/tests/sat/proof_test.cpp" "tests/CMakeFiles/sat_test.dir/sat/proof_test.cpp.o" "gcc" "tests/CMakeFiles/sat_test.dir/sat/proof_test.cpp.o.d"
  "/root/repo/tests/sat/recursive_learning_test.cpp" "tests/CMakeFiles/sat_test.dir/sat/recursive_learning_test.cpp.o" "gcc" "tests/CMakeFiles/sat_test.dir/sat/recursive_learning_test.cpp.o.d"
  "/root/repo/tests/sat/solver_api_test.cpp" "tests/CMakeFiles/sat_test.dir/sat/solver_api_test.cpp.o" "gcc" "tests/CMakeFiles/sat_test.dir/sat/solver_api_test.cpp.o.d"
  "/root/repo/tests/sat/solver_property_test.cpp" "tests/CMakeFiles/sat_test.dir/sat/solver_property_test.cpp.o" "gcc" "tests/CMakeFiles/sat_test.dir/sat/solver_property_test.cpp.o.d"
  "/root/repo/tests/sat/solver_test.cpp" "tests/CMakeFiles/sat_test.dir/sat/solver_test.cpp.o" "gcc" "tests/CMakeFiles/sat_test.dir/sat/solver_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sat/CMakeFiles/sateda_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/sateda_cnf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
