file(REMOVE_RECURSE
  "CMakeFiles/atpg_test.dir/atpg/engine_test.cpp.o"
  "CMakeFiles/atpg_test.dir/atpg/engine_test.cpp.o.d"
  "CMakeFiles/atpg_test.dir/atpg/fault_test.cpp.o"
  "CMakeFiles/atpg_test.dir/atpg/fault_test.cpp.o.d"
  "CMakeFiles/atpg_test.dir/atpg/transition_test.cpp.o"
  "CMakeFiles/atpg_test.dir/atpg/transition_test.cpp.o.d"
  "atpg_test"
  "atpg_test.pdb"
  "atpg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atpg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
