# Empty compiler generated dependencies file for euf_test.
# This may be replaced when dependencies are built.
