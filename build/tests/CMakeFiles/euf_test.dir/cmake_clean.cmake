file(REMOVE_RECURSE
  "CMakeFiles/euf_test.dir/euf/euf_test.cpp.o"
  "CMakeFiles/euf_test.dir/euf/euf_test.cpp.o.d"
  "euf_test"
  "euf_test.pdb"
  "euf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/euf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
