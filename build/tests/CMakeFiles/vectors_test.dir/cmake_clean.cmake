file(REMOVE_RECURSE
  "CMakeFiles/vectors_test.dir/vectors/vectors_test.cpp.o"
  "CMakeFiles/vectors_test.dir/vectors/vectors_test.cpp.o.d"
  "vectors_test"
  "vectors_test.pdb"
  "vectors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
