# Empty dependencies file for vectors_test.
# This may be replaced when dependencies are built.
