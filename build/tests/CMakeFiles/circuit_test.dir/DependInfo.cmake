
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/circuit/bench_io_test.cpp" "tests/CMakeFiles/circuit_test.dir/circuit/bench_io_test.cpp.o" "gcc" "tests/CMakeFiles/circuit_test.dir/circuit/bench_io_test.cpp.o.d"
  "/root/repo/tests/circuit/dot_test.cpp" "tests/CMakeFiles/circuit_test.dir/circuit/dot_test.cpp.o" "gcc" "tests/CMakeFiles/circuit_test.dir/circuit/dot_test.cpp.o.d"
  "/root/repo/tests/circuit/encoder_test.cpp" "tests/CMakeFiles/circuit_test.dir/circuit/encoder_test.cpp.o" "gcc" "tests/CMakeFiles/circuit_test.dir/circuit/encoder_test.cpp.o.d"
  "/root/repo/tests/circuit/miter_strash_test.cpp" "tests/CMakeFiles/circuit_test.dir/circuit/miter_strash_test.cpp.o" "gcc" "tests/CMakeFiles/circuit_test.dir/circuit/miter_strash_test.cpp.o.d"
  "/root/repo/tests/circuit/netlist_test.cpp" "tests/CMakeFiles/circuit_test.dir/circuit/netlist_test.cpp.o" "gcc" "tests/CMakeFiles/circuit_test.dir/circuit/netlist_test.cpp.o.d"
  "/root/repo/tests/circuit/simulator_test.cpp" "tests/CMakeFiles/circuit_test.dir/circuit/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/circuit_test.dir/circuit/simulator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/sateda_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/sateda_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/sateda_cnf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
