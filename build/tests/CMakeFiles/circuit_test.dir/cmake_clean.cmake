file(REMOVE_RECURSE
  "CMakeFiles/circuit_test.dir/circuit/bench_io_test.cpp.o"
  "CMakeFiles/circuit_test.dir/circuit/bench_io_test.cpp.o.d"
  "CMakeFiles/circuit_test.dir/circuit/dot_test.cpp.o"
  "CMakeFiles/circuit_test.dir/circuit/dot_test.cpp.o.d"
  "CMakeFiles/circuit_test.dir/circuit/encoder_test.cpp.o"
  "CMakeFiles/circuit_test.dir/circuit/encoder_test.cpp.o.d"
  "CMakeFiles/circuit_test.dir/circuit/miter_strash_test.cpp.o"
  "CMakeFiles/circuit_test.dir/circuit/miter_strash_test.cpp.o.d"
  "CMakeFiles/circuit_test.dir/circuit/netlist_test.cpp.o"
  "CMakeFiles/circuit_test.dir/circuit/netlist_test.cpp.o.d"
  "CMakeFiles/circuit_test.dir/circuit/simulator_test.cpp.o"
  "CMakeFiles/circuit_test.dir/circuit/simulator_test.cpp.o.d"
  "circuit_test"
  "circuit_test.pdb"
  "circuit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
