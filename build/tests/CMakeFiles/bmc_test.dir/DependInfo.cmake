
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bmc/bmc_test.cpp" "tests/CMakeFiles/bmc_test.dir/bmc/bmc_test.cpp.o" "gcc" "tests/CMakeFiles/bmc_test.dir/bmc/bmc_test.cpp.o.d"
  "/root/repo/tests/bmc/induction_test.cpp" "tests/CMakeFiles/bmc_test.dir/bmc/induction_test.cpp.o" "gcc" "tests/CMakeFiles/bmc_test.dir/bmc/induction_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bmc/CMakeFiles/sateda_bmc.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/sateda_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/sateda_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/sateda_cnf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
