file(REMOVE_RECURSE
  "CMakeFiles/csat_test.dir/csat/circuit_sat_test.cpp.o"
  "CMakeFiles/csat_test.dir/csat/circuit_sat_test.cpp.o.d"
  "CMakeFiles/csat_test.dir/csat/justify_test.cpp.o"
  "CMakeFiles/csat_test.dir/csat/justify_test.cpp.o.d"
  "csat_test"
  "csat_test.pdb"
  "csat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
