# Empty compiler generated dependencies file for csat_test.
# This may be replaced when dependencies are built.
