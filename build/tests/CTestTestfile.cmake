# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cnf_test[1]_include.cmake")
include("/root/repo/build/tests/sat_test[1]_include.cmake")
include("/root/repo/build/tests/circuit_test[1]_include.cmake")
include("/root/repo/build/tests/csat_test[1]_include.cmake")
include("/root/repo/build/tests/atpg_test[1]_include.cmake")
include("/root/repo/build/tests/equiv_test[1]_include.cmake")
include("/root/repo/build/tests/bmc_test[1]_include.cmake")
include("/root/repo/build/tests/delay_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/fpga_test[1]_include.cmake")
include("/root/repo/build/tests/vectors_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/noise_test[1]_include.cmake")
include("/root/repo/build/tests/euf_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
