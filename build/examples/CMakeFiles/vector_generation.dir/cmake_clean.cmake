file(REMOVE_RECURSE
  "CMakeFiles/vector_generation.dir/vector_generation.cpp.o"
  "CMakeFiles/vector_generation.dir/vector_generation.cpp.o.d"
  "vector_generation"
  "vector_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
