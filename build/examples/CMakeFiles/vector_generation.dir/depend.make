# Empty dependencies file for vector_generation.
# This may be replaced when dependencies are built.
