# Empty dependencies file for processor_verification.
# This may be replaced when dependencies are built.
