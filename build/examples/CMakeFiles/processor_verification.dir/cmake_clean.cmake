file(REMOVE_RECURSE
  "CMakeFiles/processor_verification.dir/processor_verification.cpp.o"
  "CMakeFiles/processor_verification.dir/processor_verification.cpp.o.d"
  "processor_verification"
  "processor_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/processor_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
