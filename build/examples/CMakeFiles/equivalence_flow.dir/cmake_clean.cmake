file(REMOVE_RECURSE
  "CMakeFiles/equivalence_flow.dir/equivalence_flow.cpp.o"
  "CMakeFiles/equivalence_flow.dir/equivalence_flow.cpp.o.d"
  "equivalence_flow"
  "equivalence_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivalence_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
