# Empty dependencies file for equivalence_flow.
# This may be replaced when dependencies are built.
