# Empty compiler generated dependencies file for bmc_flow.
# This may be replaced when dependencies are built.
