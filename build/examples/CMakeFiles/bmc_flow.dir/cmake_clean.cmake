file(REMOVE_RECURSE
  "CMakeFiles/bmc_flow.dir/bmc_flow.cpp.o"
  "CMakeFiles/bmc_flow.dir/bmc_flow.cpp.o.d"
  "bmc_flow"
  "bmc_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmc_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
