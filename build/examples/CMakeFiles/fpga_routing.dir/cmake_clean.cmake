file(REMOVE_RECURSE
  "CMakeFiles/fpga_routing.dir/fpga_routing.cpp.o"
  "CMakeFiles/fpga_routing.dir/fpga_routing.cpp.o.d"
  "fpga_routing"
  "fpga_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
