# Empty dependencies file for fpga_routing.
# This may be replaced when dependencies are built.
