file(REMOVE_RECURSE
  "CMakeFiles/delay_flow.dir/delay_flow.cpp.o"
  "CMakeFiles/delay_flow.dir/delay_flow.cpp.o.d"
  "delay_flow"
  "delay_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
