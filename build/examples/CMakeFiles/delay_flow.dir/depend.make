# Empty dependencies file for delay_flow.
# This may be replaced when dependencies are built.
