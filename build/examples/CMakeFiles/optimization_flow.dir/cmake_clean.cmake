file(REMOVE_RECURSE
  "CMakeFiles/optimization_flow.dir/optimization_flow.cpp.o"
  "CMakeFiles/optimization_flow.dir/optimization_flow.cpp.o.d"
  "optimization_flow"
  "optimization_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimization_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
