# Empty compiler generated dependencies file for optimization_flow.
# This may be replaced when dependencies are built.
