file(REMOVE_RECURSE
  "CMakeFiles/sateda-solve.dir/sateda_solve.cpp.o"
  "CMakeFiles/sateda-solve.dir/sateda_solve.cpp.o.d"
  "sateda-solve"
  "sateda-solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda-solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
