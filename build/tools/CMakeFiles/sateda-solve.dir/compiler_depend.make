# Empty compiler generated dependencies file for sateda-solve.
# This may be replaced when dependencies are built.
