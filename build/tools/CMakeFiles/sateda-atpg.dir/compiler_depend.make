# Empty compiler generated dependencies file for sateda-atpg.
# This may be replaced when dependencies are built.
