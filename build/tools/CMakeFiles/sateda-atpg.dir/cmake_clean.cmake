file(REMOVE_RECURSE
  "CMakeFiles/sateda-atpg.dir/sateda_atpg.cpp.o"
  "CMakeFiles/sateda-atpg.dir/sateda_atpg.cpp.o.d"
  "sateda-atpg"
  "sateda-atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda-atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
