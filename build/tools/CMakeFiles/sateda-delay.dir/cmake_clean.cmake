file(REMOVE_RECURSE
  "CMakeFiles/sateda-delay.dir/sateda_delay.cpp.o"
  "CMakeFiles/sateda-delay.dir/sateda_delay.cpp.o.d"
  "sateda-delay"
  "sateda-delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda-delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
