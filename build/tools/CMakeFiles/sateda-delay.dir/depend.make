# Empty dependencies file for sateda-delay.
# This may be replaced when dependencies are built.
