file(REMOVE_RECURSE
  "CMakeFiles/sateda-cec.dir/sateda_cec.cpp.o"
  "CMakeFiles/sateda-cec.dir/sateda_cec.cpp.o.d"
  "sateda-cec"
  "sateda-cec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sateda-cec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
