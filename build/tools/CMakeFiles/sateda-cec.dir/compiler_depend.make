# Empty compiler generated dependencies file for sateda-cec.
# This may be replaced when dependencies are built.
