#!/usr/bin/env bash
# Fixture tests for the sateda clang-tidy plugin.
#
# Usage: lint_fixtures.sh <libSatedaTidyModule.so> <clang-tidy> <fixture-dir>
#
# Runs clang-tidy with the plugin loaded over every fixture in
# <fixture-dir> and diffs the line numbers of emitted sateda-* warnings
# against the `// WARN` markers in the fixture source.  A fixture fails
# when a marked line produces no warning (false negative) or an
# unmarked line produces one (false positive).
set -u

if [ "$#" -ne 3 ]; then
  echo "usage: $0 <plugin.so> <clang-tidy> <fixture-dir>" >&2
  exit 2
fi

plugin=$1
clang_tidy=$2
fixture_dir=$3

if [ ! -f "$plugin" ]; then
  echo "error: plugin not found: $plugin" >&2
  exit 2
fi

run_tidy() {
  # -w: fixture stubs are not warning-clean C++ by design; only the
  # sateda checks are under test here.
  "$clang_tidy" -load "$plugin" --checks='-*,sateda-*' "$1" -- -std=c++17 -w
}

fail=0
ran=0
for fixture in "$fixture_dir"/*.cpp; do
  [ -e "$fixture" ] || continue
  ran=$((ran + 1))
  expected=$(grep -n '// WARN' "$fixture" | cut -d: -f1 | sort -n)
  output=$(run_tidy "$fixture" 2>/dev/null)
  actual=$(printf '%s\n' "$output" \
    | grep -E 'warning: .*\[sateda-' \
    | sed -E 's/^[^:]*:([0-9]+):.*/\1/' \
    | sort -n)
  if [ "$expected" = "$actual" ]; then
    count=$(printf '%s\n' "$expected" | grep -c .)
    echo "PASS $(basename "$fixture") ($count warnings)"
  else
    echo "FAIL $(basename "$fixture")"
    echo "  expected warnings on lines: $(echo $expected)"
    echo "  actual warnings on lines:   $(echo $actual)"
    echo "  --- clang-tidy output ---"
    printf '%s\n' "$output" | sed 's/^/  /'
    fail=1
  fi
done

if [ "$ran" -eq 0 ]; then
  echo "error: no fixtures found in $fixture_dir" >&2
  exit 2
fi

exit $fail
