#!/usr/bin/env bash
# serve_smoke.sh BUILD_DIR [CIRCUIT]
#
# End-to-end smoke test of the sateda-serve daemon:
#
#   1. record the warm single-session ATPG request trace for a
#      generated circuit (every collapsed single-stuck-at fault);
#   2. replay it through the daemon on stdin/stdout;
#   3. re-solve every query's dumped standalone CNF with the one-shot
#      sateda-solve and diff the verdicts — the warm incremental
#      session must answer exactly like a cold solver;
#   4. certify one UNSAT answer end-to-end: the daemon's dumped CNF +
#      DRAT proof must pass sateda-check;
#   5. run the built-in warm-vs-cold benchmark and gate the speedup
#      at >= 1.0 (warm sessions must never be slower than cold).
#
# Exits non-zero on any mismatch.
set -euo pipefail

BUILD_DIR=${1:?usage: serve_smoke.sh BUILD_DIR [CIRCUIT]}
CIRCUIT=${2:-adder4}
SERVE="$BUILD_DIR/tools/sateda-serve"
SOLVE="$BUILD_DIR/tools/sateda-solve"
CHECK="$BUILD_DIR/tools/sateda-check"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "== record ATPG trace ($CIRCUIT) =="
"$SERVE" --gen-atpg-trace "$WORK/trace.jsonl" --circuit "$CIRCUIT"

echo "== replay through the daemon =="
"$SERVE" --quiet < "$WORK/trace.jsonl" > "$WORK/replies.jsonl"

echo "== diff daemon verdicts against one-shot sateda-solve =="
python3 - "$WORK" "$SOLVE" <<'EOF'
import json, subprocess, sys
work, solve = sys.argv[1], sys.argv[2]
checked = mismatches = 0
for line in open(f"{work}/replies.jsonl"):
    r = json.loads(line)
    if not r.get("ok"):
        sys.exit(f"daemon error response: {r}")
    if "result" not in r or "cnf" not in r:
        continue
    with open(f"{work}/q.cnf", "w") as f:
        f.write(r["cnf"])
    one_shot = subprocess.run([solve, "--quiet", f"{work}/q.cnf"],
                              stdout=subprocess.DEVNULL).returncode
    want = {"sat": 10, "unsat": 20}.get(r["result"])
    if want is None or one_shot != want:
        mismatches += 1
        print(f"MISMATCH {r.get('id')}: daemon={r['result']} solve-exit={one_shot}")
    checked += 1
if checked == 0:
    sys.exit("no solve responses with dumped CNF found")
print(f"{checked} queries cross-checked, {mismatches} mismatches")
sys.exit(1 if mismatches else 0)
EOF

echo "== certify an UNSAT answer via sateda-check =="
printf '%s\n' \
  '{"op":"open","session":"s"}' \
  '{"op":"add","session":"s","clauses":[[1,2],[-1,2],[1,-2],[-1,-2]]}' \
  '{"op":"solve","session":"s","certify":true,"id":"refute"}' \
  '{"op":"shutdown"}' | "$SERVE" --quiet > "$WORK/certify.jsonl"
python3 - "$WORK" <<'EOF'
import json, sys
work = sys.argv[1]
for line in open(f"{work}/certify.jsonl"):
    r = json.loads(line)
    if r.get("id") == "refute":
        assert r["result"] == "unsat", r
        open(f"{work}/refute.cnf", "w").write(r["cnf"])
        open(f"{work}/refute.drat", "w").write(r["proof"])
        sys.exit(0)
sys.exit("no certified response found")
EOF
"$CHECK" "$WORK/refute.cnf" "$WORK/refute.drat"

echo "== warm-vs-cold benchmark gate (speedup >= 1.0) =="
"$SERVE" --bench --circuit "$CIRCUIT" --bench-out "$WORK/bench.json"
python3 - "$WORK/bench.json" <<'EOF'
import json, sys
b = json.load(open(sys.argv[1]))
assert b["answers_identical"], "warm and cold verdicts differ"
assert b["warm"]["errors"] == 0 and b["cold"]["errors"] == 0, "protocol errors"
speedup = b["warm_cold_speedup"]
print(f"warm/cold speedup: {speedup:.2f}x")
sys.exit(0 if speedup >= 1.0 else f"warm slower than cold ({speedup:.2f}x)")
EOF

echo "serve smoke: OK"
