#!/usr/bin/env bash
# serve_load.sh BUILD_DIR [--circuit NAME] [--check MIN_SPEEDUP] [--out FILE]
#
# The sateda-serve load benchmark: fires every collapsed
# single-stuck-at ATPG query of a generated circuit at the daemon
# twice — once against warm long-lived sessions (one clause epoch per
# fault, learnt clauses and heuristic state carried across queries)
# and once against a cold throwaway session per query (open + load +
# solve + close) — and records queries/sec plus p50/p95/p99 latency
# for both, with an identical-answers cross-check.
#
# Writes the JSON report (default BENCH_serve.json in BUILD_DIR) and,
# with --check, fails when the warm/cold speedup drops below the
# given floor.
set -euo pipefail

BUILD_DIR=${1:?usage: serve_load.sh BUILD_DIR [--circuit NAME] [--check MIN] [--out FILE]}
shift
SERVE="$BUILD_DIR/tools/sateda-serve"
CIRCUIT=alu16
OUT="$BUILD_DIR/BENCH_serve.json"
MIN_SPEEDUP=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --circuit) CIRCUIT=$2; shift 2 ;;
    --check) MIN_SPEEDUP=$2; shift 2 ;;
    --out) OUT=$2; shift 2 ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

"$SERVE" --bench --circuit "$CIRCUIT" --bench-out "$OUT"

python3 - "$OUT" "${MIN_SPEEDUP:-}" <<'EOF'
import json, sys
b = json.load(open(sys.argv[1]))
for mode in ("warm", "cold"):
    m = b[mode]
    print(f"{mode:5}: {m['queries_per_sec']:8.1f} q/s   "
          f"p50 {m['p50_ms']:.3f} ms   p95 {m['p95_ms']:.3f} ms   "
          f"p99 {m['p99_ms']:.3f} ms")
print(f"speedup: {b['warm_cold_speedup']:.2f}x   "
      f"answers identical: {b['answers_identical']}")
if not b["answers_identical"]:
    sys.exit("warm and cold verdicts differ")
if sys.argv[2]:
    floor = float(sys.argv[2])
    if b["warm_cold_speedup"] < floor:
        sys.exit(f"speedup {b['warm_cold_speedup']:.2f}x below floor {floor}")
EOF
