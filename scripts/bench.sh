#!/usr/bin/env bash
# Build-and-run wrapper for the sateda-bench solver throughput
# benchmark.  Writes the JSON results into the build tree (the
# checked-in BENCH_solver.json at the repo root is the reference
# baseline and is never overwritten by this script).
#
# usage: scripts/bench.sh [build-dir] [--quick] [--check] [--maxsat]
#                         [--cube] [--cec] [--workers N] [--timeout S]
#                         [--max-regression X] [--min-instance-ratio X]
#   --quick   small-instance subset with short timing windows
#   --check   compare against the checked-in BENCH_solver.json and
#             fail if geomean propagations/sec (plain or with
#             inprocessing ON) regressed more than --max-regression,
#             or any single instance fell below --min-instance-ratio
#             of its baseline; with --cec, compares BENCH_cec.json
#             pipeline speedups instead
#   --maxsat  run the core-guided MaxSAT benchmark over examples/wcnf
#             instead (writes BENCH_maxsat.json into the build tree)
#   --cube    run the cube-and-conquer strategy comparison instead
#             (cold CDCL vs racing portfolio vs cube; writes
#             BENCH_cube.json into the build tree); --workers and
#             --timeout pass through to sateda-bench --cube
#   --cec     run the CEC structure-aware pipeline comparison instead
#             (plain check_equivalence vs rewrite + PG + hints over
#             adder/multiplier miter pairs, every verdict certified;
#             writes BENCH_cec.json into the build tree)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="build"
QUICK=""
CHECK=0
MAXSAT=0
CUBE=0
CEC=0
WORKERS=""
TIMEOUT=""
MAX_REGRESSION="0.25"
MIN_INSTANCE_RATIO="0.9"
while [ "$#" -gt 0 ]; do
  case "$1" in
    --quick) QUICK="--quick" ;;
    --check) CHECK=1 ;;
    --maxsat) MAXSAT=1 ;;
    --cube) CUBE=1 ;;
    --cec) CEC=1 ;;
    --workers) WORKERS="$2"; shift ;;
    --timeout) TIMEOUT="$2"; shift ;;
    --max-regression) MAX_REGRESSION="$2"; shift ;;
    --min-instance-ratio) MIN_INSTANCE_RATIO="$2"; shift ;;
    -*) echo "usage: scripts/bench.sh [build-dir] [--quick] [--check]" \
             "[--maxsat] [--cube] [--cec] [--workers N] [--timeout S]" \
             "[--max-regression X] [--min-instance-ratio X]" >&2
        exit 2 ;;
    *) BUILD_DIR="$1" ;;
  esac
  shift
done

if [ "$MAXSAT" -eq 1 ]; then
  TOOL="$BUILD_DIR/tools/sateda-maxsat"
  if [ ! -x "$TOOL" ]; then
    echo "error: $TOOL not built (build the sateda-maxsat target first)" >&2
    exit 2
  fi
  exec "$TOOL" --bench "$ROOT/examples/wcnf" --out "$BUILD_DIR/BENCH_maxsat.json"
fi

BENCH="$BUILD_DIR/tools/sateda-bench"
if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built (build the sateda-bench target first," \
       "ideally in a Release tree)" >&2
  exit 2
fi

if [ "$CUBE" -eq 1 ]; then
  ARGS=("--cube" "--out" "$BUILD_DIR/BENCH_cube.json")
  [ -n "$QUICK" ] && ARGS+=("$QUICK")
  [ -n "$WORKERS" ] && ARGS+=("--workers" "$WORKERS")
  [ -n "$TIMEOUT" ] && ARGS+=("--timeout" "$TIMEOUT")
  exec "$BENCH" "${ARGS[@]}"
fi

if [ "$CEC" -eq 1 ]; then
  ARGS=("--cec" "--out" "$BUILD_DIR/BENCH_cec.json")
  [ -n "$QUICK" ] && ARGS+=("$QUICK")
  if [ "$CHECK" -eq 1 ]; then
    ARGS+=("--baseline" "$ROOT/BENCH_cec.json"
           "--max-regression" "$MAX_REGRESSION"
           "--min-instance-ratio" "$MIN_INSTANCE_RATIO")
  fi
  exec "$BENCH" "${ARGS[@]}"
fi

OUT="$BUILD_DIR/BENCH_solver.json"
ARGS=("--out" "$OUT" "--corpus" "$ROOT/examples/cnf")
[ -n "$QUICK" ] && ARGS+=("$QUICK")
if [ "$CHECK" -eq 1 ]; then
  ARGS+=("--baseline" "$ROOT/BENCH_solver.json"
         "--max-regression" "$MAX_REGRESSION"
         "--min-instance-ratio" "$MIN_INSTANCE_RATIO")
fi

STATUS=0
"$BENCH" "${ARGS[@]}" || STATUS=$?

# Per-family inprocessing summary: geometric mean of the wall-clock
# speedup (inprocessing ON vs OFF) across the instances of each family.
if [ -f "$OUT" ] && command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT" <<'PY' || true
import json, math, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
fams = {}
for inst in data.get("instances", []):
    sp = inst.get("inprocess_speedup", 0.0)
    if sp > 0.0:
        fams.setdefault(inst.get("family", "?"), []).append(sp)
if fams:
    print("\nper-family inprocess_speedup (geomean of wall-clock ratio)")
    print(f"{'family':<12} {'n':>3} {'speedup':>8}")
    for fam in sorted(fams):
        sps = fams[fam]
        geo = math.exp(sum(math.log(s) for s in sps) / len(sps))
        print(f"{fam:<12} {len(sps):>3} {geo:>8.2f}")
PY
fi

exit "$STATUS"
