#!/usr/bin/env bash
# Build-and-run wrapper for the sateda-bench solver throughput
# benchmark.  Writes the JSON results into the build tree (the
# checked-in BENCH_solver.json at the repo root is the reference
# baseline and is never overwritten by this script).
#
# usage: scripts/bench.sh [build-dir] [--quick] [--check] [--maxsat]
#   --quick   small-instance subset with short timing windows
#   --check   compare against the checked-in BENCH_solver.json and
#             fail if propagations/sec regressed more than 25%
#   --maxsat  run the core-guided MaxSAT benchmark over examples/wcnf
#             instead (writes BENCH_maxsat.json into the build tree)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="build"
QUICK=""
CHECK=0
MAXSAT=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK="--quick" ;;
    --check) CHECK=1 ;;
    --maxsat) MAXSAT=1 ;;
    -*) echo "usage: scripts/bench.sh [build-dir] [--quick] [--check] [--maxsat]" >&2
        exit 2 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

if [ "$MAXSAT" -eq 1 ]; then
  TOOL="$BUILD_DIR/tools/sateda-maxsat"
  if [ ! -x "$TOOL" ]; then
    echo "error: $TOOL not built (build the sateda-maxsat target first)" >&2
    exit 2
  fi
  exec "$TOOL" --bench "$ROOT/examples/wcnf" --out "$BUILD_DIR/BENCH_maxsat.json"
fi

BENCH="$BUILD_DIR/tools/sateda-bench"
if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built (build the sateda-bench target first," \
       "ideally in a Release tree)" >&2
  exit 2
fi

OUT="$BUILD_DIR/BENCH_solver.json"
ARGS=("--out" "$OUT" "--corpus" "$ROOT/examples/cnf")
[ -n "$QUICK" ] && ARGS+=("$QUICK")
if [ "$CHECK" -eq 1 ]; then
  ARGS+=("--baseline" "$ROOT/BENCH_solver.json" "--max-regression" "0.25")
fi

exec "$BENCH" "${ARGS[@]}"
