#!/usr/bin/env bash
# Build-and-run wrapper for the sateda-bench solver throughput
# benchmark.  Writes the JSON results into the build tree (the
# checked-in BENCH_solver.json at the repo root is the reference
# baseline and is never overwritten by this script).
#
# usage: scripts/bench.sh [build-dir] [--quick] [--check]
#   --quick   small-instance subset with short timing windows
#   --check   compare against the checked-in BENCH_solver.json and
#             fail if propagations/sec regressed more than 25%
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="build"
QUICK=""
CHECK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK="--quick" ;;
    --check) CHECK=1 ;;
    -*) echo "usage: scripts/bench.sh [build-dir] [--quick] [--check]" >&2
        exit 2 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

BENCH="$BUILD_DIR/tools/sateda-bench"
if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built (build the sateda-bench target first," \
       "ideally in a Release tree)" >&2
  exit 2
fi

OUT="$BUILD_DIR/BENCH_solver.json"
ARGS=("--out" "$OUT" "--corpus" "$ROOT/examples/cnf")
[ -n "$QUICK" ] && ARGS+=("$QUICK")
if [ "$CHECK" -eq 1 ]; then
  ARGS+=("--baseline" "$ROOT/BENCH_solver.json" "--max-regression" "0.25")
fi

exec "$BENCH" "${ARGS[@]}"
