#!/usr/bin/env bash
# MaxSAT smoke check: solve every instance of the bundled WCNF corpus
# with both core-guided algorithms and assert the known optima from
# examples/wcnf/MANIFEST (UNSAT entries must exit 20, optima must be
# proven exactly, enforced by --expect).
#
# usage: scripts/maxsat_check.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
MAXSAT="$BUILD_DIR/tools/sateda-maxsat"
WCNF_DIR="$(dirname "$0")/../examples/wcnf"
MANIFEST="$WCNF_DIR/MANIFEST"

if [ ! -x "$MAXSAT" ]; then
  echo "error: $MAXSAT not built (build the sateda-maxsat target first)" >&2
  exit 2
fi
if [ ! -f "$MANIFEST" ]; then
  echo "error: $MANIFEST missing" >&2
  exit 2
fi

failures=0
checks=0
while read -r file expected; do
  case "$file" in ''|\#*) continue ;; esac
  for algo in oll fumalik; do
    checks=$((checks + 1))
    status=0
    if [ "$expected" = "UNSAT" ]; then
      "$MAXSAT" --quiet --algo "$algo" "$WCNF_DIR/$file" >/dev/null || status=$?
      if [ "$status" -eq 20 ]; then
        echo "ok   [$algo] $file: UNSAT"
      else
        echo "FAIL [$algo] $file: exit $status (expected 20 = hard UNSAT)"
        failures=$((failures + 1))
      fi
    else
      "$MAXSAT" --quiet --algo "$algo" --expect "$expected" \
        "$WCNF_DIR/$file" >/dev/null || status=$?
      if [ "$status" -eq 30 ]; then
        echo "ok   [$algo] $file: optimum $expected"
      else
        echo "FAIL [$algo] $file: exit $status (expected proven optimum $expected)"
        failures=$((failures + 1))
      fi
    fi
  done
done < "$MANIFEST"

if [ "$failures" -ne 0 ]; then
  echo "$failures of $checks MaxSAT check(s) failed"
  exit 1
fi
echo "all $checks MaxSAT checks passed"
