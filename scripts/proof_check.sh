#!/usr/bin/env bash
# Solve every bundled UNSAT instance with DRAT logging enabled and run
# each certificate through the independent checker.  Exercises the
# plain CDCL path, the preprocessor pipeline and the parallel
# portfolio, in both text and binary DRAT.
#
# Each certificate is additionally trimmed to its clausal core
# (sateda-check --core/--trim) and the trimmed proof is re-verified
# against the extracted core CNF.
#
# usage: scripts/proof_check.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
SOLVE="$BUILD_DIR/tools/sateda-solve"
CHECK="$BUILD_DIR/tools/sateda-check"
CNF_DIR="$(dirname "$0")/../examples/cnf"
PROOF="$(mktemp /tmp/sateda_proof.XXXXXX.drat)"
CORE="$(mktemp /tmp/sateda_core.XXXXXX.cnf)"
TRIM="$(mktemp /tmp/sateda_trim.XXXXXX.drat)"
trap 'rm -f "$PROOF" "$CORE" "$TRIM"' EXIT

for tool in "$SOLVE" "$CHECK"; do
  if [ ! -x "$tool" ]; then
    echo "error: $tool not built (build the sateda-solve and sateda-check targets first)" >&2
    exit 2
  fi
done

failures=0
run_one() {
  local label="$1" cnf="$2"
  shift 2
  local status=0
  "$SOLVE" --quiet --proof "$PROOF" "$@" "$cnf" >/dev/null || status=$?
  if [ "$status" -ne 20 ]; then
    echo "FAIL [$label] $cnf: solver exit $status (expected 20 = UNSAT)"
    failures=$((failures + 1))
    return
  fi
  if "$CHECK" --quiet "$cnf" "$PROOF" >/dev/null; then
    echo "ok   [$label] $cnf"
  else
    echo "FAIL [$label] $cnf: proof did not verify"
    failures=$((failures + 1))
  fi
}

# Trim the certificate to the clausal core and check that the trimmed
# proof still refutes the extracted core CNF.
run_core_trim() {
  local cnf="$1"
  local status=0
  "$SOLVE" --quiet --proof "$PROOF" "$cnf" >/dev/null || status=$?
  if [ "$status" -ne 20 ]; then
    echo "FAIL [core-trim] $cnf: solver exit $status (expected 20 = UNSAT)"
    failures=$((failures + 1))
    return
  fi
  if ! "$CHECK" --quiet --core "$CORE" --trim "$TRIM" "$cnf" "$PROOF" \
      >/dev/null; then
    echo "FAIL [core-trim] $cnf: core extraction did not verify"
    failures=$((failures + 1))
    return
  fi
  if "$CHECK" --quiet "$CORE" "$TRIM" >/dev/null; then
    echo "ok   [core-trim] $cnf"
  else
    echo "FAIL [core-trim] $cnf: trimmed proof does not refute the core CNF"
    failures=$((failures + 1))
  fi
}

for cnf in "$CNF_DIR"/*.cnf; do
  run_one "cdcl/text" "$cnf"
  run_one "cdcl/binary" "$cnf" --binary-proof
  run_one "preprocess" "$cnf" --preprocess
  # Each preprocessor pass in isolation: a proof-soundness bug in one
  # pass cannot hide behind the others cleaning up after it.
  for pass in pure equiv subsume selfsub bve; do
    run_one "pre-pass/$pass" "$cnf" --pre-pass "$pass"
  done
  run_one "inprocess" "$cnf" --inprocess
  run_one "portfolio" "$cnf" --engine portfolio --threads 2
  run_one "portfolio/inprocess" "$cnf" --engine portfolio --threads 2 \
    --inprocess
  run_core_trim "$cnf"
done

if [ "$failures" -ne 0 ]; then
  echo "$failures proof check(s) failed"
  exit 1
fi
echo "all proofs verified"
