#!/usr/bin/env bash
# Local mirror of the CI static-analysis gates (lint + thread-safety).
#
# Usage: scripts/lint.sh [--tidy-only|--tsa-only]
#
# Gates, in order:
#   1. clang-tidy over the whole tree with the .clang-tidy config and
#      the sateda plugin (tools/lint) loaded, via a fresh compile
#      database, plus the plugin's fixture tests;
#   2. a clang build with -Wthread-safety -Wthread-safety-beta -Werror
#      checking the GUARDED_BY/REQUIRES/ACQUIRED_BEFORE contracts.
#
# Everything degrades gracefully: missing clang/clang-tidy/plugin
# headers skip the corresponding gate with a notice (exit 0), matching
# a GCC-only box; CI runs the same gates with the toolchain installed,
# where a skip is impossible.  ccache is picked up when present.
set -euo pipefail

cd "$(dirname "$0")/.."

run_tidy=1
run_tsa=1
case "${1:-}" in
  --tidy-only) run_tsa=0 ;;
  --tsa-only) run_tidy=0 ;;
  "") ;;
  *) echo "usage: $0 [--tidy-only|--tsa-only]" >&2; exit 2 ;;
esac

launcher_args=()
if command -v ccache >/dev/null 2>&1; then
  launcher_args+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

status=0

if [ "$run_tidy" = 1 ]; then
  if ! command -v clang-tidy >/dev/null 2>&1 || ! command -v clang++ >/dev/null 2>&1; then
    echo "lint.sh: clang-tidy/clang++ not found — skipping the tidy gate"
  else
    echo "== clang-tidy gate =="
    cmake -S . -B build-lint \
      -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DCMAKE_CXX_COMPILER=clang++ \
      "${launcher_args[@]}"

    plugin=""
    if cmake --build build-lint --target SatedaTidyModule -j"$(nproc)" 2>/dev/null; then
      plugin=$(find build-lint/tools/lint -name 'libSatedaTidyModule*' | head -n1 || true)
    fi
    if [ -n "$plugin" ]; then
      echo "-- plugin: $plugin"
      scripts/lint_fixtures.sh "$plugin" "$(command -v clang-tidy)" tools/lint/test || status=1
      load_args=(-load "$PWD/$plugin")
    else
      echo "-- clang-tidy plugin headers unavailable; running built-in checks only"
      load_args=()
    fi

    files=$(git ls-files 'src/**/*.cpp' 'tools/*.cpp' 'tests/**/*.cpp' 'tests/*.cpp')
    if command -v run-clang-tidy >/dev/null 2>&1; then
      # shellcheck disable=SC2086
      run-clang-tidy -p build-lint -quiet "${load_args[@]}" $files || status=1
    else
      # shellcheck disable=SC2086
      echo "$files" | xargs -n8 -P"$(nproc)" \
        clang-tidy -p build-lint --quiet "${load_args[@]}" || status=1
    fi
  fi
fi

if [ "$run_tsa" = 1 ]; then
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "lint.sh: clang++ not found — skipping the thread-safety gate"
  else
    echo "== thread-safety gate =="
    cmake -S . -B build-tsa \
      -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_COMPILER=clang++ \
      -DSATEDA_WERROR=ON \
      -DSATEDA_THREAD_SAFETY=ON \
      "${launcher_args[@]}"
    cmake --build build-tsa -j"$(nproc)" || status=1
  fi
fi

if [ "$status" != 0 ]; then
  echo "lint.sh: FAILED"
else
  echo "lint.sh: clean"
fi
exit "$status"
