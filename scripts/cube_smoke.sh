#!/usr/bin/env bash
# Cube-and-conquer smoke: split/conquer small UNSAT instances at 2 and
# 4 workers, re-certify every stitched DRAT proof with sateda-check,
# exercise the split-only/conquer-only iCNF round trip, the
# multi-process conquer driver, and the SAT path.
#
# usage: scripts/cube_smoke.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-build}"
CUBE="$BUILD_DIR/tools/sateda-cube"
CHECK="$BUILD_DIR/tools/sateda-check"
SOLVE="$BUILD_DIR/tools/sateda-solve"

for tool in "$CUBE" "$CHECK" "$SOLVE"; do
  if [ ! -x "$tool" ]; then
    echo "error: $tool not built" >&2
    exit 2
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# expect_exit CODE CMD...: run CMD, require the given exit status
# (SAT-competition codes: 10 = SAT, 20 = UNSAT make set -e unusable
# directly).
expect_exit() {
  local want="$1"
  shift
  local got=0
  "$@" > "$TMP/last.log" 2>&1 || got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: '$*' exited $got, expected $want" >&2
    cat "$TMP/last.log" >&2
    exit 1
  fi
}

echo "== conquer + certify at 2 and 4 workers =="
for inst in php6 dubois20; do
  cnf="$ROOT/examples/cnf/$inst.cnf"
  for workers in 2 4; do
    proof="$TMP/$inst.w$workers.drat"
    expect_exit 20 "$CUBE" "$cnf" --workers "$workers" --cutoff 4 \
      --proof "$proof" --quiet
    expect_exit 0 "$CHECK" "$cnf" "$proof"
    echo "ok: $inst workers=$workers certified"
  done
done

echo "== split-only / conquer-only iCNF round trip =="
cnf="$ROOT/examples/cnf/php6.cnf"
expect_exit 0 "$CUBE" "$cnf" --cube-out "$TMP/php6.icnf" --cutoff 3 --quiet
grep -q '^a .* 0$' "$TMP/php6.icnf" || {
  echo "FAIL: no iCNF cube lines in $TMP/php6.icnf" >&2
  exit 1
}
expect_exit 20 "$CUBE" "$cnf" --cube-in "$TMP/php6.icnf" --workers 2 \
  --proof "$TMP/php6.reload.drat" --quiet
expect_exit 0 "$CHECK" "$cnf" "$TMP/php6.reload.drat"
echo "ok: cube-out/cube-in composition certified"

echo "== multi-process conquer =="
expect_exit 20 "$CUBE" "$cnf" --procs 2 --solver "$SOLVE" --cutoff 4 \
  --proof "$TMP/php6.procs.drat" --quiet
expect_exit 0 "$CHECK" "$cnf" "$TMP/php6.procs.drat"
echo "ok: 2-process conquer certified"

echo "== SAT path =="
printf 'p cnf 3 2\n1 2 0\n-1 3 0\n' > "$TMP/sat3.cnf"
expect_exit 10 "$CUBE" "$TMP/sat3.cnf" --workers 2 --quiet
echo "ok: SAT instance answered s SATISFIABLE"

echo "cube smoke: all checks passed"
