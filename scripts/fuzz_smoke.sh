#!/usr/bin/env bash
# Parser fuzz smoke: feed the DIMACS and WCNF readers a few hundred
# generated inputs — structurally valid ones, mutated ones, and raw
# garbage — and assert the tools always exit with a documented status
# instead of crashing.  Crash = any exit >= 128 (signal) or an
# undocumented code; under ASan/UBSan builds a sanitizer report also
# fails the run.
#
# usage: scripts/fuzz_smoke.sh [build-dir] [iterations]
set -euo pipefail

BUILD_DIR="${1:-build}"
ITERATIONS="${2:-120}"
SOLVE="$BUILD_DIR/tools/sateda-solve"
MAXSAT="$BUILD_DIR/tools/sateda-maxsat"
WORK="$(mktemp -d /tmp/sateda_fuzz.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

for tool in "$SOLVE" "$MAXSAT"; do
  if [ ! -x "$tool" ]; then
    echo "error: $tool not built" >&2
    exit 2
  fi
done

failures=0

# Exit statuses the tools document.  Everything else — in particular
# 128+N from a signal — is a parser robustness bug.
is_ok_status() {
  local st="$1"
  shift
  for ok in "$@"; do
    [ "$st" -eq "$ok" ] && return 0
  done
  return 1
}

check() {
  local label="$1" file="$2"
  shift 2
  local st=0
  "$SOLVE" --quiet "$file" >/dev/null 2>&1 || st=$?
  if ! is_ok_status "$st" 0 2 10 20; then
    echo "FAIL [dimacs/$label] exit $st on $file"
    cp "$file" "$WORK/keep.$label.$st.cnf" 2>/dev/null || true
    failures=$((failures + 1))
  fi
  st=0
  "$SOLVE" --quiet --strict-dimacs "$file" >/dev/null 2>&1 || st=$?
  if ! is_ok_status "$st" 0 2 10 20; then
    echo "FAIL [dimacs-strict/$label] exit $st on $file"
    failures=$((failures + 1))
  fi
  st=0
  "$MAXSAT" --quiet "$file" >/dev/null 2>&1 || st=$?
  if ! is_ok_status "$st" 0 2 20 30; then
    echo "FAIL [wcnf/$label] exit $st on $file"
    cp "$file" "$WORK/keep.$label.$st.wcnf" 2>/dev/null || true
    failures=$((failures + 1))
  fi
}

# Deterministic PRNG so failures reproduce: a simple LCG seeded per
# iteration keeps the script portable (no shuf/openssl dependency).
lcg=12345
rand() {
  lcg=$(((lcg * 1103515245 + 12345) % 2147483648))
  echo $((lcg % $1))
}

for i in $(seq 1 "$ITERATIONS"); do
  lcg=$((i * 7919))
  f="$WORK/case.cnf"

  case $(rand 5) in
    0)
      # Structurally valid random CNF (sometimes with a lying header).
      nv=$(($(rand 20) + 1))
      nc=$(($(rand 40) + 1))
      hv=$nv
      [ "$(rand 4)" -eq 0 ] && hv=$(rand 50)
      {
        echo "c fuzz case $i"
        echo "p cnf $hv $nc"
        for _ in $(seq 1 "$nc"); do
          len=$(($(rand 4) + 1))
          line=""
          for _ in $(seq 1 "$len"); do
            v=$(($(rand "$nv") + 1))
            [ "$(rand 2)" -eq 0 ] && v=$((-v))
            line="$line $v"
          done
          echo "$line 0"
        done
      } > "$f"
      ;;
    1)
      # Valid WCNF-style input (top weight header).
      nv=$(($(rand 12) + 1))
      {
        echo "p wcnf $nv 6 100"
        for _ in $(seq 1 6); do
          w=$(($(rand 99) + 1))
          [ "$(rand 3)" -eq 0 ] && w=100
          v=$(($(rand $nv) + 1))
          [ "$(rand 2)" -eq 0 ] && v=$((-v))
          echo "$w $v 0"
        done
      } > "$f"
      ;;
    2)
      # Truncations and mutations of a valid file.
      {
        echo "p cnf 5 3"
        echo "1 -2 3 0"
        echo "-1 4 0"
        echo "2 -5 0"
      } > "$f"
      case $(rand 4) in
        0) head -c $(($(rand 30) + 1)) "$f" > "$f.t" && mv "$f.t" "$f" ;;
        1) sed 's/0$//' "$f" > "$f.t" && mv "$f.t" "$f" ;;
        2) sed 's/cnf/wcnf/' "$f" > "$f.t" && mv "$f.t" "$f" ;;
        3) printf '%s\n99999999999999999999 0\n' "$(cat "$f")" > "$f" ;;
      esac
      ;;
    3)
      # Garbage: random bytes, no structure at all.
      head -c $(($(rand 400) + 1)) /dev/urandom > "$f"
      ;;
    4)
      # Pathological text: huge literals, empty lines, stray tokens.
      {
        echo "p cnf $(rand 1000000000) $(rand 1000000000)"
        echo ""
        echo "$(rand 100000000)  -$(rand 100000000) x 0"
        echo "0"
        echo "% trailing junk"
      } > "$f"
      ;;
  esac

  check "$i" "$f"
done

if [ "$failures" -ne 0 ]; then
  echo "$failures fuzz case(s) crashed or exited abnormally"
  exit 1
fi
echo "fuzz smoke passed: $ITERATIONS DIMACS+WCNF cases, no crashes"
